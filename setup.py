"""Setuptools shim so the package installs in environments without PEP 660 support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ClaSS: streaming time series segmentation via self-supervised "
        "classification (VLDB 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    # the JIT-compiled kernel backend ("auto" picks it up when importable;
    # every result is bit-identical with or without it)
    extras_require={"numba": ["numba>=0.57"]},
)
