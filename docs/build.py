#!/usr/bin/env python
"""Build the documentation site: docutils + Jinja2, warnings are errors.

Neither mkdocs nor sphinx is part of the pinned environment, so the site is
generated with what the repo already depends on: each ``docs/*.rst`` page is
rendered with docutils in strict mode (``halt_level=2`` — any RST warning
fails the build, the moral equivalent of ``sphinx-build -W``) into a shared
Jinja2 template, and the API reference page is generated from the live
registry, config, event and service-route docstrings so it can never drift
from the code.

Usage::

    PYTHONPATH=src python docs/build.py [--out docs/_site]

The build fails (exit 1) on the first malformed docstring or page, which is
what the CI docs job and ``tests/test_docs_build.py`` rely on.
"""

from __future__ import annotations

import argparse
import html
import sys
from pathlib import Path

from docutils import nodes
from docutils.core import publish_parts
from docutils.parsers.rst import roles
from docutils.utils import SystemMessage
from jinja2 import Environment, FileSystemLoader, StrictUndefined

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent

PROJECT = "repro"
PAPER = "ClaSS: Time Series Segmentation in the Streaming Setting (PVLDB 2024)"

#: Site pages in navigation order: authored .rst files plus the generated
#: reference (slug -> title; the reference has no source file).
PAGES = [
    ("index", "Overview"),
    ("architecture", "Architecture"),
    ("service", "Service protocol"),
    ("checkpoint-rebalance", "Checkpoint & rebalance"),
    ("fault-tolerance", "Fault tolerance"),
    ("data-quality", "Dirty-data resilience"),
    ("storage", "Durable stream history"),
    ("reference", "API reference"),
]

#: Strict docutils settings: level-2 (warning) halts the build.
RST_SETTINGS = {
    "halt_level": 2,
    "report_level": 2,
    "embed_stylesheet": False,
    "stylesheet_path": "",
    "syntax_highlight": "short",
    "smart_quotes": False,
}

STYLE = """\
:root { --accent: #14506e; --rule: #d9dee3; }
* { box-sizing: border-box; }
body { margin: 0; font: 16px/1.6 system-ui, sans-serif; color: #1c2733; }
nav { background: var(--accent); color: #fff; padding: 0.6rem 1.5rem;
      display: flex; align-items: baseline; flex-wrap: wrap; gap: 1rem; }
nav .project { font-weight: 700; letter-spacing: 0.03em; }
nav ul { list-style: none; display: flex; gap: 1rem; margin: 0; padding: 0;
         flex-wrap: wrap; }
nav a { color: #dce9f2; text-decoration: none; }
nav li.active a { color: #fff; border-bottom: 2px solid #fff; }
main { max-width: 54rem; margin: 0 auto; padding: 1.5rem; }
h1, h2, h3 { color: var(--accent); line-height: 1.25; }
h1 { border-bottom: 2px solid var(--rule); padding-bottom: 0.3rem; }
pre, code, tt { font-family: ui-monospace, monospace; font-size: 0.92em; }
pre { background: #f4f6f8; border: 1px solid var(--rule); border-radius: 6px;
      padding: 0.8rem 1rem; overflow-x: auto; }
code, tt.literal { background: #f4f6f8; border-radius: 4px; padding: 0 0.25em; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid var(--rule); padding: 0.35rem 0.7rem;
         text-align: left; vertical-align: top; }
th { background: #f4f6f8; }
footer { max-width: 54rem; margin: 2rem auto; padding: 0 1.5rem 2rem;
         color: #5c6b7a; font-size: 0.85em; border-top: 1px solid var(--rule); }
.symbol { border: 1px solid var(--rule); border-radius: 8px;
          padding: 0.2rem 1rem 0.6rem; margin: 1.2rem 0; }
.symbol > h3 { margin-top: 0.6rem; }
.symbol h1, .symbol h2 { font-size: 1.02em; border: none; margin: 0.8rem 0 0.2rem;
                         color: #33424f; }
"""


def _code_role(role, rawtext, text, lineno, inliner, options=None, content=None):
    """Render Sphinx cross-reference roles as inline code.

    Plain docutils does not know ``:class:`` / ``:func:`` / ``:meth:`` etc.;
    the docstrings use them for Sphinx compatibility, so the site renders
    them as literals (dropping a leading ``~module.path.`` shorthand).
    """
    target = text.lstrip("~")
    display = target.rsplit(".", 1)[-1] if text.startswith("~") else target
    return [nodes.literal(rawtext, display)], []


SPHINX_ROLES = ("class", "func", "meth", "mod", "data", "attr", "obj", "exc", "doc")


def register_sphinx_roles() -> None:
    """Teach docutils the Sphinx roles used across the repo's docstrings."""
    for name in SPHINX_ROLES:
        roles.register_local_role(name, _code_role)


def rst_to_html(text: str, source: str) -> str:
    """Render an RST fragment to an HTML body; any warning raises.

    ``source`` names the page or docstring in the error message.
    """
    try:
        parts = publish_parts(
            source=text,
            source_path=source,
            writer_name="html5",
            settings_overrides=RST_SETTINGS,
        )
    except SystemMessage as error:
        raise SystemExit(f"docs build failed in {source}: {error}") from error
    return parts["html_body"]


# --------------------------------------------------------------------------- #
# generated reference
# --------------------------------------------------------------------------- #


def _docstring_html(qualified: str, obj) -> str:
    """One reference entry: anchored heading plus the rendered docstring."""
    import inspect

    doc = inspect.getdoc(obj) or "*undocumented*"
    anchor = qualified.replace(".", "-").replace("[", "-").replace("]", "").replace("'", "")
    body = rst_to_html(doc, source=f"docstring of {qualified}")
    return (
        f'<div class="symbol" id="{anchor}">'
        f"<h3><code>{html.escape(qualified)}</code></h3>{body}</div>"
    )


def build_reference_html() -> str:
    """The API reference page, generated from live introspection."""
    from repro import api
    from repro.service.routes import ServiceRoutes
    from repro.service.streams import StreamRegistry
    from repro.service.workers import WorkerPool

    sections: list[str] = [rst_to_html(REFERENCE_INTRO, source="reference intro")]

    # registry: one row per key, then the full config docstrings
    rows = "".join(
        f"<tr><td><code>{key}</code></td>"
        f"<td><code>{api.spec(key).config_cls.__name__}</code></td>"
        f"<td>{html.escape(api.spec(key).summary)}</td></tr>"
        for key in api.available()
    )
    sections.append(
        "<h2>Detector registry</h2>"
        "<table><tr><th>key</th><th>config class</th><th>summary</th></tr>"
        f"{rows}</table>"
    )
    for key in api.available():
        config_cls = api.spec(key).config_cls
        sections.append(_docstring_html(f"registry[{key!r}] · {config_cls.__name__}", config_cls))

    sections.append("<h2>Events</h2>")
    for name in ("SegmenterEvent", "WarmupEvent", "ScoreEvent", "ChangePointEvent"):
        sections.append(_docstring_html(f"repro.api.{name}", getattr(api, name)))

    sections.append("<h2>Functions and protocol</h2>")
    for name in (
        "create", "stream", "available", "spec", "config_class", "register",
        "normalise_key", "key_for_config", "event_from_dict", "Segmenter",
        "ensure_segmenter", "save_checkpoint", "load_checkpoint", "restore",
    ):
        sections.append(_docstring_html(f"repro.api.{name}", getattr(api, name)))

    # service endpoints straight from the route table, so the reference can
    # never miss an endpoint the server actually exposes
    routes = ServiceRoutes(StreamRegistry(n_shards=1), WorkerPool(n_shards=1))
    endpoint_rows = []
    for method, regex, handler in routes.router._routes:
        pattern = regex.pattern.strip("^$")
        for param in ("name",):
            pattern = pattern.replace(f"(?P<{param}>[^/]+)", "{" + param + "}")
        summary = (handler.__doc__ or "").strip().splitlines()[0].replace("``", "")
        endpoint_rows.append(
            f"<tr><td><code>{method}</code></td><td><code>{html.escape(pattern)}</code></td>"
            f"<td>{html.escape(summary)}</td></tr>"
        )
    sections.append(
        "<h2>Service endpoints</h2>"
        "<p>The full wire protocol, with curl and WebSocket walk-throughs, "
        'lives on the <a href="service.html">service page</a>. '
        "WebSocket upgrades use <code>GET /streams/{name}/ws</code>.</p>"
        "<table><tr><th>method</th><th>path</th><th>purpose</th></tr>"
        f"{''.join(endpoint_rows)}</table>"
    )
    return "\n".join(sections)


REFERENCE_INTRO = """\
API reference
=============

Generated from the live docstrings of ``repro.api`` and ``repro.service`` by
``docs/build.py`` — every registry key, typed config, event type and service
endpoint below exists in the running code, and the build fails if any of
them loses its documentation.
"""


# --------------------------------------------------------------------------- #
# site assembly
# --------------------------------------------------------------------------- #


def build_site(out_dir: Path) -> list[Path]:
    """Render every page into ``out_dir``; return the written paths."""
    register_sphinx_roles()
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    env = Environment(
        loader=FileSystemLoader(DOCS_DIR / "templates"),
        undefined=StrictUndefined,
        autoescape=False,
    )
    template = env.get_template("page.html")
    nav = [{"slug": slug, "title": title} for slug, title in PAGES]

    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for slug, title in PAGES:
        if slug == "reference":
            body = build_reference_html()
        else:
            source = DOCS_DIR / f"{slug}.rst"
            body = rst_to_html(source.read_text(), source=str(source.relative_to(REPO_ROOT)))
        page = template.render(
            title=title, slug=slug, nav=nav, body=body, project=PROJECT, paper=PAPER
        )
        path = out_dir / f"{slug}.html"
        path.write_text(page)
        written.append(path)
    style = out_dir / "style.css"
    style.write_text(STYLE)
    written.append(style)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=DOCS_DIR / "_site",
        help="output directory of the built site (default docs/_site)",
    )
    args = parser.parse_args(argv)
    written = build_site(args.out)
    print(f"built {len(written)} files into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
