"""Unit and property tests for running statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.running_stats import (
    ExponentialMovingStats,
    RunningStats,
    sliding_complexity,
    sliding_mean_std,
    sliding_sums,
)


class TestSlidingSums:
    def test_matches_direct_computation(self, rng):
        values = rng.normal(size=200)
        sums, squares = sliding_sums(values, 16)
        for i in range(values.shape[0] - 16 + 1):
            window = values[i : i + 16]
            assert sums[i] == pytest.approx(window.sum())
            assert squares[i] == pytest.approx((window ** 2).sum())

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError):
            sliding_sums(np.ones(5), 10)

    def test_window_equal_to_length(self):
        sums, _ = sliding_sums(np.arange(4, dtype=float), 4)
        assert sums.shape == (1,)
        assert sums[0] == pytest.approx(6.0)


class TestSlidingMeanStd:
    def test_matches_numpy(self, rng):
        values = rng.normal(size=300)
        mean, std = sliding_mean_std(values, 25)
        windows = np.lib.stride_tricks.sliding_window_view(values, 25)
        np.testing.assert_allclose(mean, windows.mean(axis=1), atol=1e-9)
        np.testing.assert_allclose(std, windows.std(axis=1), atol=1e-7)

    def test_constant_window_std_is_floored(self):
        mean, std = sliding_mean_std(np.full(50, 3.0), 10)
        assert np.all(std > 0)
        assert np.allclose(mean, 3.0)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_numpy(self, width, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=width + rng.integers(1, 100))
        mean, std = sliding_mean_std(values, width)
        windows = np.lib.stride_tricks.sliding_window_view(values, width)
        np.testing.assert_allclose(mean, windows.mean(axis=1), atol=1e-8)
        np.testing.assert_allclose(
            np.maximum(std, 1e-8), np.maximum(windows.std(axis=1), 1e-8), atol=1e-6
        )


class TestSlidingComplexity:
    def test_matches_direct_computation(self, rng):
        values = rng.normal(size=120)
        complexity = sliding_complexity(values, 20)
        for i in range(values.shape[0] - 20 + 1):
            expected = np.sqrt(np.sum(np.diff(values[i : i + 20]) ** 2))
            assert complexity[i] == pytest.approx(expected, abs=1e-9)

    def test_flat_signal_has_zero_complexity(self):
        complexity = sliding_complexity(np.ones(50), 10)
        assert np.allclose(complexity, 0.0)


class TestRunningStats:
    def test_matches_numpy(self, rng):
        values = rng.normal(3.0, 2.0, 500)
        stats = RunningStats()
        for value in values:
            stats.update(float(value))
        assert stats.count == 500
        assert stats.mean == pytest.approx(values.mean(), rel=1e-9)
        assert stats.variance == pytest.approx(values.var(), rel=1e-9)
        assert stats.std == pytest.approx(values.std(), rel=1e-9)

    def test_empty_is_safe(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_reset(self):
        stats = RunningStats()
        stats.update(5.0)
        stats.reset()
        assert stats.count == 0


class TestExponentialMovingStats:
    def test_first_value_initialises_mean(self):
        ema = ExponentialMovingStats(alpha=0.1)
        ema.update(7.0)
        assert ema.mean == pytest.approx(7.0)
        assert ema.variance == pytest.approx(0.0)

    def test_converges_to_constant(self):
        ema = ExponentialMovingStats(alpha=0.2)
        for _ in range(200):
            ema.update(3.0)
        assert ema.mean == pytest.approx(3.0)
        assert ema.std == pytest.approx(0.0, abs=1e-6)

    def test_tracks_shift_faster_with_larger_alpha(self):
        slow, fast = ExponentialMovingStats(0.01), ExponentialMovingStats(0.3)
        for _ in range(100):
            slow.update(0.0)
            fast.update(0.0)
        for _ in range(20):
            slow.update(10.0)
            fast.update(10.0)
        assert fast.mean > slow.mean

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingStats(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingStats(alpha=1.5)
