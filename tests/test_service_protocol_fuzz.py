"""Fuzz-style protocol robustness: malformed wire input never kills anything.

Every scenario feeds the service hostile or broken bytes — truncated HTTP
requests, absurd Content-Length values, fragmented / reserved-bit /
oversized WebSocket frames, one-byte-at-a-time partial reads — and asserts
the same invariants afterwards: the failure is answered with a typed error
(or the connection is simply closed), the accept loop still serves
``/healthz``, and no shard worker was restarted.
"""

import asyncio

import pytest

from repro.service import SegmentationService, ServiceClient
from repro.service.protocol import OP_TEXT, encode_frame

CONFIG = {"window_size": 200, "scoring_interval": 5}


async def _raw(port: int, payload: bytes, *, read: bool = True) -> bytes:
    """Send raw bytes on a fresh connection; return whatever comes back."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    response = b""
    if read:
        try:
            response = await asyncio.wait_for(reader.read(64 * 1024), timeout=2)
        except asyncio.TimeoutError:
            pass
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return response


async def _assert_alive(service: SegmentationService) -> None:
    """The service must still answer requests and have restarted nothing."""
    client = await ServiceClient("127.0.0.1", service.port).connect()
    try:
        status, body = await client.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
    finally:
        await client.close()
    assert service.supervisor.total_restarts == 0


def _run(scenario):
    async def wrapped():
        service = SegmentationService(n_shards=2)
        await service.start(port=0)
        try:
            result = await scenario(service)
            await _assert_alive(service)
            return result
        finally:
            await service.stop()

    return asyncio.run(wrapped())


class TestHTTPFuzz:
    def test_truncated_request_head(self):
        async def scenario(service):
            # connection dies mid-request-line: nothing to answer, no crash
            return await _raw(service.port, b"GET /heal")

        _run(scenario)

    def test_garbage_request_line(self):
        async def scenario(service):
            return await _raw(service.port, b"FLOOP\r\n\r\n")

        response = _run(scenario)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"protocol-error" in response

    def test_unsupported_http_version(self):
        async def scenario(service):
            return await _raw(service.port, b"GET /healthz SPDY/99\r\n\r\n")

        response = _run(scenario)
        assert b"protocol-error" in response

    def test_non_numeric_content_length(self):
        async def scenario(service):
            return await _raw(
                service.port,
                b"POST /streams/x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            )

        response = _run(scenario)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"protocol-error" in response

    def test_negative_content_length(self):
        async def scenario(service):
            return await _raw(
                service.port,
                b"POST /streams/x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            )

        assert b"protocol-error" in _run(scenario)

    def test_oversized_declared_body_gets_typed_413(self):
        async def scenario(service):
            return await _raw(
                service.port,
                b"POST /streams/x HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n",
            )

        response = _run(scenario)
        assert b"413" in response.split(b"\r\n", 1)[0]
        assert b"oversized-body" in response

    def test_body_shorter_than_declared(self):
        async def scenario(service):
            # declared 50 bytes, sent 4, then EOF: connection closed mid-body
            return await _raw(
                service.port,
                b"POST /streams/x HTTP/1.1\r\nContent-Length: 50\r\n\r\nhi!!",
            )

        _run(scenario)

    def test_malformed_header_line(self):
        async def scenario(service):
            return await _raw(
                service.port, b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n"
            )

        assert b"protocol-error" in _run(scenario)

    def test_one_byte_at_a_time_request_still_parses(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            for byte in b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n":
                writer.write(bytes([byte]))
                await writer.drain()
            response = await asyncio.wait_for(reader.read(64 * 1024), timeout=5)
            writer.close()
            return response

        response = _run(scenario)
        assert response.split(b"\r\n", 1)[0] == b"HTTP/1.1 200 OK"

    def test_pipelined_garbage_after_valid_request(self):
        async def scenario(service):
            return await _raw(
                service.port,
                b"GET /healthz HTTP/1.1\r\n\r\n" + b"\x00\xff" * 32,
            )

        response = _run(scenario)
        assert b"200" in response.split(b"\r\n", 1)[0]


class TestWebSocketFuzz:
    async def _ws_session(self, service):
        client = await ServiceClient("127.0.0.1", service.port).connect()
        await client.request("POST", "/streams/fz", {"config": CONFIG})
        session = await client.open_websocket("/streams/fz/ws")
        return client, session

    def test_fragmented_frame_closes_only_that_connection(self):
        async def scenario(service):
            client, session = await self._ws_session(service)
            try:
                fragmented = bytearray(encode_frame(OP_TEXT, b'{"values":[1]}', mask=True))
                fragmented[0] &= 0x7F  # clear FIN: fragmentation is unsupported
                session._writer.write(bytes(fragmented))
                await session._writer.drain()
                assert await session.recv_json() is None  # connection closed
            finally:
                await session.close()
                await client.close()

        _run(scenario)

    def test_reserved_bits_close_only_that_connection(self):
        async def scenario(service):
            client, session = await self._ws_session(service)
            try:
                poisoned = bytearray(encode_frame(OP_TEXT, b"{}", mask=True))
                poisoned[0] |= 0x40  # RSV1 without a negotiated extension
                session._writer.write(bytes(poisoned))
                await session._writer.drain()
                assert await session.recv_json() is None
            finally:
                await session.close()
                await client.close()

        _run(scenario)

    def test_oversized_frame_declaration_is_rejected(self):
        async def scenario(service):
            client, session = await self._ws_session(service)
            try:
                # 64-bit length header declaring 1 GiB; no payload follows
                header = bytes([0x80 | OP_TEXT, 0x80 | 127])
                header += (1 << 30).to_bytes(8, "big") + b"\x00\x00\x00\x00"
                session._writer.write(header)
                await session._writer.drain()
                assert await session.recv_json() is None
            finally:
                await session.close()
                await client.close()

        _run(scenario)

    def test_unknown_opcode_is_ignored_and_session_survives(self):
        async def scenario(service):
            client, session = await self._ws_session(service)
            try:
                session._writer.write(encode_frame(0x3, b"???", mask=True))
                await session._writer.drain()
                # the session is still fully functional afterwards
                await session.send_json({"values": [0.1, 0.2]})
                ack = await session.recv_json()
                assert ack == {"kind": "ack", "n_seen": 2}
            finally:
                await session.close()
                await client.close()

        _run(scenario)

    def test_invalid_json_text_frame_gets_typed_error_frame(self):
        async def scenario(service):
            client, session = await self._ws_session(service)
            try:
                session._writer.write(encode_frame(OP_TEXT, b"{nope", mask=True))
                await session._writer.drain()
                message = await session.recv_json()
                assert message["kind"] == "error"
                assert message["code"] == "bad-json"
                # and the session keeps working
                await session.send_json({"values": [0.5]})
                assert (await session.recv_json())["kind"] == "ack"
            finally:
                await session.close()
                await client.close()

        _run(scenario)

    def test_torn_frame_then_eof(self):
        async def scenario(service):
            client, session = await self._ws_session(service)
            frame = encode_frame(OP_TEXT, b'{"values": [1, 2, 3]}', mask=True)
            session._writer.write(frame[: len(frame) // 2])  # half a frame
            await session._writer.drain()
            session._writer.close()
            await client.close()

        _run(scenario)

    def test_protocol_errors_are_counted(self):
        async def scenario(service):
            await _raw(service.port, b"FLOOP\r\n\r\n")
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                status, metrics = await client.request("GET", "/metrics")
                return metrics
            finally:
                await client.close()

        metrics = _run(scenario)
        assert metrics["errors"].get("protocol-error", 0) >= 1


class TestInternalErrorContainment:
    def test_unexpected_handler_bug_answers_500_and_counts(self):
        """A route raising an arbitrary exception: typed 500, counter bumped,
        traceback logged, service alive (the client surfaces it typed)."""
        from repro.service import ServiceUnavailableError

        async def scenario(service):
            def explode(name, cursor):
                raise RuntimeError("synthetic route bug")

            service.registry.events_since = explode
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/ie", {"config": CONFIG})
                with pytest.raises(ServiceUnavailableError) as caught:
                    await client.request("GET", "/streams/ie/events?since=0")
                status, metrics = await client.request("GET", "/metrics")
                return caught.value, metrics
            finally:
                await client.close()

        error, metrics = _run(scenario)
        assert error.status == 500
        assert error.code == "internal-error"
        assert metrics["errors"].get("internal-error") == 1
