"""Out-of-core acceptance test: segment a dataset ≥ 4× the enforced RSS ceiling.

ISSUE 9 acceptance criterion: an end-to-end run must segment a *stored*
dataset at least four times larger than the resident-memory ceiling the
test enforces.  A subprocess (clean RSS accounting) measures its
post-import ``ru_maxrss`` baseline, then

1. ingests ``REPRO_OOC_POINTS`` float64 observations through the chunk
   store from a generator (never holding the dataset in memory), and
2. segments the stored stream through ``api.stream()`` with a registry
   detector over the memory-mapped chunk iterator,

asserting that each phase grows the peak RSS by at most
``CEILING_BYTES`` — possible only because the writer buffers one segment
at a time and the reader unmaps each segment as the iterator moves on.
The in-RAM equivalent would need the full dataset resident, 4× the
allowed growth.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

#: Enforced resident-set growth ceiling per phase (bytes).
CEILING_BYTES = 16 * 1024 * 1024
#: Default dataset size: 8.5M float64 = 68 MB ≥ 4× the 16 MB ceiling.
DEFAULT_POINTS = 8_500_000

_SCRIPT = r"""
import json, resource, sys
import numpy as np
from repro import api
from repro.storage import StreamStore

def maxrss():
    # ru_maxrss is KiB on Linux
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

root, n_points = sys.argv[1], int(sys.argv[2])
baseline = maxrss()

def generate(n, block=262_144):
    rng = np.random.default_rng(7)
    produced = 0
    level = 0.0
    while produced < n:
        rows = min(block, n - produced)
        if produced and produced % (block * 8) == 0:
            level += 3.0  # periodic mean shifts to give the detector work
        yield rng.normal(level, 1.0, rows)
        produced += rows

store = StreamStore(root, fsync=False)
stored = store.ingest("big", generate(n_points))
after_ingest = maxrss()

segmenter = api.create("page-hinkley")
n_events = sum(1 for _ in api.stream(segmenter, stored, chunk_size=65_536))
after_stream = maxrss()

print(json.dumps({
    "baseline": baseline,
    "ingest_growth": after_ingest - baseline,
    "stream_growth": after_stream - after_ingest,
    "n_rows": int(stored.n_rows),
    "dataset_bytes": int(stored.nbytes),
    "n_segments": len(stored.segments),
    "n_seen": int(segmenter.n_seen),
    "n_events": n_events,
    "n_change_points": len(segmenter.change_points),
}))
"""


def test_segments_dataset_four_times_larger_than_rss_ceiling(tmp_path):
    n_points = int(os.environ.get("REPRO_OOC_POINTS", DEFAULT_POINTS))
    repo_src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{repo_src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(tmp_path / "store"), str(n_points)],
        capture_output=True,
        text=True,
        env=env,
        timeout=540,
    )
    assert result.returncode == 0, result.stderr
    report = json.loads(result.stdout)

    # the dataset really is ≥ 4× the resident-growth ceiling we enforce
    assert report["n_rows"] == n_points
    assert report["dataset_bytes"] >= 4 * CEILING_BYTES
    assert report["n_segments"] > 1  # genuinely partitioned, not one blob

    # constant-memory ingestion: the writer never buffered more than a
    # segment's worth of rows (plus interpreter noise)
    assert report["ingest_growth"] <= CEILING_BYTES, report
    # mmap streaming: each segment is unmapped as the iterator moves past
    # it, so peak RSS growth stays far below the 68 MB dataset
    assert report["stream_growth"] <= CEILING_BYTES, report

    # and the run actually segmented the stream, end to end
    assert report["n_seen"] == n_points
    assert report["n_change_points"] >= 1
