"""Integration: the service is bit-identical to offline ``api.stream()``.

The tentpole acceptance test (ISSUE 7): N concurrent client streams served
through ``repro.service`` must produce exactly the change points, scores and
p-values of an offline :func:`repro.api.stream` run over the same data —
including across a mid-stream freeze → checkpoint → rebalance-to-another-
worker → resume, which exercises the full elastic-rebalancing path (the
state payload is pickle round-tripped, i.e. genuinely shipped).
"""

import asyncio
import json

import numpy as np
import pytest

from repro import api
from repro.datasets import SegmentSpec, compose_stream
from repro.service import SegmentationService, ServiceClient
from repro.streamengine.sharded import shard_for_key

N_SHARDS = 3
CONFIG = {"window_size": 200, "scoring_interval": 5}


def _dataset(seed: int) -> np.ndarray:
    """A three-regime stream with two true change points."""
    specs = [
        SegmentSpec("sine", 400, {"period": 20, "noise": 0.05}, label="slow"),
        SegmentSpec("square", 400, {"period": 50, "noise": 0.05}, label="cycling"),
        SegmentSpec("sine", 400, {"period": 8, "noise": 0.05}, label="fast"),
    ]
    return compose_stream(specs, name=f"stream-{seed}", seed=seed).values


def _offline_events(values: np.ndarray) -> list[dict]:
    """The ground truth: offline api.stream() events as JSON payloads."""
    segmenter = api.create("class", api.ClaSSConfig(**CONFIG))
    events = list(api.stream(segmenter, values, chunk_size=256))
    # normalise through JSON exactly like the service does
    return [json.loads(json.dumps(event.to_dict())) for event in events]


async def _serve_stream(
    port: int, name: str, values: np.ndarray, batch_size: int, rebalance_at: int | None
) -> list[dict]:
    """Drive one stream through the service; optionally rebalance mid-stream."""
    client = await ServiceClient("127.0.0.1", port).connect()
    try:
        status, body = await client.request(
            "POST", f"/streams/{name}", {"detector": "class", "config": CONFIG}
        )
        assert status == 201, body
        for start in range(0, len(values), batch_size):
            if rebalance_at is not None and start >= rebalance_at:
                status, info = await client.request("GET", f"/streams/{name}")
                target = (info["shard"] + 1) % N_SHARDS
                status, body = await client.request(
                    "POST", f"/streams/{name}/rebalance", {"shard": target}
                )
                assert status == 200, body
                assert body["shard"] == target
                rebalance_at = None  # once
            batch = values[start : start + batch_size].tolist()
            status, body = await client.request(
                "POST", f"/streams/{name}/observations", {"values": batch}
            )
            assert status == 200, body
            await asyncio.sleep(0)  # interleave with the other clients
        status, body = await client.request("GET", f"/streams/{name}/events?since=0")
        assert status == 200
        return body["events"]
    finally:
        await client.close()


class TestServiceBitIdentity:
    def test_concurrent_streams_match_offline_including_rebalance(self):
        """Six concurrent clients; two rebalance mid-stream; all bit-identical."""
        datasets = {f"s{i}": _dataset(seed=i) for i in range(6)}
        offline = {name: _offline_events(values) for name, values in datasets.items()}

        async def scenario():
            service = SegmentationService(n_shards=N_SHARDS)
            await service.start(port=0)
            try:
                jobs = []
                for i, (name, values) in enumerate(datasets.items()):
                    # different batch sizes per client; two clients freeze +
                    # rebalance mid-stream (s1 mid-warm-up at n_seen=150 < 200,
                    # s4 after its first change point)
                    rebalance_at = {1: 150, 4: 700}.get(i)
                    jobs.append(
                        _serve_stream(
                            service.port, name, values, 120 + 30 * i, rebalance_at
                        )
                    )
                served = await asyncio.gather(*jobs)
                # shard routing must match the batch engine's CRC-32 partitioning
                for stream in service.registry.list_streams():
                    if stream.name not in ("s1", "s4"):  # not rebalanced
                        assert stream.shard == shard_for_key(stream.name, N_SHARDS)
                return dict(zip(datasets, served))
            finally:
                await service.stop()

        online = asyncio.run(scenario())
        for name, values in datasets.items():
            assert online[name] == offline[name], f"stream {name} diverged"
            # sanity: the workload actually produced detections to compare
            kinds = [event["kind"] for event in online[name]]
            assert "warmup" in kinds
        total_change_points = sum(
            1 for events in online.values() for event in events
            if event["kind"] == "change_point"
        )
        assert total_change_points >= 6  # 2 true change points per stream

    def test_freeze_resume_on_same_shard_is_bit_identical(self):
        """Freeze → checkpoint → resume without moving shards, mid-stream."""
        values = _dataset(seed=42)
        offline = _offline_events(values)

        async def scenario():
            service = SegmentationService(n_shards=2)
            await service.start(port=0)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/fr", {"config": CONFIG})
                half = len(values) // 2
                await client.request(
                    "POST", "/streams/fr/observations", {"values": values[:half].tolist()}
                )
                status, body = await client.request("POST", "/streams/fr/freeze")
                assert status == 200 and body["frozen"] is True
                status, body = await client.request("POST", "/streams/fr/resume")
                assert status == 200 and body["n_seen"] == half
                await client.request(
                    "POST", "/streams/fr/observations", {"values": values[half:].tolist()}
                )
                status, body = await client.request("GET", "/streams/fr/events?since=0")
                return body["events"]
            finally:
                await client.close()
                await service.stop()

        assert asyncio.run(scenario()) == offline

    def test_websocket_ingest_matches_offline(self):
        """Observations pushed over the WebSocket produce identical events."""
        values = _dataset(seed=7)
        offline = _offline_events(values)

        async def scenario():
            service = SegmentationService(n_shards=2)
            await service.start(port=0)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/ws", {"config": CONFIG})
                session = await client.open_websocket("/streams/ws/ws")
                collected = []
                for start in range(0, len(values), 300):
                    await session.send_json(
                        {"values": values[start : start + 300].tolist()}
                    )
                    while True:
                        message = await session.recv_json()
                        assert message is not None
                        if message["kind"] == "ack":
                            break
                        if message["kind"] == "error":
                            pytest.fail(f"websocket error: {message}")
                        collected.append(message)
                await session.close()
                return collected
            finally:
                await client.close()
                await service.stop()

        assert asyncio.run(scenario()) == offline
