"""Unit tests for the segment-level signal generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    GENERATORS,
    activity_like,
    ar_process,
    ecg_like,
    eeg_like,
    gaussian_noise,
    get_generator,
    random_walk,
    respiration_like,
    sawtooth_wave,
    sine_wave,
    square_wave,
)
from repro.utils.exceptions import ConfigurationError


class TestBasicGenerators:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_length_and_finiteness(self, rng, name):
        values = GENERATORS[name](500, rng)
        assert values.shape == (500,)
        assert np.isfinite(values).all()

    def test_sine_period_visible_in_spectrum(self, rng):
        values = sine_wave(2_000, rng, period=50, noise=0.01)
        spectrum = np.abs(np.fft.rfft(values - values.mean()))
        dominant = np.argmax(spectrum[1:]) + 1
        period = 1.0 / np.fft.rfftfreq(2_000)[dominant]
        assert period == pytest.approx(50, rel=0.1)

    def test_square_wave_amplitude(self, rng):
        values = square_wave(1_000, rng, amplitude=2.0, noise=0.0)
        assert set(np.round(np.unique(values), 6).tolist()) <= {-2.0, 2.0}

    def test_sawtooth_range(self, rng):
        values = sawtooth_wave(1_000, rng, amplitude=1.0, noise=0.0)
        assert values.min() >= -1.0 - 1e-9 and values.max() <= 1.0 + 1e-9

    def test_gaussian_noise_statistics(self, rng):
        values = gaussian_noise(20_000, rng, mean=1.0, std=2.0)
        assert values.mean() == pytest.approx(1.0, abs=0.1)
        assert values.std() == pytest.approx(2.0, abs=0.1)

    def test_random_walk_is_centred(self, rng):
        values = random_walk(5_000, rng)
        assert values.mean() == pytest.approx(0.0, abs=1e-9)

    def test_ar_process_autocorrelated(self, rng):
        values = ar_process(5_000, rng, coefficients=(0.9,), noise=1.0)
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert lag1 > 0.6


class TestDomainGenerators:
    def test_ecg_has_sharp_peaks(self, rng):
        values = ecg_like(2_000, rng, beat_period=80, noise=0.01)
        # R peaks should clearly exceed the bulk of the signal
        assert np.percentile(values, 99.5) > 4 * np.std(values)

    def test_ecg_fibrillation_differs_from_normal(self, rng):
        normal = ecg_like(2_000, rng, beat_period=80, noise=0.01)
        fib = ecg_like(
            2_000, np.random.default_rng(1), beat_period=80, noise=0.01, fibrillation=True
        )
        # fibrillation removes the spiky beats: kurtosis drops substantially
        def kurtosis(x):
            z = (x - x.mean()) / x.std()
            return float(np.mean(z ** 4))
        assert kurtosis(normal) > kurtosis(fib) + 1.0

    def test_activity_amplitude_scales(self, rng):
        quiet = activity_like(2_000, rng, amplitude=0.3)
        strong = activity_like(2_000, np.random.default_rng(2), amplitude=2.5)
        assert strong.std() > 2 * quiet.std()

    def test_respiration_slow_oscillation(self, rng):
        values = respiration_like(4_000, rng, breath_period=200, noise=0.01)
        spectrum = np.abs(np.fft.rfft(values - values.mean()))
        dominant = np.argmax(spectrum[1:]) + 1
        period = 1.0 / np.fft.rfftfreq(4_000)[dominant]
        assert 120 < period < 320

    def test_eeg_band_limited(self, rng):
        values = eeg_like(4_096, rng, band=(0.1, 0.2), noise=0.0)
        spectrum = np.abs(np.fft.rfft(values))
        freqs = np.fft.rfftfreq(4_096)
        in_band = spectrum[(freqs >= 0.1) & (freqs <= 0.2)].sum()
        out_band = spectrum[(freqs < 0.08) | (freqs > 0.25)].sum()
        assert in_band > 5 * out_band

    def test_eeg_invalid_band(self, rng):
        with pytest.raises(ConfigurationError):
            eeg_like(1_000, rng, band=(0.4, 0.2))


class TestRegistry:
    def test_lookup(self):
        assert get_generator("sine") is sine_wave

    def test_unknown_generator(self):
        with pytest.raises(ConfigurationError):
            get_generator("fractal")
