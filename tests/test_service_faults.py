"""Chaos suite: injected crashes, hangs, corruption and connection drops.

The acceptance bar for the fault-tolerance work: after any injected fault —
a worker killed mid-batch, a corrupted newest checkpoint forcing recovery
to fall back one checkpoint and replay a longer tail, a hung job tripping
the per-job deadline, a severed WebSocket — the service recovers every
affected stream *automatically* and the observable event sequence is
bit-identical to an offline :func:`repro.api.stream` run over the same
data.  Clients ride through crashes with retry/backoff plus sequence-number
idempotency: every batch is acked exactly once.
"""

import asyncio
import json

import numpy as np
import pytest

from repro import api
from repro.datasets import SegmentSpec, compose_stream
from repro.service import (
    DurabilityConfig,
    FaultInjector,
    RetryPolicy,
    SegmentationService,
    ServiceClient,
    ServiceUnavailableError,
    SupervisorConfig,
)
from repro.service.faults import Fault, WorkerCrash, parse_fault
from repro.utils.exceptions import ConfigurationError

CONFIG = {"window_size": 200, "scoring_interval": 5}
CHUNK = 100
BATCH = 300


def _dataset(seed: int) -> np.ndarray:
    specs = [
        SegmentSpec("sine", 600, {"period": 20, "noise": 0.05}, label="slow"),
        SegmentSpec("square", 600, {"period": 50, "noise": 0.05}, label="cycling"),
    ]
    return compose_stream(specs, name=f"chaos-{seed}", seed=seed).values


def _offline_events(values: np.ndarray) -> list[dict]:
    segmenter = api.create("class", api.ClaSSConfig(**CONFIG))
    events = list(api.stream(segmenter, values, chunk_size=CHUNK))
    return [json.loads(json.dumps(event.to_dict())) for event in events]


def _service(tmp_path, faults, **supervision):
    return SegmentationService(
        n_shards=2,
        durability=DurabilityConfig(
            spool_dir=tmp_path / "spool",
            checkpoint_every_n=BATCH,
            checkpoint_every_seconds=None,
            fsync=False,
        ),
        faults=faults,
        supervision=SupervisorConfig(**supervision),
    )


async def _drive(service, name, values, *, retry=None):
    """Create a stream and push it in seq-numbered batches; return its events."""
    client = await ServiceClient(
        "127.0.0.1", service.port, retry=retry or RetryPolicy(backoff=0.02)
    ).connect()
    try:
        status, body = await client.request(
            "POST", f"/streams/{name}",
            {"detector": "class", "config": CONFIG, "chunk_size": CHUNK},
        )
        assert status == 201, body
        for seq, start in enumerate(range(0, len(values), BATCH)):
            status, body = await client.request(
                "POST", f"/streams/{name}/observations",
                {"values": values[start : start + BATCH].tolist(), "seq": seq},
            )
            assert status == 200, body
        status, body = await client.request("GET", f"/streams/{name}/events?since=0")
        assert status == 200
        return body["events"], client.n_retries
    finally:
        await client.close()


class TestCrashRecoveryBitIdentity:
    def test_kill_worker_recovers_bit_identically(self, tmp_path):
        """A worker killed between jobs: restart + restore, identical events."""
        values = _dataset(seed=1)
        offline = _offline_events(values)

        async def scenario():
            faults = FaultInjector()
            faults.arm("kill-worker", stream="kw", after=3)
            service = _service(tmp_path, faults)
            await service.start(port=0)
            try:
                events, n_retries = await _drive(service, "kw", values)
                return events, n_retries, service.supervisor.snapshot(), faults.fired
            finally:
                await service.stop()

        events, n_retries, supervision, fired = asyncio.run(scenario())
        assert ("kill-worker", 0, "kw") in fired or ("kill-worker", 1, "kw") in fired
        assert events == offline
        assert supervision["worker_restarts"] == 1
        assert supervision["n_recoveries"] == 1
        assert supervision["last_recovery_seconds"] is not None
        assert n_retries >= 1  # the crashed batch was retried, not lost

    def test_kill_mid_batch_recovers_bit_identically(self, tmp_path):
        """The tentpole acceptance test: a crash *between ingestion chunks*
        leaves the in-memory detector half-mutated; recovery rebuilds it from
        the checkpoint + write-ahead tail and the retried batch lands as a
        replayed ack — the event log matches offline exactly."""
        values = _dataset(seed=2)
        offline = _offline_events(values)

        async def scenario():
            faults = FaultInjector()
            # batches are 3 chunks; mid-batch hook fires twice per batch.
            # after=5 → crash on batch 3's first chunk boundary.
            faults.arm("kill-mid-batch", stream="mb", after=5)
            service = _service(tmp_path, faults)
            await service.start(port=0)
            try:
                events, n_retries = await _drive(service, "mb", values)
                stream = service.registry.get("mb")
                return events, n_retries, service.supervisor.recoveries, int(
                    stream.segmenter.n_seen
                )
            finally:
                await service.stop()

        events, n_retries, recoveries, n_seen = asyncio.run(scenario())
        assert events == offline
        assert n_seen == len(values)
        assert n_retries >= 1
        assert len(recoveries) == 1
        report = recoveries[0]
        assert report.stream == "mb"
        assert report.n_replayed_observations >= BATCH  # the in-flight batch
        assert report.fell_back is False

    def test_corrupt_newest_checkpoint_falls_back_and_replays(self, tmp_path):
        """A corrupted newest checkpoint: recovery falls back one checkpoint
        and replays the longer tail window — still bit-identical."""
        values = _dataset(seed=3)
        offline = _offline_events(values)

        async def scenario():
            faults = FaultInjector()
            # checkpoint writes: birth (n=0), then one per batch.  Corrupt the
            # checkpoint after batch 2 (n=600), crash mid-batch 3: recovery
            # must fall back to the n=300 checkpoint and replay two batches.
            faults.arm("corrupt-checkpoint", stream="cc", after=3)
            faults.arm("kill-mid-batch", stream="cc", after=5)
            service = _service(tmp_path, faults)
            await service.start(port=0)
            try:
                events, _ = await _drive(service, "cc", values)
                return events, service.supervisor.recoveries, faults.fired
            finally:
                await service.stop()

        events, recoveries, fired = asyncio.run(scenario())
        assert ("corrupt-checkpoint", None, "cc") in fired
        assert events == offline
        assert len(recoveries) == 1
        report = recoveries[0]
        assert report.fell_back is True
        assert report.checkpoint_n_seen == 300
        assert report.n_replayed_observations >= 2 * BATCH

    def test_hung_job_trips_deadline_and_restarts(self, tmp_path):
        """A job delayed past the per-job deadline counts as a hang: the
        worker is declared dead, restarted, and the batch retried."""
        values = _dataset(seed=4)[:600]
        offline = _offline_events(values)

        async def scenario():
            faults = FaultInjector()
            faults.arm("delay", stream="hang", after=2, seconds=5.0)
            service = _service(tmp_path, faults, job_deadline=0.2)
            await service.start(port=0)
            try:
                events, n_retries = await _drive(service, "hang", values)
                return events, n_retries, service.supervisor.total_restarts
            finally:
                await service.stop()

        events, n_retries, restarts = asyncio.run(scenario())
        assert events == offline
        assert restarts == 1
        assert n_retries >= 1

    def test_crash_metrics_are_reported(self, tmp_path):
        """/metrics exposes restart counts, recovery stats and error counters."""
        values = _dataset(seed=5)[:600]

        async def scenario():
            faults = FaultInjector()
            faults.arm("kill-worker", stream="mx", after=2)
            service = _service(tmp_path, faults)
            await service.start(port=0)
            client = await ServiceClient(
                "127.0.0.1", service.port, retry=RetryPolicy(backoff=0.02)
            ).connect()
            try:
                await _drive(service, "mx", values)
                status, metrics = await client.request("GET", "/metrics")
                assert status == 200
                return metrics, service.registry.get("mx").shard
            finally:
                await client.close()
                await service.stop()

        metrics, shard = asyncio.run(scenario())
        assert metrics["worker_restarts"] == 1
        assert metrics["restarts_per_shard"][shard] == 1
        assert metrics["n_recoveries"] == 1
        assert metrics["errors"].get("worker-crashed") == 1
        worker = next(w for w in metrics["workers"] if w["shard"] == shard)
        assert worker["restarts"] == 1
        assert worker["last_checkpoint_age_seconds"] is not None
        assert metrics["streams"]["mx"]["last_checkpoint_age_seconds"] is not None


class TestSequenceIdempotency:
    def test_duplicate_seq_replays_ack_and_older_seq_conflicts(self, tmp_path):
        async def scenario():
            service = SegmentationService(n_shards=1)
            await service.start(port=0)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/seq", {"config": CONFIG})
                batch = {"values": _dataset(seed=6)[:300].tolist(), "seq": 0}
                status, first = await client.request(
                    "POST", "/streams/seq/observations", batch
                )
                assert status == 200 and first["n_seen"] == 300
                # exact duplicate: replayed ack, no double ingestion
                status, dup = await client.request(
                    "POST", "/streams/seq/observations", batch
                )
                assert status == 200
                assert dup["replayed"] is True
                assert dup["n_seen"] == 300
                assert dup["events"] == first["events"]
                # push seq 1, then retry seq 0 again: now it is *stale*
                status, _ = await client.request(
                    "POST", "/streams/seq/observations",
                    {"values": [0.5] * 10, "seq": 1},
                )
                assert status == 200
                status, body = await client.request(
                    "POST", "/streams/seq/observations", batch
                )
                assert status == 409
                assert body["error"]["code"] == "stale-sequence"
                # a malformed sequence number is a typed 400
                status, body = await client.request(
                    "POST", "/streams/seq/observations",
                    {"values": [0.1], "seq": -3},
                )
                assert status == 400
                assert body["error"]["code"] == "bad-sequence"
                return int(service.registry.get("seq").segmenter.n_seen)
            finally:
                await client.close()
                await service.stop()

        assert asyncio.run(scenario()) == 310  # 300 + 10, duplicates ignored

    def test_websocket_ingest_honours_sequence_numbers(self, tmp_path):
        async def scenario():
            service = SegmentationService(n_shards=1)
            await service.start(port=0)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/wseq", {"config": CONFIG})
                session = await client.open_websocket("/streams/wseq/ws")
                await session.send_json({"values": [0.1, 0.2], "seq": 0})
                ack = await session.recv_json()
                assert ack == {"kind": "ack", "n_seen": 2, "seq": 0}
                await session.send_json({"values": [0.1, 0.2], "seq": 0})
                replay = await session.recv_json()
                assert replay["replayed"] is True and replay["n_seen"] == 2
                await session.close()
                return int(service.registry.get("wseq").segmenter.n_seen)
            finally:
                await client.close()
                await service.stop()

        assert asyncio.run(scenario()) == 2


class TestLoadShedding:
    def test_full_queue_sheds_with_503_and_retry_after(self, tmp_path):
        async def scenario():
            faults = FaultInjector()
            faults.arm("delay", stream="sh", seconds=0.6)  # occupy the worker
            service = SegmentationService(
                n_shards=1,
                faults=faults,
                supervision=SupervisorConfig(max_queue_depth=1, retry_after=0.07),
            )
            await service.start(port=0)
            clients = [
                await ServiceClient(
                    "127.0.0.1", service.port, retry=RetryPolicy(retries=0)
                ).connect()
                for _ in range(3)
            ]
            try:
                await clients[0].request("POST", "/streams/sh", {"config": CONFIG})
                blocked = asyncio.create_task(  # held by the delay fault
                    clients[0].request(
                        "POST", "/streams/sh/observations", {"values": [0.1]}
                    )
                )
                await asyncio.sleep(0.1)  # worker now sleeping inside the job
                queued = asyncio.create_task(  # fills the depth-1 queue
                    clients[1].request(
                        "POST", "/streams/sh/observations", {"values": [0.2]}
                    )
                )
                await asyncio.sleep(0.1)
                with pytest.raises(ServiceUnavailableError) as caught:
                    await clients[2].request(
                        "POST", "/streams/sh/observations", {"values": [0.3]}
                    )
                # both held requests complete once the delay elapses
                assert (await blocked)[0] == 200
                assert (await queued)[0] == 200
                return caught.value
            finally:
                for client in clients:
                    await client.close()
                await service.stop()

        error = asyncio.run(scenario())
        assert error.status == 503
        assert error.code == "overloaded"
        assert error.retry_after == pytest.approx(0.07)

    def test_client_retries_through_backpressure(self, tmp_path):
        """With retries enabled the same shedding is invisible to the caller."""

        async def scenario():
            faults = FaultInjector()
            faults.arm("delay", stream="bp", seconds=0.3)
            service = SegmentationService(
                n_shards=1,
                faults=faults,
                supervision=SupervisorConfig(max_queue_depth=1, retry_after=0.05),
            )
            await service.start(port=0)
            clients = [
                await ServiceClient(
                    "127.0.0.1", service.port,
                    retry=RetryPolicy(retries=6, backoff=0.05),
                ).connect()
                for _ in range(3)
            ]
            try:
                await clients[0].request("POST", "/streams/bp", {"config": CONFIG})
                pushes = [
                    asyncio.create_task(
                        client.request(
                            "POST", "/streams/bp/observations",
                            {"values": [0.1 * (i + 1)], "seq": None},
                        )
                    )
                    for i, client in enumerate(clients)
                ]
                outcomes = await asyncio.gather(*pushes)
                return outcomes, int(service.registry.get("bp").segmenter.n_seen)
            finally:
                for client in clients:
                    await client.close()
                await service.stop()

        outcomes, n_seen = asyncio.run(scenario())
        assert all(status == 200 for status, _ in outcomes)
        assert n_seen == 3


class TestWebSocketDropAndResume:
    def test_dropped_socket_resumes_without_loss_or_duplication(self, tmp_path):
        values = _dataset(seed=7)
        offline = _offline_events(values)

        async def scenario():
            faults = FaultInjector()
            service = _service(tmp_path, faults)
            await service.start(port=0)
            client = await ServiceClient(
                "127.0.0.1", service.port, retry=RetryPolicy(backoff=0.02)
            ).connect()
            try:
                await client.request(
                    "POST", "/streams/dw",
                    {"detector": "class", "config": CONFIG, "chunk_size": CHUNK},
                )
                session = await client.open_stream("dw")
                collected = []
                half = len(values) // 2
                for seq, start in enumerate(range(0, half, BATCH)):
                    await session.send_json(
                        {"values": values[start : start + BATCH].tolist(), "seq": seq}
                    )
                    while True:
                        message = await session.recv_json()
                        assert message is not None
                        if message["kind"] == "ack":
                            break
                        collected.append(message)
                # sever the link abruptly on the next inbound frame
                faults.arm("drop-ws", stream="dw")
                await session.send_json({"values": values[half : half + 1].tolist()})
                assert await session.recv_json() is None  # connection died
                # resume from the delivered-event cursor; re-push the rest
                session = await client.resume_stream(session)
                next_seq = half // BATCH
                for seq, start in enumerate(range(half, len(values), BATCH), next_seq):
                    await session.send_json(
                        {"values": values[start : start + BATCH].tolist(), "seq": seq}
                    )
                    while True:
                        message = await session.recv_json()
                        assert message is not None
                        if message["kind"] == "ack":
                            break
                        collected.append(message)
                await session.close()
                return collected, faults.fired
            finally:
                await client.close()
                await service.stop()

        collected, fired = asyncio.run(scenario())
        assert ("drop-ws", None, "dw") in fired
        assert collected == offline


class TestFaultSpecs:
    def test_parse_fault_grammar(self):
        fault = parse_fault("kill-mid-batch:stream=s1:after=3:times=2")
        assert fault.kind == "kill-mid-batch"
        assert fault.stream == "s1" and fault.after == 3 and fault.times == 2
        delay = parse_fault("delay:shard=1:seconds=2.5")
        assert delay.shard == 1 and delay.seconds == 2.5

    def test_parse_fault_rejects_bad_specs(self):
        for spec in ("explode", "delay:seconds=fast", "delay:color=red", "delay:nope"):
            with pytest.raises(ConfigurationError):
                parse_fault(spec)

    def test_from_env_builds_injector(self):
        injector = FaultInjector.from_env(
            {"REPRO_FAULTS": "kill-worker:shard=0, delay:seconds=1"}
        )
        assert [fault.kind for fault in injector.faults] == ["kill-worker", "delay"]
        assert FaultInjector.from_env({}) is None
        assert FaultInjector.from_env({"REPRO_FAULTS": "  "}) is None

    def test_fault_counting_and_selectors(self):
        fault = Fault("kill-worker", shard=1, after=2, times=1)
        assert fault.should_fire(0, None) is False  # selector mismatch
        assert fault.should_fire(1, None) is False  # 1st match, after=2
        assert fault.should_fire(1, None) is True   # 2nd match fires
        assert fault.should_fire(1, None) is False  # times exhausted

    def test_unmatched_hooks_are_noops(self):
        injector = FaultInjector()
        injector.arm("kill-mid-batch", stream="s1")
        injector.mid_batch(0, "other")  # no raise
        assert injector.fired == []
        with pytest.raises(WorkerCrash):
            injector.mid_batch(0, "s1")
