"""Unit and property tests for the Covering metric (Eqn. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.covering import (
    change_points_to_segments,
    covering_matrix,
    covering_score,
    interval_jaccard,
)
from repro.utils.exceptions import ValidationError


class TestSegmentsConversion:
    def test_empty_prediction_gives_single_segment(self):
        assert change_points_to_segments([], 100) == [(0, 100)]

    def test_change_points_sorted_and_deduplicated(self):
        segments = change_points_to_segments([70, 30, 30], 100)
        assert segments == [(0, 30), (30, 70), (70, 100)]

    def test_out_of_range_points_dropped(self):
        segments = change_points_to_segments([-5, 0, 50, 100, 140], 100)
        assert segments == [(0, 50), (50, 100)]

    def test_invalid_length(self):
        with pytest.raises(ValidationError):
            change_points_to_segments([10], 0)


class TestIntervalJaccard:
    def test_identical(self):
        assert interval_jaccard((0, 10), (0, 10)) == pytest.approx(1.0)

    def test_disjoint(self):
        assert interval_jaccard((0, 10), (10, 20)) == pytest.approx(0.0)

    def test_half_overlap(self):
        assert interval_jaccard((0, 10), (5, 15)) == pytest.approx(5 / 15)


class TestCoveringScore:
    def test_perfect_prediction(self):
        assert covering_score([300, 600], [300, 600], 900) == pytest.approx(1.0)

    def test_empty_prediction_on_single_segment(self):
        assert covering_score([], [], 500) == pytest.approx(1.0)

    def test_empty_prediction_on_two_segments(self):
        # best overlap of each true half with the single predicted segment is 1/2
        assert covering_score([500], [], 1_000) == pytest.approx(0.5)

    def test_known_partial_overlap(self):
        # true segments [0,400) and [400,1000); prediction splits at 500
        score = covering_score([400], [500], 1_000)
        expected = 0.4 * (400 / 500) + 0.6 * (500 / 600)
        assert score == pytest.approx(expected)

    def test_over_segmentation_penalised(self):
        exact = covering_score([500], [500], 1_000)
        noisy = covering_score([500], [100, 200, 300, 400, 500, 600, 700, 800, 900], 1_000)
        assert noisy < exact

    def test_close_prediction_scores_high(self):
        assert covering_score([500], [510], 1_000) > 0.95

    @given(
        n=st.integers(min_value=50, max_value=2_000),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bounded_and_perfect_on_self(self, n, seed):
        rng = np.random.default_rng(seed)
        n_cps = int(rng.integers(0, 6))
        cps = np.sort(rng.choice(np.arange(1, n), size=min(n_cps, n - 2), replace=False))
        other = np.sort(
            rng.choice(np.arange(1, n), size=min(int(rng.integers(0, 6)), n - 2), replace=False)
        )
        score = covering_score(cps, other, n)
        assert 0.0 <= score <= 1.0
        assert covering_score(cps, cps, n) == pytest.approx(1.0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_prediction_order_irrelevant(self, seed):
        rng = np.random.default_rng(seed)
        n = 500
        cps = [100, 250, 400]
        prediction = rng.choice(np.arange(1, n), size=4, replace=False)
        a = covering_score(cps, prediction, n)
        b = covering_score(cps, prediction[::-1], n)
        assert a == pytest.approx(b)


class TestCoveringMatrix:
    def test_shape_and_values(self):
        matrix = covering_matrix([50], [40, 80], 100)
        assert matrix.shape == (2, 3)
        assert matrix.max() <= 1.0
