"""Tests for benchmark/archive factories, the registry and persistence."""

import numpy as np
import pytest

from repro.datasets import (
    ARCHIVE_COLLECTIONS,
    BENCHMARK_COLLECTIONS,
    COLLECTIONS,
    collection_summary,
    load_collection,
    load_collection_from_directory,
    load_dataset_csv,
    load_dataset_npz,
    make_mhealth_like,
    make_tssb_like,
    make_utsa_like,
    make_wesad_like,
    save_collection,
    save_dataset_csv,
    save_dataset_npz,
)
from repro.utils.exceptions import ConfigurationError, ValidationError


class TestBenchmarkFactories:
    def test_tssb_like_counts_and_ranges(self):
        collection = make_tssb_like(n_series=10, length_scale=0.3, seed=5)
        assert len(collection) == 10
        for dataset in collection:
            assert dataset.collection == "TSSB-like"
            assert 1 <= dataset.n_segments <= 9
            assert dataset.subsequence_width_hint is not None

    def test_utsa_like_segment_counts(self):
        collection = make_utsa_like(n_series=6, length_scale=0.3, seed=5)
        assert all(2 <= d.n_segments <= 3 for d in collection)

    def test_deterministic_given_seed(self):
        a = make_tssb_like(n_series=3, length_scale=0.3, seed=9)
        b = make_tssb_like(n_series=3, length_scale=0.3, seed=9)
        for da, db in zip(a, b):
            np.testing.assert_array_equal(da.values, db.values)
            np.testing.assert_array_equal(da.change_points, db.change_points)

    def test_length_scale_shrinks_series(self):
        small = make_tssb_like(n_series=3, length_scale=0.2, seed=4)
        large = make_tssb_like(n_series=3, length_scale=1.0, seed=4)
        assert np.median([len(d) for d in small]) < np.median([len(d) for d in large])


class TestArchiveFactories:
    def test_mhealth_has_twelve_activities(self):
        collection = make_mhealth_like(n_series=2, length_scale=0.1)
        assert all(d.n_segments == 12 for d in collection)

    def test_wesad_has_five_affect_states(self):
        collection = make_wesad_like(n_series=2, length_scale=0.1)
        assert all(d.n_segments == 5 for d in collection)
        assert all(len(set(d.segment_labels)) == 5 for d in collection)

    @pytest.mark.parametrize("name", ARCHIVE_COLLECTIONS)
    def test_all_archives_generate(self, name):
        collection = load_collection(name, n_series=2, length_scale=0.1)
        assert len(collection) == 2
        for dataset in collection:
            assert np.isfinite(dataset.values).all()
            assert dataset.n_segments >= 1


class TestRegistry:
    def test_registry_covers_table1(self):
        assert set(BENCHMARK_COLLECTIONS) | set(ARCHIVE_COLLECTIONS) == set(COLLECTIONS)
        assert len(COLLECTIONS) == 8

    def test_paper_specs_recorded(self):
        spec = COLLECTIONS["TSSB"]
        assert spec.paper_n_series == 75
        assert spec.paper_segments == (1, 3, 9)

    def test_unknown_collection(self):
        with pytest.raises(ConfigurationError):
            load_collection("UCI-HAR")

    def test_collection_summary(self):
        collection = load_collection("UTSA", n_series=4, length_scale=0.2)
        summary = collection_summary(collection)
        assert summary["n_series"] == 4
        assert summary["length_min"] <= summary["length_median"] <= summary["length_max"]


class TestPersistence:
    def test_npz_round_trip(self, tmp_path, small_dataset):
        path = save_dataset_npz(small_dataset, tmp_path / "demo.npz")
        loaded = load_dataset_npz(path)
        np.testing.assert_array_equal(loaded.values, small_dataset.values)
        np.testing.assert_array_equal(loaded.change_points, small_dataset.change_points)
        assert loaded.name == small_dataset.name
        assert loaded.metadata["segment_labels"] == small_dataset.metadata["segment_labels"]

    def test_csv_round_trip(self, tmp_path, small_dataset):
        path = save_dataset_csv(small_dataset, tmp_path / "demo.csv")
        loaded = load_dataset_csv(path)
        np.testing.assert_allclose(loaded.values, small_dataset.values)
        np.testing.assert_array_equal(loaded.change_points, small_dataset.change_points)

    def test_collection_round_trip(self, tmp_path):
        collection = make_tssb_like(n_series=3, length_scale=0.2, seed=3)
        save_collection(collection, tmp_path / "tssb")
        loaded = load_collection_from_directory(tmp_path / "tssb")
        assert len(loaded) == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            load_dataset_npz(tmp_path / "missing.npz")
        with pytest.raises(ValidationError):
            load_collection_from_directory(tmp_path / "missing_dir")
