"""Tests of the CI benchmark regression gate (``benchmarks/compare_bench.py``).

Loaded by file path — the benchmarks directory is not a package.  The key
behaviour under test: a benchmark present in the current run but missing
from the baseline must produce a loud warning listing the uncovered names
(it used to be silently skipped by the shared-name intersection), while the
exit code still reflects only genuine regressions.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _write(path: Path, names_to_means: dict[str, float]) -> Path:
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in names_to_means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


class TestLoadBenchmarkMeans:
    def test_pytest_benchmark_schema(self, tmp_path):
        path = _write(tmp_path / "a.json", {"bench_a": 0.5, "bench_b": 1.25})
        assert compare_bench.load_benchmark_means(path) == {"bench_a": 0.5, "bench_b": 1.25}

    def test_sweep_schema_keys_cells_by_backend_window_chunk(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "bench_kernels",
                    "entries": [
                        {"backend": "numpy", "window": 2000, "chunk": 64, "points_per_second": 100.0}
                    ],
                }
            )
        )
        means = compare_bench.load_benchmark_means(path)
        assert means == {"bench_kernels[backend=numpy,window=2000,chunk=64]": pytest.approx(0.01)}


class TestCompare:
    def test_detects_regression_beyond_limit(self, capsys):
        failures = compare_bench.compare({"a": 1.0}, {"a": 1.5}, max_regression=0.30)
        assert len(failures) == 1 and "a" in failures[0]
        assert "REGRESSION" in capsys.readouterr().out

    def test_within_limit_passes(self, capsys):
        assert compare_bench.compare({"a": 1.0}, {"a": 1.2}, max_regression=0.30) == []
        assert "ok" in capsys.readouterr().out


class TestUncoveredBenchmarks:
    def test_lists_current_only_names(self):
        uncovered = compare_bench.uncovered_benchmarks(
            {"old": 1.0, "shared": 1.0}, {"shared": 1.0, "new_b": 1.0, "new_a": 1.0}
        )
        assert uncovered == ["new_a", "new_b"]

    def test_main_warns_about_uncovered_but_exits_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", {"shared": 1.0})
        current = _write(tmp_path / "cur.json", {"shared": 1.0, "brand_new": 2.0})
        assert compare_bench.main([str(baseline), str(current)]) == 0
        captured = capsys.readouterr()
        assert "NOT regression-gated" in captured.err
        assert "brand_new" in captured.err
        assert "shared" not in captured.err  # covered benchmarks are not flagged

    def test_main_still_fails_on_regression_with_uncovered_present(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", {"shared": 1.0})
        current = _write(tmp_path / "cur.json", {"shared": 2.0, "brand_new": 1.0})
        assert compare_bench.main([str(baseline), str(current)]) == 1
        captured = capsys.readouterr()
        assert "brand_new" in captured.err
        assert "FAILED" in captured.err

    def test_fully_covered_run_prints_no_warning(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", {"a": 1.0})
        current = _write(tmp_path / "cur.json", {"a": 1.0})
        assert compare_bench.main([str(baseline), str(current)]) == 0
        assert "NOT regression-gated" not in capsys.readouterr().err


class TestMainEdgeCases:
    def test_missing_baseline_file_skips(self, tmp_path, capsys):
        current = _write(tmp_path / "cur.json", {"a": 1.0})
        assert compare_bench.main([str(tmp_path / "nope.json"), str(current)]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_unreadable_current_is_exit_2(self, tmp_path):
        baseline = _write(tmp_path / "base.json", {"a": 1.0})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert compare_bench.main([str(baseline), str(bad)]) == 2
