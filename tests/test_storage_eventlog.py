"""Event log tests: framing, cursors, range reads, torn-tail recovery.

The crash case pins the ISSUE 9 satellite: a torn final record (short
header, short body, or CRC mismatch) is detected on open and physically
truncated — the log never silently serves a half-written record.
"""

import json

import pytest

from repro.api.events import ChangePointEvent
from repro.storage import EventLog
from repro.utils.exceptions import (
    ConfigurationError,
    CorruptRecordError,
    StorageError,
)


def fill(log, n, step=10):
    for i in range(n):
        log.append(i * step, {"kind": "score", "at": i * step, "score": float(i)})


class TestAppendRead:
    def test_round_trip_and_cursor(self, tmp_path):
        with EventLog(tmp_path / "e.log") as log:
            fill(log, 20)
            assert len(log) == 20
            assert log.last_at == 190
            events = log.read_since(0)
            assert len(events) == 20
            assert events[0]["score"] == 0.0
            assert log.read_since(15) == events[15:]
            assert log.read_since(99) == []
            assert log.read_since(5, limit=3) == events[5:8]

    def test_reopen_resumes_sequence(self, tmp_path):
        with EventLog(tmp_path / "e.log") as log:
            fill(log, 10)
        with EventLog(tmp_path / "e.log") as log:
            assert len(log) == 10
            assert log.append(500, {"kind": "score", "at": 500, "score": 9.0}) == 10
            assert len(log.read_since(0)) == 11

    def test_typed_event_round_trip(self, tmp_path):
        event = ChangePointEvent(at=5_200, change_point=5_000, score=0.93, p_value=1e-30)
        with EventLog(tmp_path / "e.log") as log:
            log.append_event(event)
            record = next(log.iter_records())
        assert record == {"seq": 0, "at": 5_200, "event": event.to_dict()}

    def test_range_read_bisects_on_time(self, tmp_path):
        with EventLog(tmp_path / "e.log", index_every=8) as log:
            fill(log, 100)
            records = log.read_range(200, 400)
            assert [r["at"] for r in records] == list(range(200, 400, 10))
            assert [r["at"] for r in log.read_range(905)] == list(range(910, 1_000, 10))
            assert log.read_range(10_000) == []

    def test_at_regression_rejected(self, tmp_path):
        with EventLog(tmp_path / "e.log") as log:
            log.append(100, {"kind": "score", "at": 100, "score": 0.0})
            with pytest.raises(StorageError, match="regresses"):
                log.append(50, {"kind": "score", "at": 50, "score": 0.0})

    def test_bad_index_every_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EventLog(tmp_path / "e.log", index_every=0)


class TestSparseIndex:
    def test_hints_written_and_used(self, tmp_path):
        with EventLog(tmp_path / "e.log", index_every=4) as log:
            fill(log, 30)
            assert log.info()["n_index_hints"] == 8  # seqs 0,4,...,28
        hints = [json.loads(line) for line in (tmp_path / "e.log.idx").read_text().splitlines()]
        assert [h["seq"] for h in hints] == list(range(0, 30, 4))

    def test_stale_sidecar_rebuilt(self, tmp_path):
        with EventLog(tmp_path / "e.log", index_every=4) as log:
            fill(log, 30)
        (tmp_path / "e.log.idx").write_text('{"seq": 999, "at": 0, "offset": 123456}\n')
        with EventLog(tmp_path / "e.log", index_every=4) as log:
            assert len(log) == 30  # full scan fallback
            assert len(log.read_since(17)) == 13

    def test_garbage_sidecar_rebuilt(self, tmp_path):
        with EventLog(tmp_path / "e.log") as log:
            fill(log, 10)
        (tmp_path / "e.log.idx").write_text("not json at all\n")
        with EventLog(tmp_path / "e.log") as log:
            assert len(log) == 10

    def test_deleted_sidecar_is_fine(self, tmp_path):
        with EventLog(tmp_path / "e.log", index_every=4) as log:
            fill(log, 30)
        (tmp_path / "e.log.idx").unlink()
        with EventLog(tmp_path / "e.log") as log:
            assert len(log.read_since(0)) == 30


class TestCrashRecovery:
    @pytest.mark.parametrize("torn_bytes", [1, 5, 9, 40])
    def test_torn_final_record_truncated_on_open(self, tmp_path, torn_bytes):
        with EventLog(tmp_path / "e.log") as log:
            fill(log, 10)
        path = tmp_path / "e.log"
        intact_after_9 = None
        with EventLog(tmp_path / "probe.log") as probe:
            fill(probe, 9)
            intact_after_9 = probe.info()["bytes"]
        size = path.stat().st_size
        path.write_bytes(path.read_bytes()[: size - torn_bytes])
        with EventLog(path) as log:
            # everything before the torn record survives intact
            assert len(log) == 9
            assert path.stat().st_size == intact_after_9
            events = log.read_since(0)
            assert [e["at"] for e in events] == [i * 10 for i in range(9)]
            # appending after recovery reuses the truncated tail position
            assert log.append(300, {"kind": "score", "at": 300, "score": 1.0}) == 9
            assert len(log.read_since(0)) == 10

    def test_corrupt_crc_tail_truncated(self, tmp_path):
        with EventLog(tmp_path / "e.log") as log:
            fill(log, 5)
        path = tmp_path / "e.log"
        raw = bytearray(path.read_bytes())
        raw[-2] ^= 0xFF  # flip a byte inside the final record's body
        path.write_bytes(bytes(raw))
        with EventLog(path) as log:
            assert len(log) == 4

    def test_mid_file_corruption_raises_on_read(self, tmp_path):
        with EventLog(tmp_path / "e.log", index_every=2) as log:
            fill(log, 10)
            second_record = list(log.iter_records())[1]
        path = tmp_path / "e.log"
        raw = bytearray(path.read_bytes())
        # flip a byte inside record 1's body (well before the tail)
        body = json.dumps(second_record, separators=(",", ":"), sort_keys=True).encode()
        offset = raw.find(body)
        assert offset > 0
        raw[offset + 5] ^= 0xFF
        path.write_bytes(bytes(raw))
        # open seeks via the (intact) newest index hint, so the committed
        # range still counts 10 — but reading across the damage surfaces a
        # typed error instead of a silently wrong record
        with EventLog(path, index_every=2) as log:
            assert len(log) == 10
            with pytest.raises(CorruptRecordError, match="integrity"):
                list(log.iter_records())

    def test_iter_detects_corruption_after_open(self, tmp_path):
        with EventLog(tmp_path / "e.log") as log:
            fill(log, 5)
            path = tmp_path / "e.log"
            raw = bytearray(path.read_bytes())
            raw[15] ^= 0xFF  # corrupt record 0 while the log stays open
            path.write_bytes(bytes(raw))
            with pytest.raises(CorruptRecordError, match="integrity"):
                list(log.iter_records())

    def test_torn_tail_with_dangling_hints(self, tmp_path):
        with EventLog(tmp_path / "e.log", index_every=2) as log:
            fill(log, 10)
        path = tmp_path / "e.log"
        # tear back into hinted territory: drop the last 4 records' bytes
        with EventLog(tmp_path / "probe.log", index_every=2) as probe:
            fill(probe, 6)
            keep = probe.info()["bytes"]
        path.write_bytes(path.read_bytes()[:keep])
        with EventLog(path, index_every=2) as log:
            assert len(log) == 6
            assert len(log.read_since(0)) == 6
