"""Unit tests for the Window baseline's segment cost functions."""

import numpy as np
import pytest

from repro.competitors.costs import (
    COST_FUNCTIONS,
    cost_ar,
    cost_gaussian,
    cost_kernel,
    cost_l1,
    cost_l2,
    cost_mahalanobis,
    discrepancy,
    get_cost_function,
)
from repro.utils.exceptions import ConfigurationError


class TestIndividualCosts:
    def test_l2_is_sum_of_squared_deviations(self, rng):
        segment = rng.normal(size=100)
        assert cost_l2(segment) == pytest.approx(np.sum((segment - segment.mean()) ** 2))

    def test_l1_uses_median(self):
        segment = np.array([0.0, 0.0, 0.0, 10.0])
        assert cost_l1(segment) == pytest.approx(10.0)

    def test_costs_zero_for_empty_or_tiny_segments(self):
        assert cost_l2(np.array([])) == 0.0
        assert cost_gaussian(np.array([1.0])) == 0.0
        assert cost_mahalanobis(np.array([2.0])) == 0.0

    def test_gaussian_cost_increases_with_variance(self, rng):
        low = cost_gaussian(rng.normal(0, 0.1, 200))
        high = cost_gaussian(rng.normal(0, 5.0, 200))
        assert high > low

    def test_ar_cost_lower_for_ar_process(self, rng):
        # an AR(1)-predictable signal has lower AR cost than white noise of the
        # same variance
        noise = rng.normal(size=400)
        ar = np.zeros(400)
        for t in range(1, 400):
            ar[t] = 0.95 * ar[t - 1] + 0.1 * noise[t]
        ar = ar / ar.std() * noise.std()
        assert cost_ar(ar) < cost_ar(noise)

    def test_kernel_cost_nonnegative(self, rng):
        assert cost_kernel(rng.normal(size=150)) >= 0.0

    def test_mahalanobis_is_scale_invariant(self, rng):
        segment = rng.normal(size=200)
        assert cost_mahalanobis(segment) == pytest.approx(cost_mahalanobis(10 * segment), rel=1e-9)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in COST_FUNCTIONS:
            assert callable(get_cost_function(name))

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_cost_function("huber")


class TestDiscrepancy:
    @pytest.mark.parametrize("cost_name", ["l2", "gaussian", "ar", "l1"])
    def test_higher_at_change_than_within_segment(self, rng, cost_name):
        cost = get_cost_function(cost_name)
        homogeneous = rng.normal(0, 1, 400)
        shifted = np.concatenate([rng.normal(0, 1, 200), rng.normal(6, 1, 200)])
        assert discrepancy(shifted, cost) > discrepancy(homogeneous, cost)

    def test_bounded_in_unit_interval(self, rng):
        cost = get_cost_function("l2")
        for _ in range(5):
            value = discrepancy(rng.normal(size=100), cost)
            assert 0.0 <= value <= 1.0

    def test_tiny_segment_returns_zero(self):
        assert discrepancy(np.array([1.0, 2.0]), cost_l2) == 0.0
