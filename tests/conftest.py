"""Shared fixtures for the test suite: reproducible synthetic streams."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_collection_modifyitems(config, items):
    """Promote DeprecationWarning to an error for legacy-path tests.

    Tests marked ``legacy_api`` exercise deprecated surfaces (the ``extend``
    alias, ``class_factory``); the strict filter guarantees the deprecation
    actually fires (via ``pytest.warns``) and that the legacy path emits
    nothing beyond the documented warning.
    """
    for item in items:
        if item.get_closest_marker("legacy_api"):
            item.add_marker(pytest.mark.filterwarnings("error::DeprecationWarning"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def sine_square_stream(rng) -> tuple[np.ndarray, int]:
    """A stream switching from a sine to a square wave at a known change point."""
    change_point = 1_500
    t = np.arange(change_point)
    first = np.sin(2 * np.pi * t / 25)
    second = 2.0 * np.sign(np.sin(2 * np.pi * t / 60))
    values = np.concatenate([first, second]) + rng.normal(0.0, 0.1, 2 * change_point)
    return values, change_point


@pytest.fixture
def frequency_shift_stream(rng) -> tuple[np.ndarray, int]:
    """A stream whose oscillation period doubles at a known change point."""
    change_point = 1_200
    t = np.arange(change_point)
    first = np.sin(2 * np.pi * t / 20)
    second = np.sin(2 * np.pi * t / 55)
    values = np.concatenate([first, second]) + rng.normal(0.0, 0.05, 2 * change_point)
    return values, change_point


@pytest.fixture
def mean_shift_stream(rng) -> tuple[np.ndarray, int]:
    """A low-noise stream whose mean jumps at a known change point."""
    change_point = 1_000
    values = np.concatenate(
        [rng.normal(0.0, 0.3, change_point), rng.normal(4.0, 0.3, change_point)]
    )
    return values, change_point


@pytest.fixture
def stationary_noise(rng) -> np.ndarray:
    """A stationary white-noise stream with no change points."""
    return rng.normal(0.0, 1.0, 2_500)


@pytest.fixture
def small_dataset():
    """A tiny annotated dataset used by evaluation and engine tests."""
    from repro.datasets import SegmentSpec, compose_stream

    specs = [
        SegmentSpec("sine", 700, {"period": 30, "noise": 0.05}, label="sine"),
        SegmentSpec("square", 700, {"period": 70, "noise": 0.05}, label="square"),
        SegmentSpec("sine", 700, {"period": 12, "noise": 0.05}, label="fast_sine"),
    ]
    return compose_stream(
        specs, name="test_stream", collection="test", seed=7, subsequence_width=30
    )
