"""Unit tests for the dirty-data layer: DataPolicy, Sanitizer, pearson guard.

The chunk-spanning chaos tests (bit-identity across chunk sizes, backends,
checkpoint/resume and tiers) live in ``tests/test_quality_chaos.py``; this
file pins the value-object contract, the sanitizer's run semantics on small
hand-built inputs, and the degenerate-window (0-std) similarity guard.
"""

import json

import numpy as np
import pytest

from repro.core.quality import (
    DUPLICATE_POLICIES,
    NAN_POLICIES,
    DataPolicy,
    Sanitizer,
    coerce_data_policy,
)
from repro.core.similarity import pearson_from_dot_products
from repro.utils.exceptions import ConfigurationError


# --------------------------------------------------------------------------- #
# DataPolicy value object
# --------------------------------------------------------------------------- #


class TestDataPolicy:
    def test_default_policy_is_inert_reject(self):
        policy = DataPolicy().validate()
        assert policy.nan_policy == "reject"
        assert policy.duplicate_policy == "reject"
        assert policy.max_gap is None
        assert policy.reset_on_gap is False
        assert policy.sanitizes is False

    @pytest.mark.parametrize("nan_policy", NAN_POLICIES)
    @pytest.mark.parametrize("duplicate_policy", DUPLICATE_POLICIES)
    def test_json_round_trip(self, nan_policy, duplicate_policy):
        max_gap = 7 if nan_policy != "reject" else None
        policy = DataPolicy(
            nan_policy=nan_policy, max_gap=max_gap, duplicate_policy=duplicate_policy
        ).validate()
        assert DataPolicy.from_dict(policy.to_dict()) == policy
        assert DataPolicy.from_json(policy.to_json()) == policy
        json.loads(policy.to_json())  # genuinely JSON-safe

    def test_unknown_nan_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="nan_policy"):
            DataPolicy(nan_policy="zero-fill").validate()

    def test_unknown_duplicate_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate_policy"):
            DataPolicy(duplicate_policy="merge").validate()

    @pytest.mark.parametrize("max_gap", [0, -3, 2.5, True])
    def test_bad_max_gap_rejected(self, max_gap):
        with pytest.raises(ConfigurationError, match="max_gap"):
            DataPolicy(nan_policy="skip", max_gap=max_gap).validate()

    def test_max_gap_requires_repairing_policy(self):
        with pytest.raises(ConfigurationError, match="non-reject"):
            DataPolicy(max_gap=10).validate()

    def test_reset_on_gap_requires_max_gap(self):
        with pytest.raises(ConfigurationError, match="reset_on_gap"):
            DataPolicy(nan_policy="hold-last", reset_on_gap=True).validate()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown data_policy fields"):
            DataPolicy.from_dict({"nan_policy": "skip", "typo": 1})

    def test_from_json_rejects_invalid_document(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            DataPolicy.from_json("{not json")

    def test_coerce_accepts_none_policy_and_mapping(self):
        assert coerce_data_policy(None) is None
        policy = DataPolicy(nan_policy="skip")
        assert coerce_data_policy(policy) == policy
        assert coerce_data_policy({"nan_policy": "skip"}) == policy
        with pytest.raises(ConfigurationError):
            coerce_data_policy("hold-last")


# --------------------------------------------------------------------------- #
# Sanitizer run semantics
# --------------------------------------------------------------------------- #


def _collect(parts):
    """Concatenate a part list into (clean values, realised records)."""
    chunks = [p.values for p in parts if p.values is not None and len(p.values)]
    records = [p.record for p in parts if p.record is not None]
    values = np.concatenate(chunks) if chunks else np.empty(0)
    return values, records


class TestSanitizer:
    def test_reject_policy_refused(self):
        with pytest.raises(ConfigurationError, match="non-reject"):
            Sanitizer(DataPolicy())

    def test_clean_chunk_hot_path_returns_input_untouched(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="hold-last"))
        arr = np.arange(5.0)
        parts = sanitizer.feed(arr)
        assert len(parts) == 1
        assert parts[0].record is None
        np.testing.assert_array_equal(parts[0].values, arr)
        assert sanitizer.counters()["n_clean"] == 5

    def test_hold_last_repeats_last_finite_value(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="hold-last"))
        values, records = _collect(
            sanitizer.feed(np.array([1.0, 2.0, np.nan, np.inf, 5.0]))
        )
        np.testing.assert_array_equal(values, [1.0, 2.0, 2.0, 2.0, 5.0])
        (record,) = records
        assert (record.kind, record.length, record.n_nan, record.n_inf) == (
            "imputed", 2, 1, 1,
        )

    def test_linear_interp_bridges_between_anchors(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="linear-interp"))
        values, records = _collect(
            sanitizer.feed(np.array([0.0, np.nan, np.nan, np.nan, 4.0]))
        )
        np.testing.assert_allclose(values, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert records[0].kind == "imputed"

    def test_linear_interp_without_right_anchor_degrades_to_hold_last(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="linear-interp"))
        sanitizer.feed(np.array([3.0, np.nan, np.nan]))
        values, records = _collect(sanitizer.flush())
        np.testing.assert_array_equal(values, [3.0, 3.0])
        assert records[0].kind == "imputed"

    def test_skip_policy_drops_dirty_rows(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="skip"))
        values, records = _collect(
            sanitizer.feed(np.array([1.0, np.nan, np.nan, 2.0]))
        )
        np.testing.assert_array_equal(values, [1.0, 2.0])
        assert records[0].kind == "skipped"
        assert sanitizer.counters()["n_skipped"] == 2

    def test_leading_dirty_run_is_skipped_even_under_hold_last(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="hold-last"))
        values, records = _collect(sanitizer.feed(np.array([np.nan, np.nan, 7.0])))
        np.testing.assert_array_equal(values, [7.0])
        assert records[0].kind == "skipped"

    def test_run_longer_than_max_gap_becomes_gap(self):
        policy = DataPolicy(nan_policy="hold-last", max_gap=3, reset_on_gap=True)
        sanitizer = Sanitizer(policy)
        parts = sanitizer.feed(
            np.concatenate(([1.0], [np.nan] * 5, [2.0]))
        )
        values, records = _collect(parts)
        np.testing.assert_array_equal(values, [1.0, 2.0])
        (record,) = records
        assert record.kind == "gap"
        assert record.length == 5
        assert record.reset is True
        assert sanitizer.counters()["n_gaps"] == 1

    def test_run_within_max_gap_is_imputed(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="hold-last", max_gap=3))
        values, records = _collect(
            sanitizer.feed(np.array([1.0, np.nan, np.nan, 2.0]))
        )
        np.testing.assert_array_equal(values, [1.0, 1.0, 1.0, 2.0])
        assert records[0].kind == "imputed"

    def test_run_spanning_chunks_matches_single_chunk(self):
        whole = np.concatenate((np.arange(4.0), [np.nan] * 3, [9.0, 10.0]))
        one = Sanitizer(DataPolicy(nan_policy="linear-interp"))
        chunked = Sanitizer(DataPolicy(nan_policy="linear-interp"))
        values_one, records_one = _collect(one.feed(whole) + one.flush())
        parts = []
        for row in whole:  # point-wise: worst-case chunking
            parts.extend(chunked.feed(np.array([row])))
        parts.extend(chunked.flush())
        values_pw, records_pw = _collect(parts)
        np.testing.assert_array_equal(values_one, values_pw)
        assert records_one == records_pw

    def test_multichannel_row_dirty_when_any_channel_non_finite(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="hold-last"))
        chunk = np.array([[1.0, 2.0], [np.nan, 5.0], [3.0, 4.0]])
        values, records = _collect(sanitizer.feed(chunk))
        np.testing.assert_array_equal(values, [[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        assert records[0].length == 1

    def test_state_dict_round_trip_mid_run(self):
        policy = DataPolicy(nan_policy="hold-last", max_gap=10)
        first = Sanitizer(policy)
        first.feed(np.array([1.0, 2.0, np.nan, np.nan]))  # run still open
        resumed = Sanitizer(policy)
        resumed.load_state_dict(json.loads(json.dumps(first.state_dict())))
        tail = np.array([np.nan, 6.0])
        values_a, records_a = _collect(first.feed(tail))
        values_b, records_b = _collect(resumed.feed(tail))
        np.testing.assert_array_equal(values_a, values_b)
        assert records_a == records_b
        assert first.counters() == resumed.counters()

    def test_empty_chunk_is_a_no_op(self):
        sanitizer = Sanitizer(DataPolicy(nan_policy="skip"))
        assert sanitizer.feed(np.empty(0)) == []
        assert sanitizer.counters()["n_raw"] == 0


# --------------------------------------------------------------------------- #
# degenerate-window similarity guard (satellite: constant 0-std subsequences)
# --------------------------------------------------------------------------- #


class TestDegenerateWindowGuard:
    def test_zero_std_pairs_give_zero_correlation_without_warnings(self):
        dot_products = np.array([4.0, 0.0, 1.0])
        means = np.zeros(3)
        stds = np.array([0.0, 0.0, 1.0])  # constant subsequences: std == 0
        with np.errstate(divide="raise", invalid="raise"):
            corr = pearson_from_dot_products(
                dot_products, means, stds, query_index=0, window_size=2
            )
        assert np.isfinite(corr).all()
        np.testing.assert_array_equal(corr[:2], [0.0, 0.0])

    def test_constant_then_step_signal_segments_without_warnings(self):
        from repro import api

        values = np.concatenate(
            (
                np.zeros(400),  # fully constant warm-up region
                np.sin(np.arange(400) / 5.0) + 5.0,
            )
        )
        segmenter = api.create("class", {"window_size": 200})
        with np.errstate(divide="raise", invalid="raise"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                segmenter.process(values)
        assert int(segmenter.n_seen) == 800
