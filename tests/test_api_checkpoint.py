"""Checkpoint/resume tests: bit-identical completion for every segmenter.

The contract under test (the acceptance bar of the unified API): stream half
of a series, ``save_state`` (shipping the payload through pickle, as a worker
migration would), restore into a fresh instance, stream the rest — the
resumed run must report exactly the change points, detection times, scores
and p-values of the uninterrupted run, for ClaSS (across knn modes and
scoring intervals), MultivariateClaSS, the batch-ClaSP adapter and all eight
competitors.
"""

import pickle

import numpy as np
import pytest

from repro import api
from repro.core.streaming_knn import StreamingKNN
from repro.utils.exceptions import ConfigurationError

#: The eight competitors of the paper's evaluation plus the two registry extras.
COMPETITOR_KEYS = (
    "floss", "window", "bocd", "change-finder", "newma",
    "adwin", "ddm", "hddm", "hddm-w", "page-hinkley",
)


def _competitor_kwargs(key):
    """Stream-sized overrides for the two window-based competitors."""
    if key == "floss":
        return {"window_size": 500, "subsequence_width": 20}
    if key == "window":
        return {"window_size": 120}
    return {}


def _resume_through_pickle(segmenter):
    """Checkpoint, ship the payload through pickle, rebuild from it alone."""
    payload = pickle.loads(pickle.dumps(segmenter.save_state()))
    return api.restore(payload)


def _assert_same_outcome(uninterrupted, resumed):
    np.testing.assert_array_equal(uninterrupted.change_points, resumed.change_points)
    if hasattr(uninterrupted, "detection_times"):
        np.testing.assert_array_equal(
            uninterrupted.detection_times, resumed.detection_times
        )


@pytest.fixture(scope="module")
def checkpoint_stream():
    rng = np.random.default_rng(99)
    t = np.arange(900)
    values = np.concatenate(
        [np.sin(2 * np.pi * t / 20), np.sign(np.sin(2 * np.pi * t / 55))]
    ) + rng.normal(0, 0.08, 1_800)
    return values


class TestCompetitorCheckpoints:
    @pytest.mark.parametrize("key", COMPETITOR_KEYS)
    def test_resume_is_bit_identical(self, key, checkpoint_stream):
        kwargs = _competitor_kwargs(key)
        uninterrupted = api.create(key, **kwargs)
        uninterrupted.process(checkpoint_stream)
        uninterrupted.finalize()

        first_half = api.create(key, **kwargs)
        first_half.process(checkpoint_stream[:1_100])
        resumed = _resume_through_pickle(first_half)
        assert resumed is not first_half
        resumed.process(checkpoint_stream[1_100:])
        resumed.finalize()
        _assert_same_outcome(uninterrupted, resumed)
        assert resumed.n_seen == checkpoint_stream.shape[0]

    @pytest.mark.parametrize("key", COMPETITOR_KEYS)
    def test_direct_pickle_of_live_segmenter_also_resumes(self, key, checkpoint_stream):
        kwargs = _competitor_kwargs(key)
        uninterrupted = api.create(key, **kwargs)
        uninterrupted.process(checkpoint_stream)

        half = api.create(key, **kwargs)
        half.process(checkpoint_stream[:1_100])
        clone = pickle.loads(pickle.dumps(half))
        clone.process(checkpoint_stream[1_100:])
        _assert_same_outcome(uninterrupted, clone)


class TestClaSSCheckpoints:
    @pytest.mark.parametrize("knn_mode", ("streaming", "recompute", "fft"))
    @pytest.mark.parametrize("scoring_interval", (1, 7))
    def test_resume_is_bit_identical_across_modes_and_intervals(
        self, knn_mode, scoring_interval, checkpoint_stream
    ):
        config = api.ClaSSConfig(
            window_size=600,
            subsequence_width=20,
            scoring_interval=scoring_interval,
            knn_mode=knn_mode,
        )
        uninterrupted = api.create("class", config)
        uninterrupted.process(checkpoint_stream)

        half = api.create("class", config)
        half.process(checkpoint_stream[:1_000])
        resumed = _resume_through_pickle(half)
        resumed.process(checkpoint_stream[1_000:])

        assert resumed.config == config
        np.testing.assert_array_equal(uninterrupted.change_points, resumed.change_points)
        assert len(uninterrupted.reports) == len(resumed.reports)
        for expected, actual in zip(uninterrupted.reports, resumed.reports):
            assert expected.change_point == actual.change_point
            assert expected.detected_at == actual.detected_at
            assert expected.score == actual.score  # bit-identical, not approx
            assert expected.p_value == actual.p_value

    def test_checkpoint_during_warmup_learns_the_same_width(self, checkpoint_stream):
        config = api.ClaSSConfig(window_size=600, scoring_interval=10)  # width learned
        uninterrupted = api.create("class", config)
        uninterrupted.process(checkpoint_stream)

        early = api.create("class", config)
        early.process(checkpoint_stream[:200])  # still buffering the prefix
        resumed = _resume_through_pickle(early)
        assert resumed.subsequence_width_ is None
        resumed.process(checkpoint_stream[200:])
        assert resumed.subsequence_width_ == uninterrupted.subsequence_width_
        np.testing.assert_array_equal(uninterrupted.change_points, resumed.change_points)

    def test_resume_preserves_significance_rng_stream(self, checkpoint_stream):
        # the p-values after resume depend on the resampling RNG continuing
        # exactly where it stopped; a reseeded RNG would diverge
        config = api.ClaSSConfig(
            window_size=600, subsequence_width=20, scoring_interval=1,
            significance_level=1e-10,
        )
        uninterrupted = api.create("class", config)
        uninterrupted.process(checkpoint_stream)
        half = api.create("class", config)
        half.process(checkpoint_stream[:1_000])
        resumed = _resume_through_pickle(half)
        resumed.process(checkpoint_stream[1_000:])
        assert [r.p_value for r in resumed.reports] == [
            r.p_value for r in uninterrupted.reports
        ]

    def test_events_survive_the_round_trip(self, checkpoint_stream):
        config = api.ClaSSConfig(window_size=600, subsequence_width=20, scoring_interval=5)
        segmenter = api.create("class", config)
        segmenter.process(checkpoint_stream)
        resumed = _resume_through_pickle(segmenter)
        assert [e.to_dict() for e in resumed.events()] == [
            e.to_dict() for e in segmenter.events()
        ]


class TestMultivariateCheckpoints:
    def test_resume_is_bit_identical(self, checkpoint_stream):
        rng = np.random.default_rng(5)
        values = np.stack(
            [checkpoint_stream, np.roll(checkpoint_stream, 4), rng.normal(size=1_800)],
            axis=1,
        )
        config = api.MultivariateClaSSConfig(
            n_channels=3,
            min_votes=2,
            fusion_tolerance=300,
            channel_weights=(1.0, 1.0, 0.0),
            class_config=api.ClaSSConfig(
                window_size=700, subsequence_width=20, scoring_interval=20
            ),
        )
        uninterrupted = api.create("multivariate-class", config)
        uninterrupted.process(values)

        half = api.create("multivariate-class", config)
        half.process(values[:1_000])
        resumed = _resume_through_pickle(half)
        resumed.process(values[1_000:])
        np.testing.assert_array_equal(uninterrupted.change_points, resumed.change_points)
        assert [f.supporting_channels for f in resumed.fused_reports] == [
            f.supporting_channels for f in uninterrupted.fused_reports
        ]


class TestBatchClaSPCheckpoints:
    def test_resume_then_finalize_matches_uninterrupted(self, checkpoint_stream):
        uninterrupted = api.create("clasp", subsequence_width=20)
        uninterrupted.process(checkpoint_stream)
        uninterrupted.finalize()

        half = api.create("clasp", subsequence_width=20)
        half.process(checkpoint_stream[:700])
        resumed = _resume_through_pickle(half)
        resumed.process(checkpoint_stream[700:])
        resumed.finalize()
        np.testing.assert_array_equal(uninterrupted.change_points, resumed.change_points)

    def test_finalized_adapter_rejects_more_data(self, checkpoint_stream):
        adapter = api.create("clasp", subsequence_width=20)
        adapter.process(checkpoint_stream)
        adapter.finalize()
        with pytest.raises(ConfigurationError, match="finalized"):
            adapter.process(checkpoint_stream[:10])


class TestCheckpointEnvelope:
    def test_save_checkpoint_load_checkpoint_round_trip(self, tmp_path, checkpoint_stream):
        segmenter = api.create("class", window_size=600, subsequence_width=20)
        segmenter.process(checkpoint_stream[:1_000])
        path = api.save_checkpoint(segmenter, tmp_path / "state.ckpt")
        resumed = api.load_checkpoint(path)
        assert resumed.n_seen == segmenter.n_seen
        resumed.process(checkpoint_stream[1_000:])
        segmenter.process(checkpoint_stream[1_000:])
        np.testing.assert_array_equal(segmenter.change_points, resumed.change_points)

    def test_load_state_rejects_foreign_detector_payload(self, checkpoint_stream):
        ddm = api.create("ddm")
        ddm.process(checkpoint_stream[:100])
        payload = ddm.save_state()
        adwin = api.create("adwin")
        with pytest.raises(ConfigurationError, match="belongs to detector"):
            adwin.load_state(payload)

    def test_failed_restore_leaves_the_live_segmenter_untouched(self, checkpoint_stream):
        # a rejected payload must not corrupt the instance it was offered to:
        # validation happens before any mutation
        foreign = api.create("ddm")
        foreign.process(checkpoint_stream[:100])
        foreign_payload = foreign.save_state()

        segmenter = api.create("class", window_size=600, subsequence_width=20)
        segmenter.process(checkpoint_stream[:1_000])
        seen_before = segmenter.n_seen
        cps_before = segmenter.change_points.tolist()
        with pytest.raises(ConfigurationError):
            segmenter.load_state(foreign_payload)
        assert segmenter.n_seen == seen_before
        assert segmenter.change_points.tolist() == cps_before
        # and the stream continues exactly as if nothing happened
        reference = api.create("class", window_size=600, subsequence_width=20)
        reference.process(checkpoint_stream)
        segmenter.process(checkpoint_stream[1_000:])
        np.testing.assert_array_equal(reference.change_points, segmenter.change_points)

        ensemble = api.create(
            "multivariate-class",
            api.MultivariateClaSSConfig(
                n_channels=2,
                class_config=api.ClaSSConfig(window_size=600, subsequence_width=20),
            ),
        )
        ensemble.process(np.stack([checkpoint_stream, checkpoint_stream], axis=1)[:500])
        seen_before = ensemble.n_seen
        with pytest.raises(ConfigurationError):
            ensemble.load_state(foreign_payload)
        assert ensemble.n_seen == seen_before

    def test_load_state_rejects_unknown_format(self):
        segmenter = api.create("ddm")
        with pytest.raises(ConfigurationError, match="unsupported checkpoint format"):
            segmenter.load_state({"format": "repro.checkpoint/999", "detector": "ddm", "state": {}})

    def test_restore_rejects_malformed_payload(self):
        with pytest.raises(ConfigurationError):
            api.restore({"state": {}})


class TestStreamingKNNState:
    def test_state_dict_round_trip_is_bit_identical(self, rng):
        values = rng.normal(size=700)
        uninterrupted = StreamingKNN(window_size=200, subsequence_width=10)
        for ready in uninterrupted.update_many(values):
            pass

        half = StreamingKNN(window_size=200, subsequence_width=10)
        for ready in half.update_many(values[:400]):
            pass
        state = pickle.loads(pickle.dumps(half.state_dict()))
        resumed = StreamingKNN(window_size=200, subsequence_width=10)
        resumed.load_state_dict(state)
        for ready in resumed.update_many(values[400:]):
            pass
        np.testing.assert_array_equal(uninterrupted.knn_indices, resumed.knn_indices)
        np.testing.assert_array_equal(
            uninterrupted.knn_similarities, resumed.knn_similarities
        )

    def test_load_state_dict_rejects_mismatched_configuration(self, rng):
        knn = StreamingKNN(window_size=200, subsequence_width=10)
        for ready in knn.update_many(rng.normal(size=300)):
            pass
        other = StreamingKNN(window_size=100, subsequence_width=10)
        with pytest.raises(ConfigurationError, match="cannot restore"):
            other.load_state_dict(knn.state_dict())
