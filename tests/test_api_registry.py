"""Tests for the unified detector API: registry, typed configs, protocol."""

import pickle

import numpy as np
import pytest

from repro import api
from repro.utils.exceptions import ConfigurationError


class TestRegistry:
    def test_available_covers_class_clasp_and_all_competitors(self):
        keys = set(api.available())
        assert {
            "class", "multivariate-class", "clasp",
            "floss", "window", "bocd", "change-finder", "newma",
            "adwin", "ddm", "hddm", "hddm-w", "page-hinkley",
        } <= keys

    @pytest.mark.parametrize("key", sorted(api.available()))
    def test_create_builds_protocol_conformant_detectors(self, key):
        segmenter = api.create(key)
        assert isinstance(segmenter, api.Segmenter)
        assert api.ensure_segmenter(segmenter) is segmenter

    def test_paper_spellings_are_aliases(self):
        for name in ("ClaSS", "FLOSS", "Window", "BOCD", "ChangeFinder",
                     "NEWMA", "ADWIN", "DDM", "HDDM", "PageHinkley"):
            assert api.create(name) is not None

    def test_unknown_key_is_rejected_with_candidates(self):
        with pytest.raises(ConfigurationError, match="unknown detector"):
            api.create("bogus")

    def test_create_accepts_config_dict_and_overrides(self):
        segmenter = api.create("class", {"window_size": 2_000}, scoring_interval=5)
        assert segmenter.config.window_size == 2_000
        assert segmenter.config.scoring_interval == 5

    def test_create_rejects_mismatched_config_type(self):
        with pytest.raises(ConfigurationError, match="expects a ClaSSConfig"):
            api.create("class", api.FLOSSConfig())

    def test_create_validates_before_construction(self):
        with pytest.raises(ConfigurationError):
            api.create("class", score_threshold=1.5)

    def test_register_custom_detector(self):
        spec = api.register(
            "custom-ddm", api.DDMConfig, summary="shadowed DDM for the registry test"
        )
        try:
            assert spec.key == "custom-ddm"
            segmenter = api.create("Custom_DDM", min_observations=11)
            assert segmenter.name == "DDM"
            assert segmenter.min_observations == 11
        finally:
            from repro.api import registry

            registry._REGISTRY.pop("custom-ddm", None)

    def test_key_for_config_round_trips(self):
        for key in api.available():
            assert api.key_for_config(api.config_class(key)()) == key


class TestConfigs:
    @pytest.mark.parametrize("key", sorted(api.available()))
    def test_json_round_trip_for_every_registered_config(self, key):
        config_cls = api.config_class(key)
        config = config_cls()
        assert config_cls.from_dict(config.to_dict()) == config
        assert config_cls.from_json(config.to_json()) == config
        assert config_cls.from_json(config.to_json(indent=2)) == config

    @pytest.mark.parametrize("key", sorted(api.available()))
    def test_every_config_pickles_and_validates(self, key):
        config = api.config_class(key)()
        assert pickle.loads(pickle.dumps(config)) == config
        assert config.validate() is config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown ClaSSConfig fields"):
            api.ClaSSConfig.from_dict({"window_size": 100, "typo_field": 1})

    def test_from_json_rejects_invalid_document(self):
        with pytest.raises(ConfigurationError, match="invalid ClaSSConfig JSON"):
            api.ClaSSConfig.from_json("{not json")

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown ClaSSConfig fields"):
            api.ClaSSConfig().replace(bogus=1)

    def test_nested_multivariate_config_round_trips(self):
        config = api.MultivariateClaSSConfig(
            n_channels=3,
            min_votes=2,
            channel_weights=(1.0, 0.5, 0.0),
            class_config=api.ClaSSConfig(window_size=900, scoring_interval=10),
        )
        payload = config.to_dict()
        assert payload["class_config"]["window_size"] == 900
        assert payload["channel_weights"] == [1.0, 0.5, 0.0]
        restored = api.MultivariateClaSSConfig.from_dict(payload)
        assert restored == config
        assert isinstance(restored.class_config, api.ClaSSConfig)

    def test_validation_moved_out_of_init(self):
        # the config rejects what the detector __init__ used to reject,
        # without allocating any detector state
        with pytest.raises(ConfigurationError):
            api.ClaSSConfig(window_size=100, subsequence_width=40).validate()
        with pytest.raises(ConfigurationError):
            api.ClaSSConfig(cross_val_implementation="bogus").validate()
        with pytest.raises(ConfigurationError):
            api.ClaSSConfig(knn_mode="bogus").validate()
        with pytest.raises(ConfigurationError):
            api.BOCDConfig(hazard=2.0).validate()
        with pytest.raises(ConfigurationError):
            api.ADWINConfig(delta=0.0).validate()
        with pytest.raises(ConfigurationError):
            api.DDMConfig(warning_factor=5.0, drift_factor=2.0).validate()
        with pytest.raises(ConfigurationError):
            api.HDDMWConfig(lambda_=1.5).validate()
        with pytest.raises(ConfigurationError):
            api.WindowConfig(cost="bogus").validate()

    def test_config_build_equals_registry_create(self):
        config = api.ClaSSConfig(window_size=1_200, scoring_interval=25)
        built = config.build()
        created = api.create("class", config)
        assert built.config == created.config
        assert type(built) is type(created)

    def test_detector_construction_keeps_config(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = api.create(
            "class", window_size=1_000, subsequence_width=25, scoring_interval=50
        )
        segmenter.process(values)
        assert segmenter.config.window_size == 1_000
        assert isinstance(segmenter.change_points, np.ndarray)


class TestApiSurfaceGate:
    def test_committed_surface_matches_live_surface(self):
        import importlib.util
        from pathlib import Path

        script = Path(__file__).resolve().parent.parent / "scripts" / "check_api_surface.py"
        spec = importlib.util.spec_from_file_location("check_api_surface", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        removed, added = module.check()
        assert not removed, f"public API entries disappeared: {removed}"
        assert not added, f"public API grew without updating api_surface.txt: {added}"
