"""Unit tests for confusion-matrix based classification scores."""

import numpy as np
import pytest

from repro.core.scoring import (
    accuracy_score,
    binary_f1,
    confusion_from_labels,
    get_score_function,
    macro_f1_score,
)
from repro.utils.exceptions import ConfigurationError


class TestBinaryF1:
    def test_perfect(self):
        assert binary_f1(10, 0, 0) == pytest.approx(1.0)

    def test_no_true_positives(self):
        assert binary_f1(0, 5, 5) == pytest.approx(0.0)

    def test_known_value(self):
        # precision 0.8, recall 2/3 -> f1 = 2*0.8*(2/3)/(0.8+2/3)
        assert binary_f1(8, 2, 4) == pytest.approx(2 * 0.8 * (2 / 3) / (0.8 + 2 / 3))

    def test_vectorised(self):
        out = binary_f1(np.array([10, 0]), np.array([0, 5]), np.array([0, 5]))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(1.0)


class TestMacroF1:
    def test_perfect_classification(self):
        assert macro_f1_score(50, 0, 0, 50) == pytest.approx(1.0)

    def test_all_predicted_one_class(self):
        # everything predicted as class 1: class 0 F1 = 0, class 1 F1 = 2*p*r/(p+r)
        score = macro_f1_score(0, 30, 0, 70)
        precision1 = 70 / 100
        expected = 0.5 * (0.0 + 2 * precision1 * 1.0 / (precision1 + 1.0))
        assert score == pytest.approx(expected)

    def test_symmetric_in_class_swap(self):
        a = macro_f1_score(40, 10, 5, 45)
        b = macro_f1_score(45, 5, 10, 40)
        assert a == pytest.approx(b)

    def test_matches_sklearn_style_reference(self, rng):
        y_true = rng.integers(0, 2, 200)
        y_pred = rng.integers(0, 2, 200)
        n00, n01, n10, n11 = confusion_from_labels(y_true, y_pred)

        def f1(cls):
            tp = np.sum((y_true == cls) & (y_pred == cls))
            fp = np.sum((y_true != cls) & (y_pred == cls))
            fn = np.sum((y_true == cls) & (y_pred != cls))
            precision = tp / max(tp + fp, 1e-12)
            recall = tp / max(tp + fn, 1e-12)
            return 2 * precision * recall / max(precision + recall, 1e-12)

        expected = 0.5 * (f1(0) + f1(1))
        assert macro_f1_score(n00, n01, n10, n11) == pytest.approx(expected, abs=1e-9)


class TestAccuracy:
    def test_balanced_accuracy(self):
        # recall0 = 0.9, recall1 = 0.5
        assert accuracy_score(90, 10, 50, 50) == pytest.approx(0.7)

    def test_perfect(self):
        assert accuracy_score(10, 0, 0, 10) == pytest.approx(1.0)


class TestHelpers:
    def test_confusion_from_labels(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 0, 1])
        assert confusion_from_labels(y_true, y_pred) == (1, 1, 1, 2)

    def test_confusion_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            confusion_from_labels(np.zeros(3), np.zeros(4))

    def test_get_score_function(self):
        assert get_score_function("macro_f1") is macro_f1_score
        assert get_score_function("accuracy") is accuracy_score
        with pytest.raises(ConfigurationError):
            get_score_function("auc")
