"""Unit tests for the window size selection (WSS) algorithms."""

import numpy as np
import pytest

from repro.core.window_size import (
    WSS_METHODS,
    dominant_fourier_frequency_width,
    highest_autocorrelation_width,
    learn_subsequence_width,
    multi_window_finder_width,
    suss_width,
)
from repro.utils.exceptions import ConfigurationError


def _periodic(rng, period, n=3_000, noise=0.05):
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + rng.normal(0, noise, n)


class TestFFTAndACF:
    @pytest.mark.parametrize("period", [25, 60, 120])
    def test_fft_recovers_period(self, rng, period):
        width = dominant_fourier_frequency_width(_periodic(rng, period))
        assert abs(width - period) <= max(3, period // 10)

    @pytest.mark.parametrize("period", [25, 60, 120])
    def test_acf_recovers_period(self, rng, period):
        width = highest_autocorrelation_width(_periodic(rng, period))
        assert abs(width - period) <= max(3, period // 10)

    def test_acf_constant_signal_returns_lower_bound(self):
        values = np.full(500, 2.0)
        assert highest_autocorrelation_width(values) == 10


class TestSuSS:
    def test_returns_reasonable_width_for_periodic_signal(self, rng):
        width = suss_width(_periodic(rng, 40))
        assert 10 <= width <= 120

    def test_monotone_with_period(self, rng):
        short = suss_width(_periodic(rng, 20))
        long = suss_width(_periodic(rng, 150))
        assert long > short

    def test_respects_lower_bound(self, rng):
        width = suss_width(rng.normal(size=400), lower_bound=25)
        assert width >= 25


class TestMWF:
    def test_returns_width_in_bounds(self, rng):
        width = multi_window_finder_width(_periodic(rng, 50))
        assert 10 <= width <= 1_000


class TestLearnSubsequenceWidth:
    @pytest.mark.parametrize("method", [m for m in WSS_METHODS if m != "fixed"])
    def test_all_methods_run(self, rng, method):
        values = _periodic(rng, 45, n=2_000)
        width = learn_subsequence_width(values, method=method)
        assert isinstance(width, int)
        assert width >= 10

    def test_fixed_method(self, rng):
        assert learn_subsequence_width(rng.normal(size=100), method="fixed", fixed_width=33) == 33

    def test_fixed_requires_width(self, rng):
        with pytest.raises(ConfigurationError):
            learn_subsequence_width(rng.normal(size=100), method="fixed")

    def test_unknown_method(self, rng):
        with pytest.raises(ConfigurationError):
            learn_subsequence_width(rng.normal(size=100), method="magic")

    def test_max_width_cap(self, rng):
        values = _periodic(rng, 200, n=3_000)
        width = learn_subsequence_width(values, method="acf", max_width=50)
        assert width <= 50
