"""Unit tests of the stdlib HTTP/1.1 + WebSocket wire layer."""

import asyncio

import pytest

from repro.service.errors import ServiceError
from repro.service.protocol import (
    MAX_BODY_BYTES,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    ProtocolError,
    encode_frame,
    is_websocket_upgrade,
    read_frame,
    read_request,
    render_response,
    render_websocket_handshake,
    websocket_accept_key,
)


def _with_reader(parse, data: bytes):
    """Run ``parse(reader)`` against a fed StreamReader inside a fresh loop."""

    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await parse(reader)

    return asyncio.run(inner())


def _parse_request(data: bytes):
    return _with_reader(read_request, data)


def _parse_frame(data: bytes):
    return _with_reader(read_frame, data)


# --------------------------------------------------------------------------- #
# HTTP request parsing
# --------------------------------------------------------------------------- #


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        raw = (
            b"POST /streams/s1/observations?since=3 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 15\r\n"
            b"\r\n"
            b'{"values": [1]}'
        )
        request = _parse_request(raw)
        assert request.method == "POST"
        assert request.path == "/streams/s1/observations"
        assert request.query == {"since": "3"}
        assert request.headers["content-type"] == "application/json"
        assert request.body == b'{"values": [1]}'
        assert request.keep_alive  # HTTP/1.1 default

    def test_url_decoding_and_defaults(self):
        raw = b"GET /streams/a%20b HTTP/1.1\r\n\r\n"
        request = _parse_request(raw)
        assert request.path == "/streams/a b"
        assert request.body == b""
        assert request.query == {}

    def test_connection_close_disables_keep_alive(self):
        raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert not _parse_request(raw).keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse_request(b"") is None

    def test_truncated_head_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="mid-request"):
            _parse_request(b"GET / HTTP/1.1\r\nHost: x")

    def test_truncated_body_raises_protocol_error(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(ProtocolError, match="mid-body"):
            _parse_request(raw)

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError, match="request line"):
            _parse_request(b"NONSENSE\r\n\r\n")

    def test_unsupported_version(self):
        with pytest.raises(ProtocolError, match="version"):
            _parse_request(b"GET / HTTP/0.9\r\n\r\n")

    def test_bad_content_length(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        with pytest.raises(ProtocolError, match="Content-Length"):
            _parse_request(raw)

    def test_oversized_declared_body_is_a_typed_413(self):
        raw = f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        with pytest.raises(ServiceError) as excinfo:
            _parse_request(raw)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "oversized-body"

    def test_request_json_helper_raises_typed_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
        request = _parse_request(raw)
        with pytest.raises(ServiceError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-json"


class TestRenderResponse:
    def test_json_payload_and_headers(self):
        raw = render_response(200, {"ok": True})
        head, body = raw.split(b"\r\n\r\n", 1)
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert body == b'{"ok":true}\n'
        assert f"Content-Length: {len(body)}".encode() in head

    def test_close_and_empty_body(self):
        raw = render_response(200, None, keep_alive=False)
        assert b"Connection: close" in raw
        assert raw.endswith(b"\r\n\r\n")


# --------------------------------------------------------------------------- #
# WebSocket
# --------------------------------------------------------------------------- #


class TestWebSocket:
    def test_rfc6455_accept_key_example(self):
        # the worked example from RFC 6455 §1.3
        assert (
            websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_upgrade_detection_and_handshake(self):
        raw = (
            b"GET /streams/s1/ws HTTP/1.1\r\n"
            b"Connection: keep-alive, Upgrade\r\n"
            b"Upgrade: websocket\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n"
            b"\r\n"
        )
        request = _parse_request(raw)
        assert is_websocket_upgrade(request)
        handshake = render_websocket_handshake(request)
        assert b"101 Switching Protocols" in handshake
        assert b"Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in handshake

    def test_handshake_without_key_fails(self):
        raw = b"GET /ws HTTP/1.1\r\nConnection: Upgrade\r\nUpgrade: websocket\r\n\r\n"
        request = _parse_request(raw)
        with pytest.raises(ProtocolError, match="Sec-WebSocket-Key"):
            render_websocket_handshake(request)

    def test_plain_request_is_not_an_upgrade(self):
        raw = b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
        assert not is_websocket_upgrade(_parse_request(raw))

    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize(
        "payload",
        [b"", b"hi", b"x" * 125, b"y" * 126, b"z" * 70_000],
        ids=["empty", "tiny", "len125", "len126-extended", "len70k-64bit"],
    )
    def test_frame_round_trip(self, mask, payload):
        frame = encode_frame(OP_TEXT, payload, mask=mask)
        opcode, decoded = _parse_frame(frame)
        assert opcode == OP_TEXT
        assert decoded == payload

    def test_control_frames_round_trip(self):
        for opcode in (OP_CLOSE, OP_PING):
            read_opcode, payload = _parse_frame(encode_frame(opcode, b"ctl"))
            assert read_opcode == opcode
            assert payload == b"ctl"

    def test_fragmented_frame_rejected(self):
        frame = bytearray(encode_frame(OP_TEXT, b"frag"))
        frame[0] &= 0x7F  # clear FIN
        with pytest.raises(ProtocolError, match="fragmented"):
            _parse_frame(bytes(frame))

    def test_reserved_bits_rejected(self):
        frame = bytearray(encode_frame(OP_TEXT, b"rsv"))
        frame[0] |= 0x40
        with pytest.raises(ProtocolError, match="reserved"):
            _parse_frame(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = encode_frame(OP_TEXT, b"truncated")[:-3]
        with pytest.raises(ProtocolError, match="mid-frame"):
            _parse_frame(frame)
