"""Tests for the typed event objects and the event-stream generator."""

import json

import numpy as np
import pytest

from repro import api
from repro.utils.exceptions import ConfigurationError


class TestEventObjects:
    def test_change_point_event_round_trips_through_json(self):
        event = api.ChangePointEvent(at=120, change_point=80, score=0.91, p_value=1e-60)
        payload = json.loads(json.dumps(event.to_dict()))
        assert payload["kind"] == "change_point"
        restored = api.event_from_dict(payload)
        assert restored == event
        assert restored.detection_delay == 40

    def test_warmup_and_score_events_round_trip(self):
        for event in (
            api.WarmupEvent(at=500, subsequence_width=25),
            api.ScoreEvent(at=750, score=0.5),
        ):
            assert api.event_from_dict(event.to_dict()) == event

    def test_event_kinds_table_is_complete(self):
        assert set(api.EVENT_KINDS) == {
            "warmup",
            "score",
            "change_point",
            "gap",
            "data_quality",
        }

    def test_quality_events_round_trip(self):
        for event in (
            api.GapEvent(at=900, gap=120, reset=True),
            api.DataQualityEvent(at=450, imputed=4, n_nan=3, n_inf=1),
        ):
            assert api.event_from_dict(json.loads(json.dumps(event.to_dict()))) == event

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            api.event_from_dict({"kind": "bogus", "at": 1})

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown warmup event fields"):
            api.event_from_dict({"kind": "warmup", "at": 1, "typo": 2})

    def test_non_mapping_payload_is_rejected(self):
        with pytest.raises(ConfigurationError):
            api.event_from_dict(["warmup"])


class TestStreamGenerator:
    def test_class_stream_yields_warmup_then_change_points(self, sine_square_stream):
        values, true_cp = sine_square_stream
        segmenter = api.create(
            "class", window_size=1_500, subsequence_width=25, scoring_interval=25
        )
        events = list(api.stream(segmenter, values, chunk_size=500))
        kinds = [event.kind for event in events]
        assert kinds[0] == "warmup"
        assert kinds.count("change_point") == segmenter.change_points.shape[0] >= 1
        assert events[0].subsequence_width == 25
        detections = [event for event in events if event.kind == "change_point"]
        assert any(abs(event.change_point - true_cp) < 150 for event in detections)
        positions = [event.at for event in events]
        assert positions == sorted(positions)

    def test_stream_events_match_return_code_path(self, sine_square_stream):
        values, _ = sine_square_stream
        config = api.ClaSSConfig(window_size=1_500, subsequence_width=25, scoring_interval=25)
        via_events = api.create("class", config)
        detections = [
            event.change_point
            for event in api.stream(via_events, values, chunk_size=333)
            if event.kind == "change_point"
        ]
        via_process = api.create("class", config)
        via_process.process(values)
        assert detections == via_process.change_points.tolist()

    def test_include_scores_emits_score_events(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = api.create(
            "class", window_size=1_500, subsequence_width=25, scoring_interval=25
        )
        events = list(
            api.stream(segmenter, values, chunk_size=1_000, include_scores=True)
        )
        scores = [event for event in events if event.kind == "score"]
        assert scores  # one per chunk once the detector is warmed up
        assert all(0.0 <= event.score <= 1.0 for event in scores)

    def test_competitor_stream_emits_readiness_and_detections(self, mean_shift_stream):
        values, _ = mean_shift_stream
        segmenter = api.create("adwin")
        events = list(api.stream(segmenter, values, chunk_size=256))
        assert events[0].kind == "warmup"
        assert [e.change_point for e in events if e.kind == "change_point"] == (
            segmenter.change_points.tolist()
        )
        # competitor events carry the method's score at detection time
        assert all(e.score is not None for e in events if e.kind == "change_point")

    def test_finalize_flag_flushes_the_batch_adapter(self, sine_square_stream):
        values, true_cp = sine_square_stream
        adapter = api.create("clasp", subsequence_width=25)
        without_finalize = list(api.stream(adapter, values, chunk_size=1_000))
        assert without_finalize == []  # the adapter only segments on finalize
        adapter2 = api.create("clasp", subsequence_width=25)
        events = list(api.stream(adapter2, values, chunk_size=1_000, finalize=True))
        kinds = [event.kind for event in events]
        assert kinds[0] == "warmup"
        assert "change_point" in kinds

    def test_multivariate_stream_yields_fused_events(self, sine_square_stream):
        values, _ = sine_square_stream
        multichannel = np.stack([values, np.roll(values, 3)], axis=1)
        config = api.MultivariateClaSSConfig(
            n_channels=2,
            min_votes=2,
            fusion_tolerance=300,
            class_config=api.ClaSSConfig(
                window_size=1_200, subsequence_width=25, scoring_interval=25
            ),
        )
        segmenter = api.create("multivariate-class", config)
        events = list(api.stream(segmenter, multichannel, chunk_size=500))
        assert [e.change_point for e in events if e.kind == "change_point"] == (
            segmenter.change_points.tolist()
        )

    def test_rejects_bad_inputs(self):
        segmenter = api.create("ddm")
        with pytest.raises(ConfigurationError):
            list(api.stream(segmenter, np.zeros((2, 2, 2))))
        with pytest.raises(ConfigurationError):
            list(api.stream(segmenter, np.zeros(10), chunk_size=0))
