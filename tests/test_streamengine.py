"""Unit and integration tests for the stream-processing engine."""

import numpy as np
import pytest

from repro.streamengine import (
    ArraySource,
    CallbackSink,
    ChangePointEvent,
    ChangePointSink,
    ClaSSWindowOperator,
    CollectSink,
    DatasetSource,
    FilterOperator,
    MapOperator,
    Pipeline,
    Record,
    SegmentationOperator,
    SlidingWindowOperator,
    run_class_pipeline,
)
from repro.utils.exceptions import ConfigurationError


class TestSources:
    def test_array_source_emits_records_in_order(self):
        source = ArraySource(np.array([1.0, 2.0, 3.0]), stream="s")
        records = list(source)
        assert [r.value for r in records] == [1.0, 2.0, 3.0]
        assert [r.timestamp for r in records] == [0, 1, 2]
        assert len(source) == 3

    def test_dataset_source_marks_annotated_change_points(self, small_dataset):
        source = DatasetSource(small_dataset)
        records = list(source)
        flagged = [r.timestamp for r in records if r.metadata.get("is_annotated_cp")]
        assert flagged == small_dataset.change_points.tolist()


class TestOperators:
    def test_map_operator(self):
        operator = MapOperator(lambda v: 2 * v)
        out = list(operator.process(Record(0, 3.0)))
        assert out[0].value == 6.0

    def test_filter_operator(self):
        operator = FilterOperator(lambda record: record.value > 0)
        assert list(operator.process(Record(0, -1.0))) == []
        assert len(list(operator.process(Record(1, 1.0)))) == 1

    def test_sliding_window_operator_aggregates(self):
        operator = SlidingWindowOperator(window_size=3, slide=1, aggregate=np.mean)
        outputs = []
        for i, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            outputs.extend(operator.process(Record(i, value)))
        assert [o.value for o in outputs] == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_segmentation_operator_emits_events(self, sine_square_stream):
        from repro.core.class_segmenter import ClaSS

        values, true_cp = sine_square_stream
        operator = SegmentationOperator(
            ClaSS(window_size=1_200, subsequence_width=25, scoring_interval=25)
        )
        events = []
        for i, value in enumerate(values):
            for out in operator.process(Record(i, float(value))):
                if isinstance(out.value, ChangePointEvent):
                    events.append(out.value)
        assert events
        assert any(abs(e.change_point - true_cp) < 200 for e in events)
        assert all(e.detected_at >= e.change_point for e in events)


class TestSinks:
    def test_collect_sink(self):
        sink = CollectSink()
        sink.consume(Record(0, 1.0))
        assert sink.values == [1.0]

    def test_change_point_sink_ignores_plain_values(self):
        sink = ChangePointSink()
        sink.consume(Record(0, 1.0))
        sink.consume(Record(5, ChangePointEvent(change_point=3, detected_at=5, stream="s")))
        assert sink.change_points.tolist() == [3]
        assert sink.detection_delays.tolist() == [2]

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.consume(Record(0, 1.0))
        assert sink.n_consumed == 1 and len(seen) == 1


class TestPipeline:
    def test_rejects_invalid_components(self):
        pipeline = Pipeline(ArraySource(np.zeros(5)))
        with pytest.raises(ConfigurationError):
            pipeline.add_operator(lambda r: r)
        with pytest.raises(ConfigurationError):
            pipeline.add_sink(object())

    def test_map_filter_chain(self):
        sink = CollectSink()
        pipeline = Pipeline(ArraySource(np.arange(10, dtype=float)))
        pipeline.add_operator(MapOperator(lambda v: v * 2))
        pipeline.add_operator(FilterOperator(lambda r: r.value >= 10))
        pipeline.add_sink(sink)
        metrics = pipeline.run()
        assert metrics.n_source_records == 10
        assert sink.values == [10.0, 12.0, 14.0, 16.0, 18.0]
        assert metrics.throughput > 0

    def test_operator_counts_recorded(self):
        pipeline = Pipeline(ArraySource(np.zeros(7)))
        pipeline.add_operator(MapOperator(lambda v: v))
        metrics = pipeline.run()
        assert metrics.operator_counts["map"] == 7


class TestClaSSOperator:
    def test_run_class_pipeline_detects_change_points(self, small_dataset):
        result = run_class_pipeline(small_dataset, window_size=1_000, scoring_interval=30)
        assert result.dataset == small_dataset.name
        assert result.metrics.n_source_records == small_dataset.n_timepoints
        assert result.throughput > 0
        assert result.change_points.shape == result.detection_delays.shape
        # at least one of the two annotated transitions is recovered
        assert any(
            any(abs(cp - true_cp) < 200 for true_cp in small_dataset.change_points)
            for cp in result.change_points
        )

    def test_operator_exposes_change_points(self, small_dataset):
        operator = ClaSSWindowOperator(window_size=1_000, subsequence_width=30, scoring_interval=40)
        for i, value in enumerate(small_dataset.values):
            list(operator.process(Record(i, float(value))))
        assert operator.n_processed == small_dataset.n_timepoints
        assert isinstance(operator.change_points, np.ndarray)
