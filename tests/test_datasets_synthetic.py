"""Unit tests for dataset containers and stream composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.dataset import TimeSeriesDataset
from repro.datasets.synthetic import (
    STATE_LIBRARY,
    SegmentSpec,
    compose_stream,
    random_segment_specs,
)
from repro.utils.exceptions import ConfigurationError, ValidationError


class TestTimeSeriesDataset:
    def test_segment_bookkeeping(self):
        dataset = TimeSeriesDataset(
            name="demo",
            values=np.arange(100, dtype=float),
            change_points=np.array([30, 60]),
        )
        assert dataset.n_segments == 3
        assert dataset.segments == [(0, 30), (30, 60), (60, 100)]
        assert dataset.median_segment_length == pytest.approx(30.0)
        assert len(dataset) == 100

    def test_rejects_bad_change_points(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset("bad", np.arange(50, dtype=float), np.array([60]))

    def test_slice_rebases_annotations(self):
        dataset = TimeSeriesDataset("demo", np.arange(100, dtype=float), np.array([30, 60]))
        part = dataset.slice(20, 70)
        assert part.n_timepoints == 50
        assert part.change_points.tolist() == [10, 40]

    def test_iter_stream(self):
        dataset = TimeSeriesDataset("demo", np.arange(10, dtype=float), np.array([5]))
        assert list(dataset.iter_stream()) == list(map(float, range(10)))

    def test_summary(self):
        dataset = TimeSeriesDataset(
            "demo", np.arange(10, dtype=float), np.array([5]), collection="c"
        )
        summary = dataset.summary()
        assert summary["length"] == 10 and summary["n_segments"] == 2


class TestComposeStream:
    def test_change_points_at_segment_boundaries(self):
        specs = [
            SegmentSpec("sine", 300, {"period": 20}),
            SegmentSpec("square", 200, {"period": 40}),
            SegmentSpec("noise", 250, {}),
        ]
        dataset = compose_stream(specs, seed=1)
        assert dataset.change_points.tolist() == [300, 500]
        assert dataset.n_timepoints == 750
        assert dataset.segment_labels == ["sine", "square", "noise"]

    def test_standardised_by_default(self):
        specs = [SegmentSpec("sine", 500, {"period": 25}), SegmentSpec("noise", 500, {"std": 3.0})]
        dataset = compose_stream(specs, seed=2)
        assert abs(dataset.values.mean()) < 1e-9
        assert dataset.values.std() == pytest.approx(1.0, abs=1e-9)

    def test_reproducible_with_seed(self):
        specs = [SegmentSpec("sine", 300, {"period": 20}), SegmentSpec("noise", 300, {})]
        a = compose_stream(specs, seed=11)
        b = compose_stream(specs, seed=11)
        np.testing.assert_array_equal(a.values, b.values)

    def test_transition_blending_keeps_annotations(self):
        specs = [
            SegmentSpec("sine", 400, {"period": 20}),
            SegmentSpec("square", 400, {"period": 50}),
        ]
        dataset = compose_stream(specs, seed=3, transition=20)
        assert dataset.change_points.tolist() == [400]

    def test_requires_segments(self):
        with pytest.raises(ConfigurationError):
            compose_stream([])

    def test_subsequence_width_stored(self):
        specs = [SegmentSpec("sine", 300, {"period": 20}), SegmentSpec("noise", 300, {})]
        dataset = compose_stream(specs, seed=4, subsequence_width=42)
        assert dataset.subsequence_width_hint == 42


class TestRandomSegmentSpecs:
    def test_consecutive_states_differ(self, rng):
        specs = random_segment_specs(8, (100, 200), rng)
        labels = [spec.label for spec in specs]
        assert all(a != b for a, b in zip(labels, labels[1:]))

    def test_lengths_in_range(self, rng):
        specs = random_segment_specs(10, (150, 300), rng)
        assert all(150 <= spec.length <= 300 for spec in specs)

    def test_single_segment_allowed(self, rng):
        specs = random_segment_specs(1, (100, 100), rng)
        assert len(specs) == 1

    def test_invalid_segment_count(self, rng):
        with pytest.raises(ConfigurationError):
            random_segment_specs(0, (10, 20), rng)

    def test_restricted_state_set(self, rng):
        specs = random_segment_specs(4, (100, 150), rng, states=["slow_sine", "square"])
        assert {spec.label for spec in specs} <= {"slow_sine", "square"}

    @given(seed=st.integers(min_value=0, max_value=5_000), n=st.integers(min_value=2, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_property_rendering_always_valid(self, seed, n):
        rng = np.random.default_rng(seed)
        specs = random_segment_specs(n, (60, 120), rng, allow_repeats=True)
        dataset = compose_stream(specs, seed=seed)
        assert dataset.n_segments == n
        assert np.isfinite(dataset.values).all()

    def test_every_library_state_renders(self, rng):
        for name, state in STATE_LIBRARY.items():
            specs = random_segment_specs(1, (120, 150), rng, states=[name])
            dataset = compose_stream(specs, seed=5)
            assert np.isfinite(dataset.values).all(), name
