"""Durability layer: spool framing, tail logs, checkpoints, graceful shutdown.

The contract under test (``docs/fault-tolerance.rst``): **no acked
observation is ever lost**.  Checkpoints are written atomically with a
CRC-32 integrity frame; the write-ahead tail is fsynced before a batch
mutates the detector; a truncated or corrupt tail record ends the scan
without losing the valid prefix; a corrupt newest checkpoint falls back to
its predecessor with a complete replay window.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro import api
from repro.api.checkpoint import FRAME_MAGIC, read_payload_file, write_payload_file
from repro.service import (
    DurabilityConfig,
    DurabilityManager,
    SegmentationService,
    ServiceClient,
    StreamRegistry,
)
from repro.service.durability import SPOOL_FORMAT, StreamSpool
from repro.utils.exceptions import ConfigurationError, CorruptCheckpointError

CONFIG = {"window_size": 200, "scoring_interval": 5}


def _values(n, seed=0):
    return np.random.default_rng(seed).normal(0.0, 1.0, n)


class TestPayloadFileFraming:
    def test_round_trip_and_atomic_write(self, tmp_path):
        path = tmp_path / "state.ckpt"
        payload = {"answer": 42, "array": np.arange(5)}
        write_payload_file(path, payload)
        assert path.read_bytes().startswith(FRAME_MAGIC)
        assert not list(tmp_path.glob("*.tmp"))  # tmp file was renamed away
        loaded = read_payload_file(path)
        assert loaded["answer"] == 42
        np.testing.assert_array_equal(loaded["array"], np.arange(5))

    def test_corrupt_body_is_detected(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_payload_file(path, {"x": list(range(100))})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptCheckpointError):
            read_payload_file(path)

    def test_bad_magic_is_detected(self, tmp_path):
        path = tmp_path / "state.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CorruptCheckpointError):
            read_payload_file(path)

    def test_save_checkpoint_files_remain_loadable(self, tmp_path):
        """The CLI checkpoint path uses the same framed format."""
        segmenter = api.create("class", api.ClaSSConfig(**CONFIG))
        segmenter.process(_values(300))
        path = tmp_path / "segmenter.ckpt"
        api.save_checkpoint(segmenter, path)
        assert path.read_bytes().startswith(FRAME_MAGIC)
        resumed = api.load_checkpoint(path)
        assert resumed.n_seen == 300

    def test_legacy_raw_pickle_checkpoints_still_load(self, tmp_path):
        """Pre-framing checkpoint files (bare pickle) keep working."""
        import pickle

        segmenter = api.create("class", api.ClaSSConfig(**CONFIG))
        segmenter.process(_values(250))
        path = tmp_path / "legacy.ckpt"
        path.write_bytes(pickle.dumps(segmenter.save_state(), protocol=pickle.HIGHEST_PROTOCOL))
        assert api.load_checkpoint(path).n_seen == 250


class TestStreamSpoolTail:
    def test_tail_round_trip(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        batches = [(_values(50, seed=i), i) for i in range(4)]
        start = 0
        for values, seq in batches:
            spool.append_tail(start, values, seq)
            start += len(values)
        records = spool.read_tail()
        assert [record["start"] for record in records] == [0, 50, 100, 150]
        assert [record["seq"] for record in records] == [0, 1, 2, 3]
        for record, (values, _) in zip(records, batches):
            np.testing.assert_array_equal(record["values"], values)

    def test_corrupt_record_truncates_scan_keeping_valid_prefix(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        for i in range(3):
            spool.append_tail(i * 10, _values(10, seed=i), i)
        raw = bytearray(spool.tail_path.read_bytes())
        raw[-5] ^= 0xFF  # damage the last record's body
        spool.tail_path.write_bytes(bytes(raw))
        records = spool.read_tail()
        assert [record["seq"] for record in records] == [0, 1]

    def test_truncated_trailing_record_is_dropped(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        for i in range(2):
            spool.append_tail(i * 10, _values(10, seed=i), i)
        raw = spool.tail_path.read_bytes()
        spool.tail_path.write_bytes(raw[:-7])  # simulated crash mid-append
        assert [record["seq"] for record in spool.read_tail()] == [0]

    def test_compact_drops_records_before_min_start(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        for i in range(5):
            spool.append_tail(i * 100, _values(100, seed=i), i)
        spool.compact_tail(min_start=300)
        assert [record["start"] for record in spool.read_tail()] == [300, 400]

    def test_empty_tail_reads_empty(self, tmp_path):
        assert StreamSpool(tmp_path, "fresh").read_tail() == []


class TestStreamSpoolCheckpoints:
    def _envelope(self, n_seen):
        segmenter = api.create("class", api.ClaSSConfig(**CONFIG))
        if n_seen:
            segmenter.process(_values(n_seen))
        return {
            "format": SPOOL_FORMAT,
            "n_seen": n_seen,
            "state": segmenter.save_state(),
            "last_seq": None,
        }

    def test_latest_valid_checkpoint_wins(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        for n in (0, 300, 600):
            spool.write_checkpoint(n, self._envelope(n))
        n_seen, envelope = spool.load_latest_checkpoint()
        assert n_seen == 600 and envelope["n_seen"] == 600

    def test_corrupt_newest_falls_back_to_predecessor(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        spool.write_checkpoint(300, self._envelope(300))
        newest = spool.write_checkpoint(600, self._envelope(600))
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        n_seen, envelope = spool.load_latest_checkpoint()
        assert n_seen == 300
        assert api.restore(envelope["state"]).n_seen == 300

    def test_all_corrupt_raises(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        path = spool.write_checkpoint(100, self._envelope(100))
        path.write_bytes(b"garbage")
        with pytest.raises(CorruptCheckpointError):
            spool.load_latest_checkpoint()

    def test_prune_keeps_newest_and_reports_replay_floor(self, tmp_path):
        spool = StreamSpool(tmp_path, "s1")
        for n in (0, 100, 200, 300):
            spool.write_checkpoint(n, self._envelope(0))
        oldest_retained = spool.prune_checkpoints(keep=2)
        assert oldest_retained == 200
        assert [n for n, _ in spool.checkpoint_paths()] == [200, 300]


class TestDurabilityManager:
    def _manager(self, tmp_path, **overrides):
        settings = dict(spool_dir=tmp_path, checkpoint_every_n=100,
                        checkpoint_every_seconds=None, fsync=False)
        settings.update(overrides)
        return DurabilityManager(DurabilityConfig(**settings))

    def _stream(self, manager):
        registry = StreamRegistry(2)
        stream = registry.create_stream("s1", {"config": CONFIG})
        manager.register(stream)
        return stream

    def test_register_writes_meta_and_birth_checkpoint(self, tmp_path):
        manager = self._manager(tmp_path)
        self._stream(manager)
        spool_dir = tmp_path / "s1"
        assert (spool_dir / "meta.json").exists()
        assert (spool_dir / "checkpoint-000000000000.ckpt").exists()

    def test_observation_count_trigger(self, tmp_path):
        manager = self._manager(tmp_path, checkpoint_every_n=100)
        stream = self._stream(manager)
        stream.segmenter.process(_values(60))
        assert manager.maybe_checkpoint(stream) is False
        stream.segmenter.process(_values(60))
        assert manager.maybe_checkpoint(stream) is True  # 120 >= 100 since last
        assert [n for n, _ in manager.spool_for("s1").checkpoint_paths()][-1] == 120

    def test_wall_clock_trigger_needs_progress(self, tmp_path):
        manager = self._manager(tmp_path, checkpoint_every_n=10**9,
                                checkpoint_every_seconds=0.01)
        stream = self._stream(manager)
        spool = manager.spool_for("s1")
        spool.last_checkpoint_time -= 1.0  # pretend the clock trigger is due
        assert manager.maybe_checkpoint(stream) is False  # no new observations
        stream.segmenter.process(_values(5))
        spool.last_checkpoint_time -= 1.0
        assert manager.maybe_checkpoint(stream) is True

    def test_checkpoint_prunes_and_compacts_to_fallback_window(self, tmp_path):
        manager = self._manager(tmp_path, checkpoint_every_n=100, keep_checkpoints=2)
        stream = self._stream(manager)
        for i in range(4):
            values = _values(100, seed=i)
            manager.log_batch(stream, values, seq=i)
            stream.segmenter.process(values)
            stream.last_seq = i
            manager.maybe_checkpoint(stream)
        spool = manager.spool_for("s1")
        retained = [n for n, _ in spool.checkpoint_paths()]
        assert retained == [300, 400]
        # the tail still covers everything past the *oldest* retained
        # checkpoint, so corrupt-newest fallback has a complete window
        assert [record["start"] for record in spool.read_tail()] == [300]

    def test_checkpoint_skips_frozen_stream(self, tmp_path):
        manager = self._manager(tmp_path)
        stream = self._stream(manager)
        stream.segmenter = None  # frozen: state travels in the checkpoint payload
        assert manager.checkpoint(stream) is None

    def test_discard_removes_spool(self, tmp_path):
        manager = self._manager(tmp_path)
        self._stream(manager)
        assert (tmp_path / "s1").exists()
        manager.discard("s1")
        assert not (tmp_path / "s1").exists()

    def test_checkpoint_age_reporting(self, tmp_path):
        manager = self._manager(tmp_path)
        assert manager.checkpoint_age("nope") is None
        self._stream(manager)
        age = manager.checkpoint_age("s1")
        assert age is not None and 0 <= age < 5


class TestDurabilityConfigValidation:
    def test_rejects_bad_settings(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DurabilityConfig(tmp_path, checkpoint_every_n=0).validate()
        with pytest.raises(ConfigurationError):
            DurabilityConfig(tmp_path, checkpoint_every_seconds=-1.0).validate()
        with pytest.raises(ConfigurationError):
            DurabilityConfig(tmp_path, keep_checkpoints=1).validate()

    def test_manager_validates_on_construction(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DurabilityManager(DurabilityConfig(tmp_path, keep_checkpoints=0))


class TestGracefulShutdown:
    def test_shutdown_drains_and_checkpoints_every_stream(self, tmp_path):
        async def scenario():
            service = SegmentationService(
                n_shards=2,
                durability=DurabilityConfig(
                    spool_dir=tmp_path, checkpoint_every_n=10**9, fsync=False
                ),
            )
            await service.start(port=0)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                for name in ("a", "b"):
                    await client.request("POST", f"/streams/{name}", {"config": CONFIG})
                    status, _ = await client.request(
                        "POST", f"/streams/{name}/observations",
                        {"values": _values(500).tolist()},
                    )
                    assert status == 200
            finally:
                await client.close()
            await service.shutdown()
            assert service.routes.draining is True
            return service

        service = asyncio.run(scenario())
        for name in ("a", "b"):
            spool = service.durability.spool_for(name)
            # the final checkpoint pins the full 500 acked observations
            assert [n for n, _ in spool.checkpoint_paths()][-1] == 500

    def test_draining_service_sheds_intake_with_typed_503(self, tmp_path):
        async def scenario():
            service = SegmentationService(n_shards=1)
            await service.start(port=0)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/d", {"config": CONFIG})
                service.routes.draining = True
                status, body = await client.request(
                    "POST", "/streams/d/observations", {"values": [0.1]}
                )
                pytest.fail(f"expected ServiceUnavailableError, got {status} {body}")
            except Exception as error:
                return error
            finally:
                await client.close()
                await service.stop()

        from repro.service import ServiceUnavailableError

        error = asyncio.run(scenario())
        assert isinstance(error, ServiceUnavailableError)
        assert error.code == "shutting-down"
        assert error.retry_after == 1.0

    @pytest.mark.skipif(os.name != "posix", reason="POSIX signal delivery")
    def test_sigint_triggers_graceful_shutdown(self, tmp_path):
        """``serve_forever`` catches SIGINT, drains, checkpoints and returns."""

        async def scenario():
            service = SegmentationService(
                n_shards=1,
                durability=DurabilityConfig(
                    spool_dir=tmp_path, checkpoint_every_n=10**9, fsync=False
                ),
            )
            serving = asyncio.create_task(service.serve_forever(host="127.0.0.1", port=0))
            while service.port == 0:
                await asyncio.sleep(0.01)
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                await client.request("POST", "/streams/sig", {"config": CONFIG})
                await client.request(
                    "POST", "/streams/sig/observations", {"values": _values(300).tolist()}
                )
            finally:
                await client.close()
            os.kill(os.getpid(), signal.SIGINT)
            await asyncio.wait_for(serving, timeout=10)  # returns, no KeyboardInterrupt
            return service

        service = asyncio.run(scenario())
        spool = service.durability.spool_for("sig")
        assert [n for n, _ in spool.checkpoint_paths()][-1] == 300
