"""StreamStore tests: segment/resegment bit-identity, audits, CLI commands.

The headline acceptance criterion of ISSUE 9: a stream ingested through the
chunk store, segmented, then ``resegment``-ed from a mid-stream T produces
**bit-identical** change points / scores / p-values to a single
uninterrupted in-RAM :func:`repro.api.stream` run.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.storage import StreamStore, diff_change_points, replay_events
from repro.utils.exceptions import ConfigurationError, StorageError

CLASS_CONFIG = {"window_size": 600, "scoring_interval": 20}


@pytest.fixture
def store(tmp_path):
    return StreamStore(tmp_path / "store", segment_rows=1_000, fsync=False)


@pytest.fixture
def shifting(rng):
    """Three regimes with two clear mean shifts."""
    return np.concatenate(
        [rng.normal(0, 1, 2_000), rng.normal(5, 1, 2_000), rng.normal(-4, 1, 2_000)]
    )


class TestSegment:
    def test_records_events_checkpoints_and_run(self, store, shifting):
        store.ingest("s", shifting)
        run = store.segment("s", "ddm", chunk_size=256, checkpoint_every=1_000)
        assert run.n_seen == 6_000
        assert run.n_checkpoints >= 6  # birth + one per 1000 observations
        assert len(run.change_points) >= 1
        meta = store.run_meta("s")
        assert meta["detector"] == "ddm"
        assert meta["change_points"] == run.change_points
        # the durable log replays the exact same typed events
        with store.event_log("s") as log:
            kinds = [type(e).kind for e in replay_events(log)]
        assert kinds.count("change_point") == len(run.change_points)

    def test_resegment_requires_a_recorded_run(self, store, shifting):
        store.ingest("s", shifting)
        with pytest.raises(StorageError, match="no recorded run"):
            store.resegment("s")

    def test_checkpoint_positions_follow_cadence(self, store, shifting):
        store.ingest("s", shifting)
        store.segment("s", "ddm", chunk_size=500, checkpoint_every=2_000)
        positions = store.checkpoint_index("s").positions()
        assert positions[0] == 0
        assert all(b - a >= 2_000 for a, b in zip(positions, positions[1:]))

    def test_segment_replaces_previous_run(self, store, shifting):
        store.ingest("s", shifting)
        store.segment("s", "ddm", checkpoint_every=1_000)
        run2 = store.segment("s", "page-hinkley", checkpoint_every=3_000)
        assert store.run_meta("s")["detector"] == "page-hinkley"
        with store.event_log("s") as log:
            assert len(log) == run2.n_events

    def test_bad_checkpoint_cadence_rejected(self, store, shifting):
        store.ingest("s", shifting)
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            store.segment("s", "ddm", checkpoint_every=0)


class TestResegmentBitIdentity:
    @pytest.mark.parametrize("detector", ["ddm", "page-hinkley"])
    def test_resegment_mid_t_matches_fresh_in_ram_run(self, store, shifting, detector):
        """The acceptance criterion, for two detector families."""
        store.ingest("s", shifting)
        run = store.segment("s", detector, chunk_size=256, checkpoint_every=1_000)

        # uninterrupted in-RAM reference over the very same values
        reference = api.create(detector)
        for event in api.stream(reference, shifting, chunk_size=256):
            pass
        ref_points = [
            e.to_dict() for e in reference.events() if e.kind == "change_point"
        ]
        assert run.change_points == ref_points  # stored run == in-RAM run

        for from_t in (0, 1_500, 3_333, 5_999):
            audit = store.resegment("s", from_t=from_t)
            assert audit.same_config
            assert audit.identical, f"from_t={from_t}: {audit.summary()}"
            assert audit.new_change_points == ref_points
            if from_t >= 1_000:
                assert audit.checkpoint_used is not None
                assert audit.checkpoint_used <= from_t
                assert audit.replayed_from == audit.checkpoint_used

    def test_resegment_class_detector_mid_t(self, store, rng):
        """ClaSS itself: snapshot/replay through the full k-NN + rng state."""
        values = np.concatenate(
            [
                np.sin(2 * np.pi * np.arange(1_200) / 20),
                np.sign(np.sin(2 * np.pi * np.arange(1_200) / 60)),
            ]
        ) + rng.normal(0, 0.05, 2_400)
        store.ingest("cls", values)
        run = store.segment(
            "cls", "class", CLASS_CONFIG, chunk_size=200, checkpoint_every=700
        )
        reference = api.create("class", CLASS_CONFIG)
        list(api.stream(reference, values, chunk_size=200))
        ref_points = [
            e.to_dict() for e in reference.events() if e.kind == "change_point"
        ]
        assert run.change_points == ref_points
        audit = store.resegment("cls", from_t=1_500)
        assert audit.identical
        # cadence 700 with 200-chunks snapshots at 0, 800, 1600, ...
        assert audit.checkpoint_used == 800
        assert audit.new_change_points == ref_points

    def test_resegment_different_chunking_still_identical(self, store, shifting):
        store.ingest("s", shifting)
        store.segment("s", "ddm", chunk_size=256, checkpoint_every=1_000)
        audit = store.resegment("s", from_t=2_500, chunk_size=97)
        assert audit.identical  # chunk invariance holds through replay


class TestResegmentNewConfig:
    def test_different_detector_replays_from_start(self, store, shifting):
        store.ingest("s", shifting)
        store.segment("s", "ddm", checkpoint_every=1_000)
        audit = store.resegment("s", from_t=4_000, detector="page-hinkley")
        assert not audit.same_config
        assert audit.replayed_from == 0
        assert audit.checkpoint_used is None
        assert audit.old_detector == "ddm"
        assert audit.new_detector == "page-hinkley"

    def test_different_config_same_detector(self, store, shifting):
        store.ingest("s", shifting)
        store.segment("s", "ddm", checkpoint_every=1_000)
        audit = store.resegment("s", config={"drift_factor": 1_000.0})
        assert not audit.same_config
        assert audit.replayed_from == 0
        assert audit.old_config["drift_factor"] == 20.0
        assert audit.new_config["drift_factor"] == 1_000.0

    def test_audit_serialises_and_summarises(self, store, shifting):
        store.ingest("s", shifting)
        store.segment("s", "ddm", checkpoint_every=1_000)
        audit = store.resegment("s", detector="page-hinkley")
        payload = json.loads(json.dumps(audit.to_dict()))
        assert payload["stream"] == "s"
        assert isinstance(payload["identical"], bool)
        text = audit.summary()
        assert "resegment 's'" in text
        assert "different config" in text


class TestDiffChangePoints:
    def test_exact_matches_are_unchanged(self):
        old = [{"change_point": 100, "at": 120}]
        new = [{"change_point": 100, "at": 125}]
        parts = diff_change_points(old, new)
        assert len(parts["unchanged"]) == 1
        assert not parts["added"] and not parts["removed"]

    def test_added_and_removed(self):
        parts = diff_change_points(
            [{"change_point": 100}], [{"change_point": 900}], tolerance=0
        )
        assert parts["removed"] == [{"change_point": 100}]
        assert parts["added"] == [{"change_point": 900}]

    def test_moved_within_tolerance(self):
        parts = diff_change_points(
            [{"change_point": 100}, {"change_point": 500}],
            [{"change_point": 103}, {"change_point": 900}],
            tolerance=5,
        )
        assert len(parts["moved"]) == 1
        assert parts["moved"][0]["distance"] == 3
        assert parts["removed"] == [{"change_point": 500}]
        assert parts["added"] == [{"change_point": 900}]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            diff_change_points([], [], tolerance=-1)


class TestStoreCLI:
    def _ingest(self, tmp_path, shifting):
        path = tmp_path / "rec.npy"
        np.save(path, shifting)
        root = str(tmp_path / "streams")
        assert main(["store", "ingest", "s1", str(path), "--root", root]) == 0
        return root

    def test_ingest_list_segment_log_resegment(self, tmp_path, shifting, capsys):
        root = self._ingest(tmp_path, shifting)
        out = capsys.readouterr().out
        assert "ingested 6000 rows" in out

        assert main(["store", "list", "--root", root]) == 0
        assert "(never segmented)" in capsys.readouterr().out

        assert (
            main(
                ["store", "segment", "s1", "--root", root, "--detector", "ddm",
                 "--checkpoint-every", "1000", "--output", "json"]
            )
            == 0
        )
        run = json.loads(capsys.readouterr().out)
        assert run["n_seen"] == 6_000 and run["change_points"]

        assert main(["store", "log", "s1", "--root", root]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert any(r["event"]["kind"] == "change_point" for r in lines)

        assert (
            main(["store", "resegment", "s1", "--root", root, "--from-t", "3000"]) == 0
        )
        out = capsys.readouterr().out
        assert "identical: True" in out

    def test_resegment_json_output_and_new_detector(self, tmp_path, shifting, capsys):
        root = self._ingest(tmp_path, shifting)
        assert main(["store", "segment", "s1", "--root", root, "--detector", "ddm"]) == 0
        capsys.readouterr()
        assert (
            main(
                ["store", "resegment", "s1", "--root", root,
                 "--detector", "page-hinkley", "--output", "json"]
            )
            == 0
        )
        audit = json.loads(capsys.readouterr().out)
        assert audit["same_config"] is False and audit["replayed_from"] == 0

    def test_log_time_range(self, tmp_path, shifting, capsys):
        root = self._ingest(tmp_path, shifting)
        assert main(["store", "segment", "s1", "--root", root, "--detector", "ddm"]) == 0
        capsys.readouterr()
        assert (
            main(["store", "log", "s1", "--root", root,
                  "--from-t", "1", "--to-t", "6000"]) == 0
        )
        for line in capsys.readouterr().out.splitlines():
            assert 1 <= json.loads(line)["at"] < 6_000

    def test_errors_exit_2(self, tmp_path, capsys):
        root = str(tmp_path / "streams")
        assert main(["store", "segment", "ghost", "--root", root]) == 2
        assert "unknown stream" in capsys.readouterr().err
        assert main(["store", "log", "ghost", "--root", root]) == 2
        assert main(["store", "ingest", "bad/name", str(tmp_path / "x.npy"),
                     "--root", root]) == 2

    def test_segment_command_accepts_npy_input(self, tmp_path, shifting, capsys):
        """Satellite: ``repro.cli segment`` memory-maps ``.npy`` inputs."""
        path = tmp_path / "rec.npy"
        np.save(path, shifting)
        assert (
            main(["segment", str(path), "--window-size", "600",
                  "--scoring-interval", "30"]) == 0
        )
        out = capsys.readouterr().out
        assert "loaded 6000 observations" in out
        assert "change points" in out
