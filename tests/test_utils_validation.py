"""Unit tests for the input validation helpers."""

import numpy as np
import pytest

from repro.utils.exceptions import ValidationError
from repro.utils.validation import (
    check_array_1d,
    check_change_points,
    check_positive_int,
    check_probability,
    check_window_size,
)


class TestCheckArray1d:
    def test_accepts_list(self):
        result = check_array_1d([1, 2, 3])
        assert isinstance(result, np.ndarray)
        assert result.dtype == np.float64
        assert result.tolist() == [1.0, 2.0, 3.0]

    def test_accepts_generator(self):
        result = check_array_1d(float(i) for i in range(5))
        assert result.shape == (5,)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            check_array_1d(np.zeros((3, 3)))

    def test_rejects_too_short(self):
        with pytest.raises(ValidationError, match="at least 10"):
            check_array_1d([1.0, 2.0], min_length=10)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array_1d([1.0, np.nan, 2.0])

    def test_rejects_infinite(self):
        with pytest.raises(ValidationError):
            check_array_1d([1.0, np.inf])

    def test_rejects_constant_when_disallowed(self):
        with pytest.raises(ValidationError, match="constant"):
            check_array_1d([3.0, 3.0, 3.0], allow_constant=False)

    def test_allows_constant_by_default(self):
        assert check_array_1d([3.0, 3.0, 3.0]).shape == (3,)

    def test_returns_contiguous_copy_for_strided_input(self):
        base = np.arange(20, dtype=np.float64)
        strided = base[::2]
        result = check_array_1d(strided)
        assert result.flags["C_CONTIGUOUS"]


class TestCheckPositiveInt:
    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(3.5, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, "x", minimum=2)


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValidationError):
            check_probability(0.0, "p", inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_probability("high", "p")


class TestCheckWindowSize:
    def test_must_fit_series(self):
        with pytest.raises(ValidationError, match="does not fit"):
            check_window_size(100, n_timepoints=50)

    def test_minimum_two(self):
        with pytest.raises(ValidationError):
            check_window_size(1)

    def test_valid(self):
        assert check_window_size(10, n_timepoints=100) == 10


class TestCheckChangePoints:
    def test_empty_is_allowed(self):
        assert check_change_points([], 100).shape == (0,)

    def test_must_be_increasing(self):
        with pytest.raises(ValidationError, match="increasing"):
            check_change_points([50, 30], 100)

    def test_must_be_inside_range(self):
        with pytest.raises(ValidationError):
            check_change_points([0], 100)
        with pytest.raises(ValidationError):
            check_change_points([100], 100)

    def test_valid(self):
        result = check_change_points([10, 50, 90], 100)
        assert result.tolist() == [10, 50, 90]
