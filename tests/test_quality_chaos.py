"""Dirty-data chaos suite: determinism of every non-default policy.

Extends the repo's equivalence-test discipline to adversarial inputs.  A
seeded generator injects NaN runs, inf spikes, constant plateaus and long
outage gaps into a segmented base signal; each policy must then produce
**bit-identical** change points and event streams across

* chunk sizes (point-wise through one-shot ingestion),
* kernel backends (numpy vs. compiled),
* checkpoint/resume — including a checkpoint taken *inside* an open dirty
  run, where the sanitizer's pending-run counters must travel along,
* the service path vs. offline ``api.stream`` (with duplicated and stale
  batches thrown in under ``duplicate_policy="drop"``),
* storage-tier ``segment``/``resegment`` replay.

Clean data under the default ``reject`` policy stays byte-identical to the
seed behaviour — pinned by the rest of the suite, which this file never
touches.
"""

import asyncio

import numpy as np
import pytest

from repro import api
from repro.core.kernels import available_backends
from repro.utils.exceptions import ValidationError

HAS_NUMBA = "numba" in available_backends()

WINDOW = 300

POLICIES = [
    {"nan_policy": "skip"},
    {"nan_policy": "hold-last"},
    {"nan_policy": "linear-interp"},
    {"nan_policy": "hold-last", "max_gap": 25},
    {"nan_policy": "linear-interp", "max_gap": 25, "reset_on_gap": True},
]


def dirty_signal(seed=0, n=1_600):
    """Seeded segmented signal with injected NaN runs, inf spikes and a gap."""
    rng = np.random.default_rng(seed)
    half = n // 2
    values = np.concatenate(
        (
            np.sin(np.arange(half) / 8.0) + rng.normal(0.0, 0.05, half),
            np.sign(np.sin(np.arange(n - half) / 16.0)) + rng.normal(0.0, 0.05, n - half),
        )
    )
    values[120:126] = np.nan  # short NaN run
    values[420:423] = np.inf  # inf spike
    values[700:760] = 2.0  # constant plateau (degenerate subsequences)
    values[1_100:1_160] = np.nan  # long outage: exceeds max_gap=25
    values[n - 2] = -np.inf  # dirty tail near end of stream
    return values


def run_offline(values, policy, chunk_size, backend="numpy"):
    """Events + change points of one policy run at one chunk size."""
    segmenter = api.create(
        "class",
        {"window_size": WINDOW, "kernel_backend": backend, "data_policy": policy},
    )
    events = list(api.stream(segmenter, values, chunk_size=chunk_size))
    return (
        [event.to_dict() for event in events],
        [int(cp) for cp in segmenter.change_points],
        segmenter,
    )


# --------------------------------------------------------------------------- #
# chunk-size and backend invariance
# --------------------------------------------------------------------------- #


class TestChunkInvariance:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: "-".join(map(str, p.values())))
    def test_bit_identical_across_chunk_sizes(self, policy):
        values = dirty_signal()
        reference_events, reference_cps, _ = run_offline(values, policy, chunk_size=len(values))
        assert reference_events  # the generator must actually exercise the policy
        for chunk_size in (1, 7, 64, 1_024):
            events, cps, _ = run_offline(values, policy, chunk_size=chunk_size)
            assert events == reference_events, f"chunk_size={chunk_size}"
            assert cps == reference_cps, f"chunk_size={chunk_size}"

    def test_gap_and_quality_events_present(self):
        values = dirty_signal()
        events, _, segmenter = run_offline(
            values, {"nan_policy": "hold-last", "max_gap": 25}, chunk_size=256
        )
        kinds = [event["kind"] for event in events]
        assert "data_quality" in kinds
        assert "gap" in kinds
        counters = segmenter.quality_counters()
        assert counters["n_gaps"] == 1
        assert counters["n_skipped"] >= 60  # the long outage was not imputed
        assert counters["n_imputed"] >= 9

    def test_reset_on_gap_restarts_warmup(self):
        values = dirty_signal()
        events, _, _ = run_offline(
            values,
            {"nan_policy": "hold-last", "max_gap": 25, "reset_on_gap": True},
            chunk_size=128,
        )
        gap = next(event for event in events if event["kind"] == "gap")
        assert gap["reset"] is True

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    @pytest.mark.parametrize(
        "policy",
        [{"nan_policy": "hold-last"}, {"nan_policy": "linear-interp", "max_gap": 25}],
        ids=["hold-last", "interp-gap"],
    )
    def test_bit_identical_across_kernel_backends(self, policy):
        values = dirty_signal(seed=3)
        events_np, cps_np, _ = run_offline(values, policy, 256, backend="numpy")
        events_nb, cps_nb, _ = run_offline(values, policy, 256, backend="numba")
        assert events_np == events_nb
        assert cps_np == cps_nb


# --------------------------------------------------------------------------- #
# checkpoint / resume
# --------------------------------------------------------------------------- #


class TestCheckpointResume:
    @pytest.mark.parametrize("cut", [123, 1_130], ids=["mid-clean", "mid-open-gap-run"])
    def test_resume_is_bit_identical(self, cut):
        policy = {"nan_policy": "hold-last", "max_gap": 25}
        values = dirty_signal(seed=1)
        _, reference_cps, reference = run_offline(values, policy, chunk_size=64)
        reference_events = [event.to_dict() for event in reference.events()]

        segmenter = api.create(
            "class",
            {"window_size": WINDOW, "kernel_backend": "numpy", "data_policy": policy},
        )
        list(api.stream(segmenter, values[:cut], chunk_size=64))
        resumed = api.restore(segmenter.save_state())
        assert resumed.quality_counters() == segmenter.quality_counters()
        list(api.stream(resumed, values[cut:], chunk_size=64))
        assert [event.to_dict() for event in resumed.events()] == reference_events
        assert [int(cp) for cp in resumed.change_points] == reference_cps

    def test_checkpoint_config_round_trips_the_policy(self):
        policy = {"nan_policy": "skip", "duplicate_policy": "drop"}
        segmenter = api.create("class", {"window_size": WINDOW, "data_policy": policy})
        payload = segmenter.save_state()
        assert payload["config"]["data_policy"]["nan_policy"] == "skip"
        resumed = api.restore(payload)
        assert resumed.policy.nan_policy == "skip"
        assert resumed.policy.duplicate_policy == "drop"


# --------------------------------------------------------------------------- #
# service vs. offline (plus duplicate/stale batches)
# --------------------------------------------------------------------------- #


class TestServiceEquivalence:
    def test_service_matches_offline_with_duplicates_and_stale_batches(self):
        from repro.service.routes import ServiceRoutes
        from repro.service.streams import StreamRegistry
        from repro.service.workers import WorkerPool

        policy = {"nan_policy": "hold-last", "max_gap": 25, "duplicate_policy": "drop"}
        values = dirty_signal(seed=2)
        batch = 200
        batches = [values[i : i + batch] for i in range(0, len(values), batch)]

        async def scenario():
            registry = StreamRegistry(n_shards=2)
            pool = WorkerPool(2)
            pool.start()
            routes = ServiceRoutes(registry, pool)
            stream = registry.create_stream(
                "chaos", {"config": {"window_size": WINDOW}, "data_policy": policy}
            )
            for seq, chunk in enumerate(batches):
                doc = {"values": chunk.tolist(), "seq": seq}
                await routes.ingest(stream, doc)
                if seq == 2:  # duplicate of the batch just acked: replayed
                    ack = await routes.ingest(stream, doc)
                    assert ack.get("replayed") is True
                if seq == 4:  # genuinely stale batch: silently dropped
                    ack = await routes.ingest(
                        stream, {"values": batches[0].tolist(), "seq": 1}
                    )
                    assert ack.get("dropped") is True
                    assert ack["events"] == []
            _, metrics = await routes.metrics(None)
            await pool.stop()
            return stream, metrics

        stream, metrics = asyncio.run(scenario())
        _, offline_cps, offline = run_offline(values, policy, chunk_size=batch)
        assert [int(cp) for cp in stream.segmenter.change_points] == offline_cps
        service_events = [event.to_dict() for event in stream.segmenter.events()]
        assert service_events == [event.to_dict() for event in offline.events()]
        snapshot = metrics["streams"]["chaos"]
        assert snapshot["quality"] == offline.quality_counters()
        assert snapshot["n_dropped_batches"] == 1
        assert stream.metrics.n_dropped_batches == 1

    def test_dirty_batch_still_422_without_policy(self):
        from repro.service.errors import ServiceError
        from repro.service.streams import StreamRegistry

        registry = StreamRegistry(n_shards=1)
        with pytest.raises(ServiceError) as info:
            registry.parse_observations({"values": [0.0, float("nan")]})
        assert info.value.status == 422
        assert info.value.detail["first_bad_index"] == 1
        assert info.value.detail["first_bad_value"] == "nan"


# --------------------------------------------------------------------------- #
# storage tier: dirty streams in the chunk store
# --------------------------------------------------------------------------- #


class TestStorageReplay:
    def test_dirty_ingest_succeeds_but_default_segment_rejects(self, tmp_path):
        # pinned decision: the store is a faithful byte sink (ingest never
        # validates values); policies apply at replay/segmentation time
        from repro.storage import StreamStore

        store = StreamStore(tmp_path)
        store.ingest("dirty", dirty_signal(seed=4))
        with pytest.raises(ValidationError, match="NaN or infinite"):
            store.segment("dirty", "class", {"window_size": WINDOW})

    def test_policy_segment_logs_quality_events_and_resegment_replays(self, tmp_path):
        from repro.storage import StreamStore

        policy = {"nan_policy": "hold-last", "max_gap": 25}
        values = dirty_signal(seed=4)
        store = StreamStore(tmp_path)
        store.ingest("dirty", values)
        run = store.segment(
            "dirty",
            "class",
            {"window_size": WINDOW, "kernel_backend": "numpy", "data_policy": policy},
            chunk_size=256,
            checkpoint_every=500,
        )
        log = store.event_log("dirty")
        logged = [record["event"] for record in log.iter_records(0)]
        log.close()
        kinds = [event["kind"] for event in logged]
        assert "data_quality" in kinds
        assert "gap" in kinds
        _, offline_cps, offline = run_offline(values, policy, chunk_size=256)
        assert logged == [event.to_dict() for event in offline.events()]
        assert [entry["change_point"] for entry in run.change_points] == offline_cps

        # replay from the start and from a mid-stream snapshot: identical
        for from_t in (0, 600):
            audit = store.resegment("dirty", from_t, chunk_size=256)
            assert audit.to_dict()["identical"] is True
