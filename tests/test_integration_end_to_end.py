"""End-to-end integration tests mirroring the paper's headline experiments
at a miniature scale."""

import pytest

from repro.core.class_segmenter import ClaSS
from repro.datasets import load_collection, make_mitbih_ve_like
from repro.evaluation import (
    covering_score,
    critical_difference_analysis,
    default_method_factories,
    run_experiment,
)


@pytest.fixture(scope="module")
def mini_benchmark():
    """A miniature benchmark suite (6 short TSSB-like series)."""
    return load_collection("TSSB", n_series=6, length_scale=0.3, seed=77)


class TestHeadlineResult:
    def test_class_ranks_first_on_mini_benchmark(self, mini_benchmark):
        """ClaSS achieves the best mean Covering among a competitor subset
        (the qualitative shape of Table 3 / Figure 5)."""
        methods = default_method_factories(
            window_size=2_000,
            scoring_interval=25,
            floss_stride=25,
            include=["ClaSS", "Window", "DDM", "HDDM"],
        )
        result = run_experiment(methods, mini_benchmark)
        summary = result.summary_by_method()
        best_method = max(summary, key=lambda name: summary[name]["mean"])
        assert best_method == "ClaSS"
        # and the margin over the weak drift detectors is substantial
        assert summary["ClaSS"]["mean"] > summary["DDM"]["mean"] + 0.1
        assert summary["ClaSS"]["mean"] > summary["HDDM"]["mean"] + 0.1

    def test_rank_analysis_runs_on_experiment_output(self, mini_benchmark):
        methods = default_method_factories(
            window_size=2_000, scoring_interval=30, floss_stride=30,
            include=["ClaSS", "Window", "DDM"],
        )
        result = run_experiment(methods, mini_benchmark)
        matrix, _, names = result.score_matrix()
        analysis = critical_difference_analysis(matrix, names)
        assert analysis.ordering()[0][0] == "ClaSS"
        assert analysis.critical_difference > 0


class TestEarlyDetectionUseCase:
    def test_ecg_fibrillation_detected_shortly_after_onset(self):
        """Figure 1 / Figure 9: the ventricular fibrillation onset is reported
        within a few seconds (at 250 Hz) of the condition starting."""
        dataset = make_mitbih_ve_like(n_series=1, length_scale=0.4, seed=321)[0]
        onset = int(dataset.change_points[0])
        segmenter = ClaSS(window_size=min(4_000, len(dataset) // 2), scoring_interval=20)
        segmenter.process(dataset.values)
        matches = [r for r in segmenter.reports if abs(r.change_point - onset) < 600]
        assert matches, f"onset {onset} not detected, reports: {segmenter.reports}"
        # reported within ~2.5k observations (= 10 seconds at 250 Hz)
        assert matches[0].detected_at - onset < 2_500


class TestCoveringConsistency:
    def test_runner_covering_matches_direct_computation(self, mini_benchmark):
        methods = default_method_factories(include=["DDM"], window_size=500)
        result = run_experiment(methods, mini_benchmark[:2])
        for record, dataset in zip(result.records, mini_benchmark[:2]):
            direct = covering_score(
                dataset.change_points, record.predicted_change_points, dataset.n_timepoints
            )
            assert record.covering == pytest.approx(direct)
