"""Bounded service event history: memory window, disk spill, typed 410.

ISSUE 9 satellite: the service's per-stream in-memory event history is
bounded by spilling older events to the storage event log, so long-lived
streams no longer grow without limit while old ``?since=`` cursors are
still served (from disk).  Without a spill directory the bound still
holds, and an evicted cursor comes back as a typed 410
``history-truncated`` carrying the oldest cursor that still works.
"""

import asyncio
from pathlib import Path

import pytest

from repro.service import SegmentationService, ServiceClient
from repro.service.streams import StreamRegistry
from repro.storage import StreamHistory
from repro.utils.exceptions import ConfigurationError, HistoryTruncatedError


def _run(coro):
    return asyncio.run(coro)


async def _with_service(fn, **kwargs):
    service = SegmentationService(n_shards=kwargs.pop("n_shards", 1), **kwargs)
    await service.start(port=0)
    client = await ServiceClient("127.0.0.1", service.port).connect()
    try:
        return await fn(client, service)
    finally:
        await client.close()
        await service.stop()


def _events(n):
    return [{"kind": "score", "at": i, "score": float(i)} for i in range(n)]


# --------------------------------------------------------------------------- #
# StreamHistory unit behaviour
# --------------------------------------------------------------------------- #


class TestStreamHistory:
    def test_unbounded_window_keeps_everything(self):
        history = StreamHistory(window=None)
        assert history.append(_events(50)) == 50
        events, cursor = history.read_since(0)
        assert len(events) == 50 and cursor == 50
        assert history.info()["spilled"] == 0

    def test_window_without_spill_truncates(self):
        history = StreamHistory(window=8)
        history.append(_events(20))
        assert len(history) == 20
        assert history.earliest == 12
        tail, cursor = history.read_since(15)
        assert [e["at"] for e in tail] == [15, 16, 17, 18, 19]
        assert cursor == 20
        with pytest.raises(HistoryTruncatedError) as excinfo:
            history.read_since(3)
        assert excinfo.value.earliest == 12

    def test_window_with_spill_serves_full_history(self, tmp_path):
        history = StreamHistory(window=8, spill_path=tmp_path / "s.events.log")
        history.append(_events(20))
        assert history.earliest == 0
        assert history.n_spilled == 12
        events, cursor = history.read_since(0)
        assert [e["at"] for e in events] == list(range(20))
        assert cursor == 20
        # a cursor straddling the spill/memory boundary also works
        middle, _ = history.read_since(10)
        assert [e["at"] for e in middle] == list(range(10, 20))
        assert history.snapshot() == events
        history.close()

    def test_non_monotone_ats_spill_without_error(self, tmp_path):
        history = StreamHistory(window=2, spill_path=tmp_path / "s.events.log")
        history.append([{"kind": "score", "at": 100}, {"kind": "warmup"}, {"at": 7}])
        history.append(_events(3))
        events, _ = history.read_since(0)
        assert len(events) == 6  # clamped ats, nothing dropped or raised
        history.close()

    def test_discard_removes_spill_files(self, tmp_path):
        spill = tmp_path / "s.events.log"
        history = StreamHistory(window=2, spill_path=spill)
        history.append(_events(10))
        assert spill.exists()
        history.discard()
        assert not spill.exists()
        assert not spill.with_name(spill.name + ".idx").exists()

    def test_registry_validates_history_window(self):
        with pytest.raises(ConfigurationError, match="history_window"):
            StreamRegistry(1, history_window=0)
        with pytest.raises(ConfigurationError, match="history_window"):
            StreamRegistry(1, history_window=True)


# --------------------------------------------------------------------------- #
# service integration: spill-backed replay and typed 410
# --------------------------------------------------------------------------- #


async def _ingest_events(client, n_values=400):
    """Create a stream, push values, return every fresh event the acks saw.

    Uses page-hinkley over a mean that flips every 25 observations, so each
    flip emits a change point — far more events than the 4-event window.
    """
    await client.request("POST", "/streams/s1", {"detector": "page-hinkley"})
    seen = []
    for start in range(0, n_values, 100):
        values = [float(((start + i) // 25) % 2) * 8.0 for i in range(100)]
        status, body = await client.request(
            "POST", "/streams/s1/observations", {"values": values}
        )
        assert status == 200
        seen.extend(body["events"])
    return seen


class TestServiceBoundedHistory:
    def test_old_cursor_served_from_spill(self, tmp_path):
        async def scenario(client, service):
            seen = await _ingest_events(client)
            assert len(seen) > 4  # the window is smaller than the history

            status, info = await client.request("GET", "/streams/s1")
            assert info["n_events"] == len(seen)  # total, not just in-memory

            status, body = await client.request("GET", "/streams/s1/events?since=0")
            assert status == 200
            assert body["events"] == seen  # full replay crosses the spill
            assert body["next"] == len(seen)

            spill = Path(tmp_path / "history" / "s1.events.log")
            assert spill.exists() and spill.stat().st_size > 0

        _run(
            _with_service(
                scenario, history_window=4, history_dir=str(tmp_path / "history")
            )
        )

    def test_truncated_cursor_is_typed_410_without_spill(self):
        async def scenario(client, service):
            seen = await _ingest_events(client)
            status, body = await client.request("GET", "/streams/s1/events?since=0")
            assert status == 410
            assert body["error"]["code"] == "history-truncated"
            earliest = body["error"]["detail"]["earliest"]
            assert earliest == len(seen) - 4
            # the advertised earliest cursor really does work
            status, body = await client.request(
                "GET", f"/streams/s1/events?since={earliest}"
            )
            assert status == 200
            assert body["events"] == seen[earliest:]

            # and the service is still fully alive after the 410
            status, _ = await client.request("GET", "/healthz")
            assert status == 200

        _run(_with_service(scenario, history_window=4))

    def test_ws_replay_from_spill(self, tmp_path):
        async def scenario(client, service):
            seen = await _ingest_events(client)
            session = await client.open_websocket("/streams/s1/ws?since=0")
            for expected in seen:  # replay spans disk + memory, in order
                assert await session.recv_json() == expected
            await session.close()

        _run(
            _with_service(
                scenario, history_window=4, history_dir=str(tmp_path / "history")
            )
        )

    def test_ws_truncated_cursor_rejected_without_spill(self):
        async def scenario(client, service):
            from repro.service.protocol import ProtocolError

            await _ingest_events(client)
            with pytest.raises(ProtocolError, match="history-truncated"):
                await client.open_websocket("/streams/s1/ws?since=0")

        _run(_with_service(scenario, history_window=4))

    def test_delete_stream_removes_spill_files(self, tmp_path):
        async def scenario(client, service):
            await _ingest_events(client)
            spill = Path(tmp_path / "history" / "s1.events.log")
            assert spill.exists()
            status, _ = await client.request("DELETE", "/streams/s1")
            assert status == 200
            assert not spill.exists()

        _run(
            _with_service(
                scenario, history_window=4, history_dir=str(tmp_path / "history")
            )
        )
