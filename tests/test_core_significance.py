"""Unit tests for the resampled rank-sum change point significance test."""

import numpy as np
import pytest

from repro.core.significance import (
    ChangePointSignificanceTest,
    rank_sum_p_value,
)
from repro.utils.exceptions import ConfigurationError


class TestRankSumPValue:
    def test_identical_constant_sides_not_significant(self):
        _, p = rank_sum_p_value(np.zeros(100), np.zeros(100))
        assert p == pytest.approx(1.0)

    def test_clearly_different_sides_significant(self):
        _, p = rank_sum_p_value(np.zeros(500), np.ones(500))
        assert p < 1e-50

    def test_empty_side_returns_one(self):
        _, p = rank_sum_p_value(np.array([]), np.ones(10))
        assert p == pytest.approx(1.0)

    def test_similar_distributions_not_extreme(self, rng):
        left = rng.integers(0, 2, 500).astype(float)
        right = rng.integers(0, 2, 500).astype(float)
        _, p = rank_sum_p_value(left, right)
        assert p > 1e-10


class TestChangePointSignificanceTest:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ChangePointSignificanceTest(significance_level=0.0)
        with pytest.raises(ConfigurationError):
            ChangePointSignificanceTest(sample_size=1)

    def test_perfect_separation_is_significant(self):
        test = ChangePointSignificanceTest(significance_level=1e-50, sample_size=1_000)
        y_pred = np.concatenate([np.zeros(400), np.ones(400)])
        result = test.test(y_pred, split=400)
        assert result.significant
        assert result.p_value < 1e-50
        assert result.n_left == 400 and result.n_right == 400

    def test_random_labels_not_significant(self, rng):
        test = ChangePointSignificanceTest(significance_level=1e-50, sample_size=1_000)
        y_pred = rng.integers(0, 2, 800).astype(float)
        result = test.test(y_pred, split=400)
        assert not result.significant

    def test_boundary_split_rejected(self):
        test = ChangePointSignificanceTest()
        y_pred = np.ones(100)
        assert not test.test(y_pred, split=0).significant
        assert not test.test(y_pred, split=100).significant

    def test_variable_sample_size(self):
        test = ChangePointSignificanceTest(sample_size=None, significance_level=1e-10)
        y_pred = np.concatenate([np.zeros(200), np.ones(200)])
        assert test.test(y_pred, split=200).significant

    def test_resampling_is_reproducible(self):
        y_pred = np.concatenate([np.zeros(50), (np.arange(350) % 2)]).astype(float)
        a = ChangePointSignificanceTest(random_state=11).test(y_pred, split=50)
        b = ChangePointSignificanceTest(random_state=11).test(y_pred, split=50)
        assert a.p_value == pytest.approx(b.p_value)

    def test_sample_size_controls_bias(self):
        # §3.3: without resampling the p-value keeps shrinking as the label
        # configuration grows, even though the class proportions are fixed;
        # with the 1k resample the p-value stays in a comparable range.
        def labels(n_side):
            rng = np.random.default_rng(5)
            left = (rng.random(n_side) < 0.35).astype(float)   # 35% ones left
            right = (rng.random(n_side) < 0.65).astype(float)  # 65% ones right
            return np.concatenate([left, right])

        small, large = labels(300), labels(30_000)
        variable = ChangePointSignificanceTest(sample_size=None, random_state=3)
        p_small_variable = variable.test(small, split=300).p_value
        p_large_variable = variable.test(large, split=30_000).p_value
        assert p_large_variable < p_small_variable * 1e-10  # the bias

        resampled = ChangePointSignificanceTest(sample_size=1_000, random_state=3)
        p_small_resampled = resampled.test(small, split=300).p_value
        p_large_resampled = ChangePointSignificanceTest(sample_size=1_000, random_state=3).test(
            large, split=30_000
        ).p_value
        ratio = abs(
            np.log10(max(p_large_resampled, 1e-300)) - np.log10(max(p_small_resampled, 1e-300))
        )
        assert ratio < 10  # comparable orders of magnitude once resampled
