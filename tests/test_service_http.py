"""HTTP-level service tests: lifecycle, typed 4xx error bodies, resilience.

The error contract (ISSUE 7 satellite): bad JSON configs, NaN/inf
observation payloads, unknown stream names and oversized batches must come
back as structured 4xx bodies — and must never crash a shard worker or the
server.  Every error case here re-checks ``/healthz`` and then performs a
successful ingest to prove the service is still fully live.
"""

import asyncio
import math

import pytest

from repro.service import SegmentationService, ServiceClient

CONFIG = {"window_size": 120, "scoring_interval": 10}


def _run(coro):
    return asyncio.run(coro)


async def _with_service(fn, **kwargs):
    """Start an ephemeral service, run ``fn(client, service)``, tear down."""
    service = SegmentationService(n_shards=kwargs.pop("n_shards", 2), **kwargs)
    await service.start(port=0)
    client = await ServiceClient("127.0.0.1", service.port).connect()
    try:
        return await fn(client, service)
    finally:
        await client.close()
        await service.stop()


async def _assert_alive(client):
    """The service must still answer /healthz and ingest successfully."""
    status, body = await client.request("GET", "/healthz")
    assert status == 200
    assert body["status"] == "ok"


# --------------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------------- #


class TestLifecycle:
    def test_create_info_list_delete(self):
        async def scenario(client, service):
            status, body = await client.request(
                "POST", "/streams/s1", {"detector": "class", "config": CONFIG}
            )
            assert status == 201
            assert body["name"] == "s1"
            assert body["detector"] == "class"
            assert 0 <= body["shard"] < 2

            status, body = await client.request("GET", "/streams/s1")
            assert status == 200
            assert body["n_seen"] == 0
            assert body["frozen"] is False

            status, body = await client.request("GET", "/streams")
            assert status == 200
            assert [stream["name"] for stream in body["streams"]] == ["s1"]

            status, body = await client.request("DELETE", "/streams/s1")
            assert status == 200
            status, _ = await client.request("GET", "/streams/s1")
            assert status == 404

        _run(_with_service(scenario))

    def test_ingest_returns_fresh_events_and_cursor_pagination(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            values = [math.sin(i / 5.0) for i in range(150)]
            status, body = await client.request(
                "POST", "/streams/s1/observations", {"values": values}
            )
            assert status == 200
            assert body["n_seen"] == 150
            kinds = [event["kind"] for event in body["events"]]
            assert "warmup" in kinds  # window_size=120 < 150

            status, body = await client.request("GET", "/streams/s1/events?since=0")
            assert status == 200
            first_total = body["next"]
            assert len(body["events"]) == first_total >= 1

            status, body = await client.request(
                "GET", f"/streams/s1/events?since={first_total}"
            )
            assert body["events"] == []
            assert body["next"] == first_total

        _run(_with_service(scenario))

    def test_duplicate_stream_is_409(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/dup", {"config": CONFIG})
            status, body = await client.request("POST", "/streams/dup", {"config": CONFIG})
            assert status == 409
            assert body["error"]["code"] == "stream-exists"
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_healthz_and_metrics_shapes(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/m1", {"config": CONFIG})
            await client.request(
                "POST", "/streams/m1/observations", {"values": [0.1] * 130}
            )
            status, body = await client.request("GET", "/metrics")
            assert status == 200
            assert body["n_streams"] == 1
            assert body["total_observations"] == 130
            stream = body["streams"]["m1"]
            assert stream["n_observations"] == 130
            assert stream["event_counts"].get("warmup") == 1
            assert stream["event_latency_p50_ms"] is not None
            assert stream["event_latency_p99_ms"] >= stream["event_latency_p50_ms"]
            assert len(body["workers"]) == 2

        _run(_with_service(scenario))


# --------------------------------------------------------------------------- #
# malformed input -> typed 4xx, never a crash
# --------------------------------------------------------------------------- #


class TestMalformedInput:
    def test_bad_json_config_body(self):
        async def scenario(client, service):
            # raw request with a non-JSON body
            client._writer.write(
                b"POST /streams/bad HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
            )
            await client._writer.drain()
            status, body = await client._read_response()
            assert status == 400
            assert body["error"]["code"] == "bad-json"
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_config_rejected_by_registry_validation(self):
        async def scenario(client, service):
            status, body = await client.request(
                "POST", "/streams/bad", {"config": {"window_size": -5}}
            )
            assert status == 400
            assert body["error"]["code"] == "bad-config"
            assert "window_size" in body["error"]["message"]

            status, body = await client.request(
                "POST", "/streams/bad", {"detector": "no-such-detector"}
            )
            assert status == 400
            assert body["error"]["code"] == "bad-config"
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_unknown_config_field_is_rejected(self):
        async def scenario(client, service):
            status, body = await client.request(
                "POST", "/streams/bad", {"config": {"window_sizzle": 100}}
            )
            assert status == 400
            assert body["error"]["code"] == "bad-config"

        _run(_with_service(scenario))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_observations_are_422(self, bad):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            status, body = await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1, bad, 0.3]}
            )
            assert status == 422
            assert body["error"]["code"] == "non-finite-observations"
            assert body["error"]["detail"]["first_bad_index"] == 1
            # the detector saw nothing
            status, info = await client.request("GET", "/streams/s1")
            assert info["n_seen"] == 0
            await _assert_alive(client)
            status, _ = await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1, 0.2]}
            )
            assert status == 200

        _run(_with_service(scenario))

    def test_non_numeric_observations_are_422(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            status, body = await client.request(
                "POST", "/streams/s1/observations", {"values": ["a", "b"]}
            )
            assert status == 422
            assert body["error"]["code"] == "bad-observations"
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_unknown_stream_is_404(self):
        async def scenario(client, service):
            for method, path in [
                ("POST", "/streams/ghost/observations"),
                ("GET", "/streams/ghost/events"),
                ("POST", "/streams/ghost/freeze"),
                ("DELETE", "/streams/ghost"),
            ]:
                status, body = await client.request(
                    method, path, {"values": [1.0]} if method == "POST" else None
                )
                assert status == 404, path
                assert body["error"]["code"] == "unknown-stream"
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_oversized_batch_is_413(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            status, body = await client.request(
                "POST", "/streams/s1/observations", {"values": [0.0] * 201}
            )
            assert status == 413
            assert body["error"]["code"] == "oversized-batch"
            assert body["error"]["detail"]["max_batch"] == 200
            status, info = await client.request("GET", "/streams/s1")
            assert info["n_seen"] == 0
            await _assert_alive(client)

        _run(_with_service(scenario, max_batch=200))

    def test_bad_stream_name_is_400(self):
        async def scenario(client, service):
            status, body = await client.request("POST", "/streams/bad!name", {})
            assert status == 400
            assert body["error"]["code"] == "bad-stream-name"

        _run(_with_service(scenario))

    def test_unknown_route_and_method(self):
        async def scenario(client, service):
            status, body = await client.request("GET", "/nope")
            assert status == 404
            assert body["error"]["code"] == "unknown-route"
            status, body = await client.request("DELETE", "/healthz")
            assert status == 405
            assert body["error"]["code"] == "method-not-allowed"
            assert body["error"]["detail"]["allowed"] == ["GET"]

        _run(_with_service(scenario))

    def test_missing_values_key_is_400(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            status, body = await client.request(
                "POST", "/streams/s1/observations", {"observations": [1.0]}
            )
            assert status == 400
            assert body["error"]["code"] == "bad-request"

        _run(_with_service(scenario))


# --------------------------------------------------------------------------- #
# freeze / resume error paths
# --------------------------------------------------------------------------- #


class TestFreezeResume:
    def test_frozen_stream_rejects_observations_then_resumes(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            await client.request("POST", "/streams/s1/observations", {"values": [0.1] * 50})
            status, body = await client.request("POST", "/streams/s1/freeze")
            assert status == 200
            assert body["frozen"] is True

            status, body = await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1]}
            )
            assert status == 409
            assert body["error"]["code"] == "stream-frozen"

            status, body = await client.request("POST", "/streams/s1/freeze")
            assert status == 409  # double freeze

            status, body = await client.request("POST", "/streams/s1/resume")
            assert status == 200
            assert body["n_seen"] == 50
            status, _ = await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1]}
            )
            assert status == 200

        _run(_with_service(scenario))

    def test_resume_without_freeze_is_409(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            status, body = await client.request("POST", "/streams/s1/resume")
            assert status == 409
            assert body["error"]["code"] == "not-frozen"

        _run(_with_service(scenario))

    def test_rebalance_validates_target_shard(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            status, body = await client.request("POST", "/streams/s1/rebalance", {"shard": 99})
            assert status == 400
            status, body = await client.request("POST", "/streams/s1/rebalance", {})
            assert status == 400
            status, info = await client.request("GET", "/streams/s1")
            status, body = await client.request(
                "POST", "/streams/s1/rebalance", {"shard": info["shard"]}
            )
            assert status == 409
            assert body["error"]["code"] == "same-shard"

        _run(_with_service(scenario))


# --------------------------------------------------------------------------- #
# WebSocket error containment
# --------------------------------------------------------------------------- #


class TestWebSocketErrors:
    def test_ws_upgrade_on_unknown_stream_is_404(self):
        async def scenario(client, service):
            from repro.service.protocol import ProtocolError

            with pytest.raises(ProtocolError, match="unknown-stream"):
                await client.open_websocket("/streams/ghost/ws")
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_ws_bad_frames_get_typed_errors_and_session_survives(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            session = await client.open_websocket("/streams/s1/ws")

            await session.send_json({"values": [1.0, float("nan")]})
            message = await session.recv_json()
            assert message["kind"] == "error"
            assert message["code"] == "non-finite-observations"

            await session.send_json({"wrong": "shape"})
            message = await session.recv_json()
            assert message["kind"] == "error"
            assert message["code"] == "bad-request"

            # the session still ingests fine after both errors
            await session.send_json({"values": [0.5, 0.6]})
            message = await session.recv_json()
            assert message["kind"] == "ack"
            assert message["n_seen"] == 2

            await session.close()
            await _assert_alive(client)

        _run(_with_service(scenario))

    def test_ws_replays_history_and_pushes_live_events(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1] * 130}
            )
            session = await client.open_websocket("/streams/s1/ws?since=0")
            replayed = await session.recv_json()
            assert replayed["kind"] == "warmup"  # history replay

            # a live event pushed by a *different* connection reaches the socket
            await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1] * 10}
            )
            await session.send_json({"values": [0.2]})
            message = await session.recv_json()
            assert message["kind"] in ("ack", "score", "change_point")
            await session.close()

        _run(_with_service(scenario))


# --------------------------------------------------------------------------- #
# client retry policy + typed 5xx surfacing
# --------------------------------------------------------------------------- #


class TestClientRetriesAndTypedUnavailable:
    def test_503_surfaces_as_typed_error_with_parsed_retry_after(self):
        """A 5xx never comes back as a bare ``(status, body)`` tuple: the
        client raises :class:`ServiceUnavailableError` carrying the parsed
        body and the ``Retry-After`` header."""
        from repro.service import RetryPolicy, ServiceUnavailableError

        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            service.routes.draining = True  # every ingest now answers 503
            impatient = await ServiceClient(
                "127.0.0.1", service.port, retry=RetryPolicy(retries=0)
            ).connect()
            try:
                with pytest.raises(ServiceUnavailableError) as caught:
                    await impatient.request(
                        "POST", "/streams/s1/observations", {"values": [0.1]}
                    )
            finally:
                await impatient.close()
            error = caught.value
            assert error.status == 503
            assert error.code == "shutting-down"
            assert error.retry_after == 1.0  # parsed from the Retry-After header
            assert error.body["error"]["code"] == "shutting-down"
            assert impatient.last_headers["retry-after"] == "1"
            service.routes.draining = False
            status, _ = await client.request(
                "POST", "/streams/s1/observations", {"values": [0.1]}
            )
            assert status == 200  # the service itself was never unhealthy

        _run(_with_service(scenario))

    def test_retries_ride_out_a_transient_503(self):
        from repro.service import RetryPolicy

        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            service.routes.draining = True

            async def recover():
                await asyncio.sleep(0.1)
                service.routes.draining = False

            recovery = asyncio.create_task(recover())
            patient = await ServiceClient(
                "127.0.0.1", service.port,
                retry=RetryPolicy(retries=5, backoff=0.05, jitter=0.0),
            ).connect()
            try:
                status, body = await patient.request(
                    "POST", "/streams/s1/observations", {"values": [0.1]}
                )
                assert status == 200
                assert patient.n_retries >= 1
            finally:
                await recovery
                await patient.close()

        _run(_with_service(scenario))

    def test_dropped_keep_alive_connection_is_retried_transparently(self):
        async def scenario(client, service):
            await client.request("POST", "/streams/s1", {"config": CONFIG})
            # simulate the server (or a proxy) dropping the idle keep-alive
            # socket between requests: the client reconnects and retries
            client._writer.close()
            status, body = await client.request("GET", "/streams/s1")
            assert status == 200
            assert body["name"] == "s1"

        _run(_with_service(scenario))

    def test_retry_policy_validation_and_backoff_math(self):
        from repro.service import RetryPolicy
        from repro.utils.exceptions import ConfigurationError

        for bad in (
            dict(retries=-1),
            dict(backoff=-0.1),
            dict(jitter=1.5),
            dict(connect_timeout=0),
            dict(read_timeout=-2),
        ):
            with pytest.raises(ConfigurationError):
                RetryPolicy(**bad).validate()

        policy = RetryPolicy(backoff=0.1, max_backoff=0.4, jitter=0.0)
        assert policy.delay(0, retry_after=None) == pytest.approx(0.1)
        assert policy.delay(1, retry_after=None) == pytest.approx(0.2)
        assert policy.delay(5, retry_after=None) == pytest.approx(0.4)  # capped
        # a server-provided Retry-After floors the computed delay
        assert policy.delay(0, retry_after=0.3) == pytest.approx(0.3)
        jittered = RetryPolicy(backoff=0.1, jitter=0.2).delay(0, retry_after=None)
        assert 0.1 <= jittered <= 0.1 * 1.2 + 1e-9
