"""Unit and property tests for the exact streaming k-NN (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import SIMILARITY_MEASURES, pairwise_similarity_matrix
from repro.core.streaming_knn import (
    FFT_BATCH_MIN,
    KNN_MODES,
    PADDING_INDEX,
    StreamingKNN,
    exact_knn_bruteforce,
    exclusion_radius,
)
from repro.utils.exceptions import ConfigurationError


def ingest(knn: StreamingKNN, values) -> None:
    """Drain the chunked ingestion iterator (the post-deprecation `extend`)."""
    for _ in knn.update_many(values):
        pass


class TestConstruction:
    def test_rejects_small_window(self):
        with pytest.raises(ConfigurationError):
            StreamingKNN(window_size=15, subsequence_width=10)

    def test_rejects_tiny_width(self):
        with pytest.raises(ConfigurationError):
            StreamingKNN(window_size=100, subsequence_width=1)

    def test_rejects_bad_similarity(self):
        with pytest.raises(ConfigurationError):
            StreamingKNN(window_size=100, subsequence_width=10, similarity="cosine")

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            StreamingKNN(window_size=100, subsequence_width=10, mode="gpu")

    def test_rejects_non_finite_values(self):
        knn = StreamingKNN(window_size=100, subsequence_width=10)
        with pytest.raises(ConfigurationError):
            knn.update(float("nan"))

    def test_exclusion_radius(self):
        assert exclusion_radius(10) == 15
        assert exclusion_radius(7) == 11


class TestAgainstBruteForce:
    def test_similarities_match_bruteforce_without_eviction(self, rng):
        values = rng.normal(size=260)
        w, k = 12, 3
        knn = StreamingKNN(window_size=values.shape[0], subsequence_width=w, k_neighbours=k)
        ingest(knn, values)
        _, brute_sims = exact_knn_bruteforce(values, w, k)
        stream_sims = knn.knn_similarities
        finite = np.isfinite(brute_sims) & np.isfinite(stream_sims)
        np.testing.assert_allclose(stream_sims[finite], brute_sims[finite], atol=1e-6)
        assert np.array_equal(np.isfinite(brute_sims), np.isfinite(stream_sims))

    def test_last_profile_is_exact_after_eviction(self, rng):
        values = rng.normal(size=400)
        w = 10
        knn = StreamingKNN(window_size=150, subsequence_width=w, k_neighbours=3)
        ingest(knn, values)
        expected = pairwise_similarity_matrix(knn.window, w)[-1]
        np.testing.assert_allclose(knn.last_similarity_profile, expected, atol=1e-8)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        width=st.integers(min_value=3, max_value=10),
        k=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_matches_bruteforce(self, seed, width, k):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=40 + 10 * width)
        knn = StreamingKNN(window_size=values.shape[0], subsequence_width=width, k_neighbours=k)
        ingest(knn, values)
        _, brute_sims = exact_knn_bruteforce(values, width, k)
        stream_sims = knn.knn_similarities
        finite = np.isfinite(brute_sims) & np.isfinite(stream_sims)
        np.testing.assert_allclose(stream_sims[finite], brute_sims[finite], atol=1e-6)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_profile_exact_under_sliding(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=250)
        w = 8
        knn = StreamingKNN(window_size=90, subsequence_width=w, k_neighbours=2)
        ingest(knn, values)
        expected = pairwise_similarity_matrix(knn.window, w)[-1]
        np.testing.assert_allclose(knn.last_similarity_profile, expected, atol=1e-7)


class TestModesAgree:
    @pytest.mark.parametrize("mode", KNN_MODES)
    @pytest.mark.parametrize("measure", SIMILARITY_MEASURES)
    def test_profiles_identical_across_modes(self, rng, mode, measure):
        values = rng.normal(size=300)
        w = 11
        reference = StreamingKNN(
            window_size=120, subsequence_width=w, mode="streaming", similarity=measure
        )
        other = StreamingKNN(
            window_size=120, subsequence_width=w, mode=mode, similarity=measure
        )
        for value in values:
            reference.update(float(value))
            other.update(float(value))
        np.testing.assert_allclose(
            reference.last_similarity_profile, other.last_similarity_profile, atol=1e-8
        )

    @pytest.mark.parametrize("measure", SIMILARITY_MEASURES)
    def test_fft_agrees_with_recompute(self, rng, measure):
        values = rng.normal(size=300)
        w = 11
        fft = StreamingKNN(window_size=120, subsequence_width=w, mode="fft", similarity=measure)
        recompute = StreamingKNN(
            window_size=120, subsequence_width=w, mode="recompute", similarity=measure
        )
        ingest(fft, values)
        ingest(recompute, values)
        np.testing.assert_allclose(
            fft.last_similarity_profile, recompute.last_similarity_profile, atol=1e-8
        )

    @pytest.mark.parametrize("measure", SIMILARITY_MEASURES)
    def test_fft_agrees_with_streaming_after_checkpoint_resume(self, rng, measure):
        values = rng.normal(size=480)
        w = 11
        uninterrupted = StreamingKNN(
            window_size=120, subsequence_width=w, mode="fft", similarity=measure
        )
        ingest(uninterrupted, values)
        first_half = StreamingKNN(
            window_size=120, subsequence_width=w, mode="fft", similarity=measure
        )
        ingest(first_half, values[:300])
        resumed = StreamingKNN(
            window_size=120, subsequence_width=w, mode="fft", similarity=measure
        )
        resumed.load_state_dict(first_half.state_dict())
        ingest(resumed, values[300:])
        # resume is bit-identical to never having checkpointed ...
        np.testing.assert_array_equal(
            uninterrupted.last_similarity_profile, resumed.last_similarity_profile
        )
        np.testing.assert_array_equal(uninterrupted.knn_indices, resumed.knn_indices)
        # ... and the fft profiles stay within tolerance of the exact path
        streaming = StreamingKNN(
            window_size=120, subsequence_width=w, mode="streaming", similarity=measure
        )
        ingest(streaming, values)
        np.testing.assert_allclose(
            uninterrupted.last_similarity_profile, streaming.last_similarity_profile, atol=1e-8
        )

    @pytest.mark.parametrize("measure", SIMILARITY_MEASURES)
    def test_fft_batch_path_matches_pointwise(self, rng, measure):
        # chunks >= FFT_BATCH_MIN in steady state take the batched transform;
        # the per-point loop is the reference — they must be bit-identical
        values = rng.normal(size=600)
        w = 11
        batched = StreamingKNN(
            window_size=120, subsequence_width=w, mode="fft", similarity=measure
        )
        pointwise = StreamingKNN(
            window_size=120, subsequence_width=w, mode="fft", similarity=measure
        )
        split = 200  # past the warm-up: every later chunk runs in steady state
        ingest(batched, values[:split])
        for start in range(split, values.shape[0], 2 * FFT_BATCH_MIN):
            ingest(batched, values[start : start + 2 * FFT_BATCH_MIN])
        for value in values:
            pointwise.update(float(value))
        np.testing.assert_array_equal(
            batched.last_similarity_profile, pointwise.last_similarity_profile
        )
        np.testing.assert_array_equal(batched.knn_indices, pointwise.knn_indices)
        np.testing.assert_array_equal(batched.knn_similarities, pointwise.knn_similarities)


class TestBookkeeping:
    def test_row_count_grows_then_saturates(self, rng):
        values = rng.normal(size=300)
        knn = StreamingKNN(window_size=100, subsequence_width=10, k_neighbours=3)
        ingest(knn, values)
        assert knn.n_subsequences == 100 - 10 + 1
        assert knn.n_buffered == 100
        assert knn.n_seen == 300

    def test_indices_shift_negative_after_eviction(self, rng):
        values = rng.normal(size=400)
        knn = StreamingKNN(window_size=120, subsequence_width=10, k_neighbours=1)
        ingest(knn, values)
        indices = knn.knn_indices
        # stale neighbours may have negative offsets; none may point past the window
        assert indices.max() < knn.n_subsequences
        assert np.any(indices < knn.n_subsequences)

    def test_exclusion_zone_respected(self, rng):
        values = rng.normal(size=220)
        w, k = 10, 2
        knn = StreamingKNN(window_size=values.shape[0], subsequence_width=w, k_neighbours=k)
        ingest(knn, values)
        excl = exclusion_radius(w)
        indices = knn.knn_indices
        rows = np.arange(indices.shape[0])
        valid = indices > PADDING_INDEX
        distances = np.abs(indices - rows[:, None])
        assert np.all(distances[valid] >= excl)

    def test_reset_clears_state(self, rng):
        knn = StreamingKNN(window_size=100, subsequence_width=10)
        ingest(knn, rng.normal(size=150))
        knn.reset()
        assert knn.n_seen == 0
        assert knn.n_subsequences == 0
        assert knn.last_similarity_profile is None
        ingest(knn, rng.normal(size=150))
        assert knn.n_subsequences > 0

    def test_constant_stream_does_not_crash(self):
        knn = StreamingKNN(window_size=80, subsequence_width=8)
        ingest(knn, np.full(200, 5.0))
        assert np.isfinite(knn.knn_similarities[np.isfinite(knn.knn_similarities)]).all()

    def test_euclidean_and_cid_similarities_are_nonpositive(self, rng):
        values = rng.normal(size=200)
        for measure in ("euclidean", "cid"):
            knn = StreamingKNN(
                window_size=100, subsequence_width=10, similarity=measure, k_neighbours=2
            )
            ingest(knn, values)
            sims = knn.knn_similarities
            assert np.all(sims[np.isfinite(sims)] <= 1e-9)


class TestChunkedIngestion:
    def test_update_many_yields_one_state_per_observation(self, rng):
        values = rng.normal(size=50)
        knn = StreamingKNN(window_size=40, subsequence_width=8)
        states = list(knn.update_many(values))
        assert len(states) == 50
        # warm-up yields False until the first subsequence exists
        assert states[:7] == [False] * 7
        assert all(states[7:])

    def test_update_many_validates_eagerly(self):
        knn = StreamingKNN(window_size=40, subsequence_width=8)
        with pytest.raises(ConfigurationError):
            knn.update_many(np.array([1.0, np.nan]))
        with pytest.raises(ConfigurationError):
            knn.update_many(np.ones((4, 2)))

    def test_intermediate_states_inspectable_between_yields(self, rng):
        values = rng.normal(size=120)
        knn = StreamingKNN(window_size=60, subsequence_width=6)
        reference = StreamingKNN(window_size=60, subsequence_width=6)
        iterator = knn.update_many(values)
        for value in values:
            next(iterator)
            reference.update(float(value))
            assert np.array_equal(knn.knn_indices, reference.knn_indices)

    @pytest.mark.legacy_api
    def test_extend_is_deprecated_but_equivalent(self, rng):
        values = rng.normal(size=120)
        legacy = StreamingKNN(window_size=60, subsequence_width=6)
        with pytest.warns(DeprecationWarning):
            legacy.extend(values)
        current = StreamingKNN(window_size=60, subsequence_width=6)
        ingest(current, values)
        assert np.array_equal(legacy.knn_indices, current.knn_indices)
        assert np.array_equal(legacy.knn_similarities, current.knn_similarities)

    def test_ring_buffer_window_matches_stream_tail(self, rng):
        # enough values to force several compactions of the backing array
        values = rng.normal(size=1_000)
        knn = StreamingKNN(window_size=90, subsequence_width=9)
        ingest(knn, values)
        np.testing.assert_array_equal(knn.window, values[-90:])
        assert knn.n_evicted == 1_000 - 90
