"""Unit and property tests for the O(d) cross-validation (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cross_val import (
    CROSS_VAL_IMPLEMENTATIONS,
    cross_val_scores_incremental,
    cross_val_scores_naive,
    cross_val_scores_vectorised,
    prediction_thresholds,
    predictions_for_split,
)
from repro.core.scoring import confusion_from_labels, macro_f1_score
from repro.utils.exceptions import ConfigurationError


def _random_knn(rng, m=80, k=3, allow_negative=True):
    low = -10 if allow_negative else 0
    return rng.integers(low, m, size=(m, k))


class TestValidation:
    def test_rejects_1d_input(self, rng):
        with pytest.raises(ConfigurationError):
            cross_val_scores_vectorised(np.arange(10), exclusion=2)

    def test_rejects_single_row(self):
        with pytest.raises(ConfigurationError):
            cross_val_scores_vectorised(np.zeros((1, 3), dtype=int), exclusion=2)

    def test_empty_result_when_exclusion_too_large(self, rng):
        knn = _random_knn(rng, m=20)
        result = cross_val_scores_vectorised(knn, exclusion=15)
        assert result.scores.size == 0
        assert result.splits.size == 0


class TestPredictionThresholds:
    def test_majority_rule_k3(self):
        knn = np.array([[1, 5, 9], [0, 2, 4]])
        # prediction flips to 0 once 2 of 3 neighbours lie left of the split,
        # i.e. for splits > 5 (row 0) and splits > 2 (row 1)
        thresholds = prediction_thresholds(knn)
        assert thresholds[0] == 5
        assert thresholds[1] == 2

    def test_negative_neighbours_count_as_left(self):
        knn = np.array([[-3, -1, 9], [1, 2, 3]])
        thresholds = prediction_thresholds(knn)
        assert thresholds[0] == -1  # already 2 left-ish neighbours for any split > -1

    def test_predictions_for_split_consistency(self, rng):
        knn = _random_knn(rng, m=50)
        for split in (10, 25, 40):
            predictions = predictions_for_split(knn, split)
            neighbour_labels = (knn >= split).astype(int)
            ones = neighbour_labels.sum(axis=1)
            zeros = knn.shape[1] - ones
            expected = np.where(zeros >= ones, 0, 1)
            np.testing.assert_array_equal(predictions, expected)


class TestImplementationEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_all_three_agree(self, rng, k):
        knn = _random_knn(rng, m=120, k=k)
        results = {
            name: implementation(knn, exclusion=10)
            for name, implementation in CROSS_VAL_IMPLEMENTATIONS.items()
        }
        reference = results["naive"]
        for name, result in results.items():
            np.testing.assert_array_equal(result.splits, reference.splits, err_msg=name)
            np.testing.assert_allclose(result.scores, reference.scores, atol=1e-9, err_msg=name)
            np.testing.assert_allclose(result.n00, reference.n00, err_msg=name)
            np.testing.assert_allclose(result.n11, reference.n11, err_msg=name)

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        m=st.integers(min_value=12, max_value=150),
        k=st.integers(min_value=1, max_value=4),
        exclusion=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_vectorised_equals_incremental(self, seed, m, k, exclusion):
        rng = np.random.default_rng(seed)
        knn = rng.integers(-5, m, size=(m, k))
        vectorised = cross_val_scores_vectorised(knn, exclusion=exclusion)
        incremental = cross_val_scores_incremental(knn, exclusion=exclusion)
        np.testing.assert_array_equal(vectorised.splits, incremental.splits)
        np.testing.assert_allclose(vectorised.scores, incremental.scores, atol=1e-9)

    def test_accuracy_score_variant_agrees(self, rng):
        knn = _random_knn(rng, m=90)
        a = cross_val_scores_vectorised(knn, exclusion=8, score="accuracy")
        b = cross_val_scores_naive(knn, exclusion=8, score="accuracy")
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-9)


class TestScoresAreMeaningful:
    def test_perfectly_separable_neighbourhood_scores_one(self):
        # Neighbours always point within the same half -> a split at the
        # boundary yields perfect classification.
        m = 60
        half = m // 2
        knn = np.empty((m, 3), dtype=np.int64)
        for i in range(m):
            if i < half:
                candidates = [j for j in (i - 2, i - 1, i + 1) if 0 <= j < half]
                while len(candidates) < 3:
                    candidates.append(max(i - 3, 0))
            else:
                candidates = [j for j in (i - 2, i - 1, i + 1) if half <= j < m]
                while len(candidates) < 3:
                    candidates.append(min(i + 3, m - 1))
            knn[i] = candidates[:3]
        result = cross_val_scores_vectorised(knn, exclusion=5)
        best_split, best_score = result.best_split()
        assert best_split == half
        assert best_score == pytest.approx(1.0)

    def test_scores_against_explicit_confusion(self, rng):
        knn = _random_knn(rng, m=70)
        result = cross_val_scores_vectorised(knn, exclusion=6)
        offsets = np.arange(knn.shape[0])
        for position in range(0, result.splits.shape[0], 11):
            split = int(result.splits[position])
            y_true = (offsets >= split).astype(int)
            y_pred = predictions_for_split(knn, split)
            n00, n01, n10, n11 = confusion_from_labels(y_true, y_pred)
            expected = macro_f1_score(n00, n01, n10, n11)
            assert result.scores[position] == pytest.approx(float(expected), abs=1e-9)

    def test_scores_bounded_in_unit_interval(self, rng):
        knn = _random_knn(rng, m=100)
        result = cross_val_scores_vectorised(knn, exclusion=5)
        assert np.all(result.scores >= 0.0) and np.all(result.scores <= 1.0)
