"""Tests for the multivariate ClaSS ensemble (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.core.multivariate import MultivariateClaSS
from repro.utils.exceptions import ConfigurationError


def _multichannel_stream(rng, n_per_segment=1_200, lag=0):
    """Three channels that all change state at the same time point (channel 2 is noise)."""
    t = np.arange(n_per_segment)
    channel_a = np.concatenate([np.sin(2 * np.pi * t / 25), np.sign(np.sin(2 * np.pi * t / 70))])
    channel_b = np.concatenate([np.sin(2 * np.pi * t / 40), np.sin(2 * np.pi * t / 12)])
    if lag:
        channel_b = np.roll(channel_b, lag)
    channel_c = rng.normal(0, 1, 2 * n_per_segment)
    values = np.stack([channel_a, channel_b, channel_c], axis=1)
    values[:, :2] += rng.normal(0, 0.05, (2 * n_per_segment, 2))
    return values, n_per_segment


class TestConstruction:
    def test_rejects_bad_channel_count(self):
        with pytest.raises(ConfigurationError):
            MultivariateClaSS(n_channels=0)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ConfigurationError):
            MultivariateClaSS(n_channels=3, channel_weights=[1.0, 1.0])

    def test_rejects_unsatisfiable_vote_threshold(self):
        with pytest.raises(ConfigurationError):
            MultivariateClaSS(n_channels=2, min_votes=5)

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            MultivariateClaSS(n_channels=2, channel_weights=[1.0, -1.0])

    def test_rejects_wrong_observation_width(self):
        ensemble = MultivariateClaSS(n_channels=2, window_size=500, subsequence_width=20)
        with pytest.raises(ConfigurationError):
            ensemble.update([1.0, 2.0, 3.0])

    def test_rejects_wrong_matrix_shape(self, rng):
        ensemble = MultivariateClaSS(n_channels=2, window_size=500, subsequence_width=20)
        with pytest.raises(ConfigurationError):
            ensemble.process(rng.normal(size=(100, 3)))


class TestFusion:
    def test_detects_joint_change_with_two_votes(self, rng):
        values, true_cp = _multichannel_stream(rng)
        ensemble = MultivariateClaSS(
            n_channels=3,
            min_votes=2,
            fusion_tolerance=400,
            window_size=1_200,
            subsequence_width=25,
            scoring_interval=25,
        )
        detected = ensemble.process(values)
        assert detected.shape[0] >= 1
        assert any(abs(cp - true_cp) < 300 for cp in detected)
        fused = ensemble.fused_reports[0]
        assert fused.n_votes >= 2
        assert set(fused.supporting_channels) <= {0, 1, 2}

    def test_noise_only_channels_produce_nothing(self, rng):
        values = rng.normal(0, 1, (2_000, 2))
        ensemble = MultivariateClaSS(
            n_channels=2, min_votes=1, window_size=800, subsequence_width=20, scoring_interval=40
        )
        assert ensemble.process(values).shape[0] == 0

    def test_union_mode_with_single_vote(self, rng):
        values, true_cp = _multichannel_stream(rng)
        ensemble = MultivariateClaSS(
            n_channels=3,
            min_votes=1,
            window_size=1_200,
            subsequence_width=25,
            scoring_interval=25,
        )
        detected = ensemble.process(values)
        assert any(abs(cp - true_cp) < 300 for cp in detected)

    def test_dimension_selection_ignores_disabled_channel(self, rng):
        values, true_cp = _multichannel_stream(rng)
        # only the pure-noise channel is active: nothing may be reported
        ensemble = MultivariateClaSS(
            n_channels=3,
            min_votes=1,
            channel_weights=[0.0, 0.0, 1.0],
            window_size=1_200,
            subsequence_width=25,
            scoring_interval=25,
        )
        assert ensemble.process(values).shape[0] == 0

    def test_channel_change_points_exposed(self, rng):
        values, _ = _multichannel_stream(rng)
        ensemble = MultivariateClaSS(
            n_channels=3, min_votes=2, window_size=1_200, subsequence_width=25, scoring_interval=25
        )
        ensemble.process(values)
        per_channel = ensemble.channel_change_points
        assert len(per_channel) == 3
        assert all(isinstance(cps, np.ndarray) for cps in per_channel)

    def test_fused_change_points_strictly_increasing(self, rng):
        t = np.arange(900)
        channel = np.concatenate(
            [
                np.sin(2 * np.pi * t / 25),
                np.sign(np.sin(2 * np.pi * t / 60)),
                np.sin(2 * np.pi * t / 12),
            ]
        )
        values = np.stack([channel, channel], axis=1) + rng.normal(0, 0.05, (2_700, 2))
        ensemble = MultivariateClaSS(
            n_channels=2, min_votes=2, window_size=1_000, subsequence_width=25, scoring_interval=25
        )
        detected = ensemble.process(values)
        assert np.all(np.diff(detected) > 0)

    def test_n_seen_counts_observations(self, rng):
        values = rng.normal(0, 1, (500, 2))
        ensemble = MultivariateClaSS(
            n_channels=2, min_votes=1, window_size=400, subsequence_width=20, scoring_interval=50
        )
        ensemble.process(values)
        assert ensemble.n_seen == 500
