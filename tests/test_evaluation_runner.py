"""Integration tests for the streaming evaluation runner and ablation harness."""

import numpy as np
import pytest

from repro.datasets import SegmentSpec, compose_stream, make_tssb_like
from repro.evaluation.ablation import (
    PAPER_ABLATION_GRID,
    ablation_rows,
    ablation_sample,
    run_ablation,
)
from repro.evaluation.runner import (
    ClaSSFactory,
    class_factory,
    default_method_factories,
    run_experiment,
    run_method_on_dataset,
    stream_dataset,
)
from repro.evaluation.throughput import measure_throughput, measure_update_scaling
from repro.evaluation.reporting import (
    format_markdown_table,
    format_ranking,
    format_summary,
    format_table,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def tiny_suite():
    return make_tssb_like(n_series=3, length_scale=0.25, seed=1717)


class TestRunner:
    def test_stream_dataset_collects_change_points(self, small_dataset):
        factory = ClaSSFactory(window_size=1_000, scoring_interval=30)
        segmenter = factory(small_dataset)
        cps, detection_times, elapsed = stream_dataset(segmenter, small_dataset)
        assert elapsed > 0
        assert cps.shape == detection_times.shape

    def test_factory_exposes_its_dataset_config(self, small_dataset):
        factory = ClaSSFactory(window_size=1_000, scoring_interval=30)
        config = factory.config_for(small_dataset)
        assert config.window_size <= 1_000
        assert config.scoring_interval == 30

    def test_run_method_on_dataset_record_fields(self, small_dataset):
        record = run_method_on_dataset(
            "ClaSS", ClaSSFactory(window_size=1_000, scoring_interval=30), small_dataset
        )
        assert record.method == "ClaSS"
        assert 0.0 <= record.covering <= 1.0
        assert record.n_timepoints == small_dataset.n_timepoints
        assert record.throughput > 0
        row = record.as_row()
        assert set(row) >= {"method", "dataset", "covering", "runtime_s"}

    def test_class_beats_trivial_baseline_on_clear_stream(self, small_dataset):
        record = run_method_on_dataset(
            "ClaSS", ClaSSFactory(window_size=1_000, scoring_interval=20), small_dataset
        )
        # the empty segmentation of this 3-segment stream scores ~0.33
        assert record.covering > 0.6

    @pytest.mark.legacy_api
    def test_class_factory_is_deprecated_but_equivalent(self, small_dataset):
        with pytest.warns(DeprecationWarning, match="class_factory is deprecated"):
            legacy = class_factory(window_size=1_000, scoring_interval=30)
        assert legacy == ClaSSFactory(window_size=1_000, scoring_interval=30)
        assert legacy.config_for(small_dataset).scoring_interval == 30

    def test_run_experiment_matrix_and_summaries(self, tiny_suite):
        methods = default_method_factories(
            window_size=1_000,
            scoring_interval=30,
            floss_stride=30,
            include=["ClaSS", "Window", "DDM"],
        )
        result = run_experiment(methods, tiny_suite)
        matrix, datasets, method_names = result.score_matrix()
        assert matrix.shape == (len(tiny_suite), 3)
        assert not np.isnan(matrix).any()
        summary = result.summary_by_method()
        assert set(summary) == {"ClaSS", "Window", "DDM"}
        assert result.total_runtime_by_method()["ClaSS"] > 0
        assert result.mean_throughput_by_method()["DDM"] > 0

    def test_filter_by_collection_and_method(self, tiny_suite):
        methods = default_method_factories(include=["DDM"], window_size=500)
        result = run_experiment(methods, tiny_suite)
        filtered = result.filter(collection="TSSB-like", method="DDM")
        assert len(filtered.records) == len(tiny_suite)
        assert result.filter(collection="nonexistent").records == []

    def test_empty_methods_rejected(self, tiny_suite):
        with pytest.raises(ConfigurationError):
            run_experiment({}, tiny_suite)

    def test_default_factories_cover_paper_methods(self):
        methods = default_method_factories()
        assert set(methods) == {
            "ClaSS", "FLOSS", "Window", "BOCD", "ChangeFinder", "NEWMA", "ADWIN", "DDM", "HDDM",
        }


class TestThroughputHelpers:
    def test_measure_throughput_reports_rates(self, small_dataset):
        from repro.competitors import get_competitor

        report = measure_throughput(get_competitor("DDM"), small_dataset.values, "DDM")
        assert report.n_points == small_dataset.n_timepoints
        assert report.mean_points_per_second > 0
        assert report.peak_points_per_second >= report.mean_points_per_second * 0.5
        assert "points_per_s" in report.as_row()

    def test_measure_update_scaling(self, rng):
        from repro.core.streaming_knn import StreamingKNN

        values = rng.normal(size=3_000)
        latencies = measure_update_scaling(
            lambda d: StreamingKNN(window_size=d, subsequence_width=20),
            window_sizes=[200, 800],
            values=values,
            warmup=100,
            measured_updates=100,
        )
        assert set(latencies) == {200, 800}
        assert all(v > 0 for v in latencies.values())


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}], title="demo")
        assert "demo" in text and "a" in text and "20" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_markdown_table(self):
        text = format_markdown_table([{"x": 1.23456}])
        assert text.startswith("| x |")
        assert "1.235" in text

    def test_format_ranking_and_summary(self):
        text = format_ranking([("ClaSS", 1.4), ("FLOSS", 3.2)], 0.8)
        assert "ClaSS" in text and "1.40" in text
        summary = format_summary({"ClaSS": {"mean": 0.8, "median": 0.85, "std": 0.1, "n": 5}})
        assert "80.0" in summary


class TestAblation:
    def test_paper_grid_has_all_seven_groups(self):
        assert set(PAPER_ABLATION_GRID) == {
            "window_size", "wss_method", "similarity", "k_neighbours",
            "score", "significance_level", "sample_size",
        }

    def test_ablation_sample_size(self, tiny_suite):
        sample = ablation_sample(tiny_suite, fraction=0.5)
        assert len(sample) == 2

    def test_run_ablation_over_k(self):
        specs = [
            SegmentSpec("sine", 600, {"period": 25, "noise": 0.05}),
            SegmentSpec("square", 600, {"period": 60, "noise": 0.05}),
        ]
        data = [compose_stream(specs, name=f"abl_{i}", seed=i) for i in range(2)]
        entries = run_ablation(
            "k_neighbours", [1, 3], data, window_size=600, scoring_interval=40
        )
        assert len(entries) == 2
        assert all(0.0 <= e.mean_covering <= 1.0 for e in entries)
        rows = ablation_rows(entries)
        assert rows[0]["parameter"] == "k_neighbours"
