"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.loaders import save_dataset_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "TSSB" in output and "WESAD" in output


class TestSegment:
    def test_demo_segmentation(self, capsys):
        assert main(["segment", "--demo", "--window-size", "1500", "--scoring-interval", "25"]) == 0
        output = capsys.readouterr().out
        assert "change points" in output
        assert "covering vs annotation" in output

    def test_segment_csv_file(self, tmp_path, small_dataset, capsys):
        path = save_dataset_csv(small_dataset, tmp_path / "stream.csv")
        assert main(["segment", str(path), "--window-size", "1000", "--scoring-interval", "30"]) == 0
        output = capsys.readouterr().out
        assert "loaded" in output

    def test_segment_plain_text_file(self, tmp_path, capsys, rng):
        values = np.concatenate(
            [np.sin(2 * np.pi * np.arange(600) / 20), np.sign(np.sin(2 * np.pi * np.arange(600) / 60))]
        ) + rng.normal(0, 0.05, 1_200)
        path = tmp_path / "values.txt"
        np.savetxt(path, values)
        assert main(["segment", str(path), "--window-size", "600", "--scoring-interval", "30"]) == 0
        assert "change points" in capsys.readouterr().out


class TestEvaluate:
    def test_evaluate_small_suite(self, capsys):
        exit_code = main([
            "evaluate", "--collection", "TSSB", "--n-series", "2",
            "--length-scale", "0.2", "--window-size", "1000",
            "--scoring-interval", "40", "--methods", "ClaSS,DDM,HDDM", "--quiet",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "summary of covering" in output
        assert "mean rank" in output

    def test_evaluate_with_workers(self, capsys):
        exit_code = main([
            "evaluate", "--collection", "TSSB", "--n-series", "2",
            "--length-scale", "0.15", "--window-size", "500",
            "--scoring-interval", "40", "--methods", "ClaSS,DDM", "--workers", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "parallel grid" in output
        assert "summary of covering" in output

    def test_evaluate_rejects_non_positive_workers(self, capsys):
        exit_code = main([
            "evaluate", "--collection", "TSSB", "--n-series", "2",
            "--methods", "DDM", "--workers", "0",
        ])
        assert exit_code == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err
