"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.loaders import save_dataset_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "TSSB" in output and "WESAD" in output


class TestSegment:
    def test_demo_segmentation(self, capsys):
        assert main(["segment", "--demo", "--window-size", "1500", "--scoring-interval", "25"]) == 0
        output = capsys.readouterr().out
        assert "change points" in output
        assert "covering vs annotation" in output

    def test_segment_csv_file(self, tmp_path, small_dataset, capsys):
        path = save_dataset_csv(small_dataset, tmp_path / "stream.csv")
        assert (
            main(["segment", str(path), "--window-size", "1000", "--scoring-interval", "30"]) == 0
        )
        output = capsys.readouterr().out
        assert "loaded" in output

    def test_segment_plain_text_file(self, tmp_path, capsys, rng):
        values = np.concatenate(
            [
                np.sin(2 * np.pi * np.arange(600) / 20),
                np.sign(np.sin(2 * np.pi * np.arange(600) / 60)),
            ]
        ) + rng.normal(0, 0.05, 1_200)
        path = tmp_path / "values.txt"
        np.savetxt(path, values)
        assert main(["segment", str(path), "--window-size", "600", "--scoring-interval", "30"]) == 0
        assert "change points" in capsys.readouterr().out


class TestSegmentOutputAndCheckpoints:
    def _two_phase_stream(self, rng):
        values = np.concatenate(
            [np.sin(2 * np.pi * np.arange(700) / 20),
             np.sign(np.sin(2 * np.pi * np.arange(700) / 55))]
        ) + rng.normal(0, 0.05, 1_400)
        return values

    def test_json_output_emits_event_lines_and_summary(self, capsys):
        assert main([
            "segment", "--demo", "--window-size", "1500",
            "--scoring-interval", "25", "--output", "json",
        ]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "warmup"
        assert "change_point" in kinds
        assert kinds[-1] == "summary"
        assert lines[-1]["change_points"]
        assert "covering" in lines[-1]
        # progress chatter goes to stderr, stdout stays machine-readable
        assert "demo stream" in captured.err

    def test_checkpoint_resume_matches_uninterrupted_run(self, tmp_path, capsys, rng):
        values = self._two_phase_stream(rng)
        full, part1, part2 = tmp_path / "full.txt", tmp_path / "p1.txt", tmp_path / "p2.txt"
        np.savetxt(full, values)
        np.savetxt(part1, values[:800])
        np.savetxt(part2, values[800:])
        flags = ["--window-size", "600", "--scoring-interval", "20"]

        assert main(["segment", str(full), *flags]) == 0
        uninterrupted = capsys.readouterr().out

        ckpt = tmp_path / "state.ckpt"
        assert main(["segment", str(part1), *flags, "--checkpoint", str(ckpt)]) == 0
        first = capsys.readouterr().out
        assert f"checkpoint written to {ckpt}" in first
        assert ckpt.exists()

        assert main(["segment", str(part2), "--resume", str(ckpt)]) == 0
        second = capsys.readouterr().out
        assert "resumed from" in second

        def final_change_points(out):
            return [line for line in out.splitlines() if line.startswith("change points:")][-1]

        assert final_change_points(second) == final_change_points(uninterrupted)

    def test_resume_from_missing_checkpoint_fails_cleanly(self, tmp_path, capsys):
        exit_code = main([
            "segment", "--demo", "--resume", str(tmp_path / "missing.ckpt"),
        ])
        assert exit_code == 2
        assert "cannot resume" in capsys.readouterr().err


class TestEvaluate:
    def test_evaluate_small_suite(self, capsys):
        exit_code = main([
            "evaluate", "--collection", "TSSB", "--n-series", "2",
            "--length-scale", "0.2", "--window-size", "1000",
            "--scoring-interval", "40", "--methods", "ClaSS,DDM,HDDM", "--quiet",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "summary of covering" in output
        assert "mean rank" in output

    def test_evaluate_with_workers(self, capsys):
        exit_code = main([
            "evaluate", "--collection", "TSSB", "--n-series", "2",
            "--length-scale", "0.15", "--window-size", "500",
            "--scoring-interval", "40", "--methods", "ClaSS,DDM", "--workers", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "parallel grid" in output
        assert "summary of covering" in output

    def test_evaluate_rejects_non_positive_workers(self, capsys):
        exit_code = main([
            "evaluate", "--collection", "TSSB", "--n-series", "2",
            "--methods", "DDM", "--workers", "0",
        ])
        assert exit_code == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err
