"""Unit tests for the competitor base interface and threshold detector."""

import numpy as np
import pytest

from repro.competitors.base import ScoreThresholdDetector, StreamSegmenter
from repro.utils.exceptions import ConfigurationError


class _StubSegmenter(StreamSegmenter):
    """Reports a change point at every multiple of 100 observations."""

    name = "stub"

    def _update(self, value: float) -> int | None:
        if self._n_seen % 100 == 0:
            return self._n_seen - 10
        return None


class TestStreamSegmenter:
    def test_update_counts_and_collects(self):
        segmenter = _StubSegmenter()
        segmenter.process(np.zeros(350))
        assert segmenter.n_seen == 350
        assert segmenter.change_points.tolist() == [90, 190, 290]
        assert segmenter.detection_times.tolist() == [100, 200, 300]

    def test_non_monotone_reports_are_dropped(self):
        class Backwards(StreamSegmenter):
            name = "backwards"

            def _update(self, value):
                # keeps reporting the same past location over and over
                return 50 if self._n_seen >= 60 else None

        segmenter = Backwards()
        segmenter.process(np.zeros(200))
        assert segmenter.change_points.tolist() == [50]

    def test_future_reports_are_clamped(self):
        class Future(StreamSegmenter):
            name = "future"

            def _update(self, value):
                return self._n_seen + 1_000 if self._n_seen == 10 else None

        segmenter = Future()
        segmenter.process(np.zeros(20))
        assert segmenter.change_points.tolist() == [9]

    def test_segments_property(self):
        segmenter = _StubSegmenter()
        segmenter.process(np.zeros(250))
        assert segmenter.segments == [(0, 90), (90, 190)]

    def test_reset(self):
        segmenter = _StubSegmenter()
        segmenter.process(np.zeros(150))
        segmenter.reset()
        assert segmenter.n_seen == 0
        assert segmenter.change_points.shape[0] == 0


class TestScoreThresholdDetector:
    def test_triggers_above_threshold(self):
        detector = ScoreThresholdDetector(threshold=0.5, exclusion_zone=10)
        assert not detector.check(0.4, 1)
        assert detector.check(0.6, 2)

    def test_exclusion_zone_suppresses_bursts(self):
        detector = ScoreThresholdDetector(threshold=0.5, exclusion_zone=50)
        assert detector.check(0.9, 100)
        assert not detector.check(0.9, 120)
        assert detector.check(0.9, 151)

    def test_lower_is_change_orientation(self):
        detector = ScoreThresholdDetector(threshold=0.3, exclusion_zone=0, higher_is_change=False)
        assert detector.check(0.2, 1)
        assert not detector.check(0.4, 2)

    def test_negative_exclusion_rejected(self):
        with pytest.raises(ConfigurationError):
            ScoreThresholdDetector(threshold=0.5, exclusion_zone=-1)

    def test_reset_clears_last_report(self):
        detector = ScoreThresholdDetector(threshold=0.5, exclusion_zone=100)
        assert detector.check(0.9, 10)
        detector.reset()
        assert detector.check(0.9, 20)
