"""Unit and integration tests for the FLOSS competitor."""

import numpy as np
import pytest

from repro.competitors.floss import FLOSS, corrected_arc_curve


class TestCorrectedArcCurve:
    def test_all_local_neighbours_give_flat_curve(self):
        # every subsequence points to its immediate neighbour: arcs never span
        # far, so no position is crossed by many arcs and the CAC dips are mild
        nn = np.array([1, 0, 3, 2, 5, 4, 7, 6, 9, 8] * 10)
        cac = corrected_arc_curve(nn, exclusion=2)
        assert cac.shape == nn.shape
        assert np.all(cac >= 0.0) and np.all(cac <= 1.0)

    def test_two_isolated_halves_dip_at_boundary(self):
        # arcs stay within each half -> the boundary is crossed by no arc
        m = 200
        nn = np.empty(m, dtype=np.int64)
        for i in range(m):
            if i < m // 2:
                nn[i] = (i + 7) % (m // 2)
            else:
                nn[i] = m // 2 + ((i - m // 2 + 7) % (m // 2))
        cac = corrected_arc_curve(nn, exclusion=5)
        interior = cac[10:-10]
        assert int(np.argmin(interior)) + 10 == pytest.approx(m // 2, abs=3)
        assert cac[m // 2] < 0.1

    def test_negative_neighbours_ignored(self):
        nn = np.array([-1, -1, 1, 2, 3, 4, 5, 6, 7, 8])
        cac = corrected_arc_curve(nn, exclusion=1)
        assert np.isfinite(cac).all()

    def test_tiny_input(self):
        assert corrected_arc_curve(np.array([1, 0])).tolist() == [1.0, 1.0]


class TestFLOSS:
    def test_detects_shape_change(self, sine_square_stream):
        values, true_cp = sine_square_stream
        floss = FLOSS(window_size=1_500, subsequence_width=25, stride=10)
        detected = floss.process(values)
        assert detected.shape[0] >= 1
        assert any(abs(cp - true_cp) < 200 for cp in detected)

    def test_fewer_detections_on_stationary_than_on_changing_signal(self, rng, sine_square_stream):
        stationary = np.sin(2 * np.pi * np.arange(2_500) / 40) + rng.normal(0, 0.05, 2_500)
        floss_stationary = FLOSS(window_size=1_200, subsequence_width=40, stride=10)
        n_stationary = floss_stationary.process(stationary).shape[0]
        # FLOSS's greedy thresholding produces some false positives (the paper
        # notes its noisy arc curve); it must still fire far less often than
        # one detection per 500 observations on a homogeneous signal
        assert n_stationary <= 5

    def test_exclusion_zone_prevents_bursts(self, sine_square_stream):
        values, _ = sine_square_stream
        floss = FLOSS(window_size=1_500, subsequence_width=25, stride=5, exclusion_zone=300)
        detected = floss.process(values)
        assert np.all(np.diff(detected) >= 300) or detected.shape[0] <= 1

    def test_exposes_last_curve(self, sine_square_stream):
        values, _ = sine_square_stream
        floss = FLOSS(window_size=1_200, subsequence_width=25, stride=20)
        floss.process(values[:2_000])
        assert floss.last_curve is not None
        assert np.all(floss.last_curve <= 1.0)
