"""The documentation site builds clean and covers the full public surface.

Builds the real site into a tmp directory through ``docs/build.py`` (loaded
by file path — ``docs/`` is not a package) and asserts the acceptance
criteria of the docs tentpole: a strict (warnings-as-errors) build, every
registry key documented on the reference page, every service endpoint
listed, and no broken internal links.
"""

from __future__ import annotations

import html
import importlib.util
from pathlib import Path

import pytest

from repro import api

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(script: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


build = _load(REPO_ROOT / "docs" / "build.py", "docs_build")
links = _load(REPO_ROOT / "scripts" / "check_doc_links.py", "docs_links")


@pytest.fixture(scope="module")
def site(tmp_path_factory) -> Path:
    """The site built once into a tmp directory (strict mode is the default)."""
    out = tmp_path_factory.mktemp("site")
    written = build.build_site(out)
    assert len(written) == len(build.PAGES) + 1  # pages + style.css
    return out


def test_every_page_is_built(site: Path) -> None:
    for slug, _title in build.PAGES:
        page = site / f"{slug}.html"
        assert page.exists(), f"missing page {slug}.html"
        assert "<main>" in page.read_text()


def test_reference_covers_every_registry_key(site: Path) -> None:
    # headings are HTML-escaped, so match the escaped form of registry['key']
    reference = site / "reference.html"
    text = reference.read_text()
    for key in api.available():
        heading = html.escape(f"registry[{key!r}]", quote=True)
        assert heading in text, f"registry key {key!r} missing from reference page"


def test_reference_covers_every_service_endpoint(site: Path) -> None:
    from repro.service.routes import ServiceRoutes
    from repro.service.streams import StreamRegistry
    from repro.service.workers import WorkerPool

    text = (site / "reference.html").read_text()
    routes = ServiceRoutes(StreamRegistry(n_shards=1), WorkerPool(n_shards=1))
    assert routes.router._routes, "service route table is empty"
    for _method, regex, _handler in routes.router._routes:
        pattern = regex.pattern.strip("^$").replace("(?P<name>[^/]+)", "{name}")
        assert html.escape(pattern) in text, f"endpoint {pattern} missing from reference page"
    assert "/streams/{name}/ws" in text  # the upgrade path is documented too


def test_reference_covers_api_functions_and_events(site: Path) -> None:
    text = (site / "reference.html").read_text()
    for name in ("create", "stream", "restore", "save_checkpoint", "ScoreEvent"):
        assert f"repro.api.{name}" in text


def test_service_page_documents_every_error_code(site: Path) -> None:
    # collect every code the service can actually emit: ServiceError(...)
    # call sites plus inline {"code": ...} bodies in the server
    import re

    patterns = (
        re.compile(r'ServiceError\(\s*\d+,\s*"([a-z-]+)"'),
        re.compile(r'"code":\s*"([a-z-]+)"'),
    )
    codes: set[str] = set()
    for source in (REPO_ROOT / "src" / "repro" / "service").glob("*.py"):
        text = source.read_text()
        for pattern in patterns:
            codes.update(pattern.findall(text))
    assert len(codes) >= 16, f"expected the full error model, found {sorted(codes)}"
    page = (site / "service.html").read_text()
    for code in sorted(codes):
        assert code in page, f"error code {code!r} missing from service page"


def test_build_is_strict_about_malformed_rst(tmp_path: Path) -> None:
    # any RST warning (here: an unknown target) must fail the build
    with pytest.raises(SystemExit, match="docs build failed"):
        build.rst_to_html("see `nowhere`_", source="synthetic fragment")


def test_built_site_has_no_broken_links(site: Path) -> None:
    assert links.check_site(site) == []


def test_readme_links_resolve() -> None:
    assert links.check_markdown(REPO_ROOT / "README.md") == []
