"""Tests of the public-API docstring gate (``scripts/check_docstrings.py``).

The decisive test is the last one: the real ``repro.api`` surface must pass
the gate, which is what CI enforces next to the api-surface check.
"""

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_docstrings", Path(__file__).parent.parent / "scripts" / "check_docstrings.py"
)
check_docstrings = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docstrings)


def _documented(value: float, name: str = "x") -> float:
    """Scale a value for the unit tests below.

    Parameters
    ----------
    value:
        The number to scale.
    name:
        Label used in error messages.

    Returns the scaled value; raises ValueError when negative.

    Example
    -------
    >>> _documented(2.0)
    4.0
    """
    if value < 0:
        raise ValueError(name)
    return value * 2


def _undocumented(value):
    """Docstring long enough to pass the length bar, but nothing else."""
    if value < 0:
        raise ValueError("nope")
    return value


class TestCheckSymbol:
    def test_complete_function_passes(self):
        assert check_docstrings.check_symbol("t._documented", _documented) == []

    def test_missing_pieces_are_each_reported(self):
        problems = "\n".join(check_docstrings.check_symbol("t._undocumented", _undocumented))
        assert "parameter 'value'" in problems
        assert "return value" in problems
        assert "raised exceptions" in problems
        assert "no Example" in problems

    def test_missing_docstring_is_one_problem(self):
        def bare(x):
            return x

        problems = check_docstrings.check_symbol("t.bare", bare)
        assert problems == ["t.bare: missing (or trivial) docstring"]

    def test_class_params_come_from_init(self):
        class Widget:
            """A widget used by the docstring-gate tests.

            ``size`` is the widget size.

            Example
            -------
            >>> Widget(3)  # doctest: +ELLIPSIS
            <...Widget object at ...>
            """

            def __init__(self, size):
                self.size = size

        assert check_docstrings.check_symbol("t.Widget", Widget) == []


class TestPublicSurface:
    def test_repro_api_passes_the_gate(self):
        problems = check_docstrings.check_api()
        assert problems == [], "\n".join(problems)

    def test_gate_audits_every_registry_key(self):
        import repro.api as api

        # the gate iterates the live registry, so every one of the 13 keys
        # (plus future registrations) is covered automatically
        assert len(api.available()) >= 13
