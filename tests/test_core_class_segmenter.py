"""Integration tests for the ClaSS streaming segmenter (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.class_segmenter import ChangePointReport, ClaSS
from repro.utils.exceptions import ConfigurationError, ValidationError


class TestConstruction:
    def test_rejects_width_larger_than_quarter_window(self):
        with pytest.raises(ConfigurationError):
            ClaSS(window_size=100, subsequence_width=40)

    def test_rejects_bad_cross_val(self):
        with pytest.raises(ConfigurationError):
            ClaSS(cross_val_implementation="bogus")

    def test_rejects_bad_score_threshold(self):
        with pytest.raises(ConfigurationError):
            ClaSS(score_threshold=1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            ClaSS(window_size=5)


class TestDetection:
    def test_detects_shape_change(self, sine_square_stream):
        values, true_cp = sine_square_stream
        segmenter = ClaSS(
            window_size=1_500, subsequence_width=25, scoring_interval=25
        )
        detected = segmenter.process(values)
        assert detected.shape[0] >= 1
        assert any(abs(cp - true_cp) < 150 for cp in detected)

    def test_detects_frequency_change(self, frequency_shift_stream):
        values, true_cp = frequency_shift_stream
        segmenter = ClaSS(window_size=1_200, subsequence_width=20, scoring_interval=25)
        detected = segmenter.process(values)
        assert any(abs(cp - true_cp) < 150 for cp in detected)

    def test_no_false_positives_on_stationary_noise(self, stationary_noise):
        segmenter = ClaSS(window_size=1_200, subsequence_width=25, scoring_interval=25)
        assert segmenter.process(stationary_noise).shape[0] == 0

    def test_no_false_positives_on_pure_periodic_signal(self, rng):
        values = np.sin(2 * np.pi * np.arange(3_000) / 40) + rng.normal(0, 0.05, 3_000)
        segmenter = ClaSS(window_size=1_500, subsequence_width=40, scoring_interval=25)
        assert segmenter.process(values).shape[0] == 0

    def test_learns_width_automatically(self, sine_square_stream):
        values, true_cp = sine_square_stream
        segmenter = ClaSS(window_size=1_400, scoring_interval=25)
        detected = segmenter.process(values)
        assert segmenter.subsequence_width_ is not None
        assert segmenter.subsequence_width_ >= 10
        assert any(abs(cp - true_cp) < 200 for cp in detected)

    def test_multiple_change_points(self, rng):
        t = np.arange(1_200)
        values = np.concatenate(
            [
                np.sin(2 * np.pi * t / 30),
                2.0 * np.sign(np.sin(2 * np.pi * t / 75)),
                np.sin(2 * np.pi * t / 14),
            ]
        ) + rng.normal(0, 0.08, 3_600)
        segmenter = ClaSS(window_size=1_500, subsequence_width=30, scoring_interval=30)
        detected = segmenter.process(values)
        assert detected.shape[0] >= 2
        assert any(abs(cp - 1_200) < 200 for cp in detected)
        assert any(abs(cp - 2_400) < 200 for cp in detected)

    def test_detection_is_causal_and_low_latency(self, sine_square_stream):
        values, true_cp = sine_square_stream
        segmenter = ClaSS(window_size=1_500, subsequence_width=25, scoring_interval=10)
        segmenter.process(values)
        assert len(segmenter.reports) >= 1
        report = segmenter.reports[0]
        assert isinstance(report, ChangePointReport)
        assert report.detected_at > report.change_point
        # detected within a fraction of the second segment (Figure 1 behaviour)
        assert report.detection_delay < 800


class TestBehaviour:
    def test_change_points_strictly_increasing(self, rng):
        t = np.arange(900)
        values = np.concatenate(
            [np.sin(2 * np.pi * t / 25), np.sign(np.sin(2 * np.pi * t / 70)),
             np.sin(2 * np.pi * t / 12)]
        ) + rng.normal(0, 0.1, 2_700)
        segmenter = ClaSS(window_size=1_200, subsequence_width=25, scoring_interval=25)
        detected = segmenter.process(values)
        assert np.all(np.diff(detected) > 0)

    def test_segments_property(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = ClaSS(window_size=1_500, subsequence_width=25, scoring_interval=25)
        segmenter.process(values)
        segments = segmenter.segments
        assert segments[0][0] == 0
        for (start_a, end_a), (start_b, _) in zip(segments, segments[1:]):
            assert end_a == start_b

    def test_scoring_interval_reduces_work_but_keeps_detection(self, sine_square_stream):
        values, true_cp = sine_square_stream
        fine = ClaSS(window_size=1_500, subsequence_width=25, scoring_interval=5)
        coarse = ClaSS(window_size=1_500, subsequence_width=25, scoring_interval=100)
        fine_cps = fine.process(values)
        coarse_cps = coarse.process(values)
        assert any(abs(cp - true_cp) < 150 for cp in fine_cps)
        assert any(abs(cp - true_cp) < 200 for cp in coarse_cps)

    def test_incremental_cross_val_gives_same_change_points(self, sine_square_stream):
        values, _ = sine_square_stream
        vectorised = ClaSS(
            window_size=1_200, subsequence_width=25, scoring_interval=50,
            cross_val_implementation="vectorised",
        )
        incremental = ClaSS(
            window_size=1_200, subsequence_width=25, scoring_interval=50,
            cross_val_implementation="incremental",
        )
        np.testing.assert_array_equal(vectorised.process(values), incremental.process(values))

    def test_last_profile_exposed(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = ClaSS(window_size=1_200, subsequence_width=25, scoring_interval=25)
        segmenter.process(values[:2_000])
        profile = segmenter.last_profile
        assert profile is not None
        assert profile.subsequence_width == 25
        dense = profile.dense()
        assert np.nanmax(dense) <= 1.0

    def test_score_now_forces_profile(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = ClaSS(window_size=1_200, subsequence_width=25, scoring_interval=10_000)
        segmenter.process(values[:1_000])
        assert segmenter.score_now() is not None

    def test_finalise_on_short_stream_without_width(self, rng):
        values = np.concatenate(
            [
                np.sin(2 * np.pi * np.arange(400) / 20),
                np.sign(np.sin(2 * np.pi * np.arange(400) / 50)),
            ]
        ) + rng.normal(0, 0.05, 800)
        segmenter = ClaSS(window_size=5_000, scoring_interval=20)
        segmenter.process(values)
        # stream shorter than the window: warm-up never finished, finalise learns w
        detected = segmenter.finalise()
        assert isinstance(detected, np.ndarray)

    def test_relearn_width_mode_runs(self, sine_square_stream):
        values, true_cp = sine_square_stream
        segmenter = ClaSS(
            window_size=1_500, subsequence_width=25, scoring_interval=50, relearn_width=True
        )
        detected = segmenter.process(values)
        assert any(abs(cp - true_cp) < 200 for cp in detected)

    def test_similarity_variants_detect_shape_change(self, sine_square_stream):
        values, true_cp = sine_square_stream
        for measure in ("euclidean", "cid"):
            segmenter = ClaSS(
                window_size=1_200, subsequence_width=25, scoring_interval=50, similarity=measure
            )
            detected = segmenter.process(values)
            assert any(abs(cp - true_cp) < 250 for cp in detected), measure

    def test_n_seen_counts_everything(self, stationary_noise):
        segmenter = ClaSS(window_size=1_000, subsequence_width=20, scoring_interval=100)
        segmenter.process(stationary_noise)
        assert segmenter.n_seen == stationary_noise.shape[0]
