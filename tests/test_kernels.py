"""Kernel backend registry + cross-backend bit-identity (ROADMAP item 1).

Backends are pinned bit-identical, not merely close: the loop-form kernels
(the numba compilation source, run here as the ``"loops"`` backend) must
produce byte-for-byte the same tables, profiles, scores and p-values as the
vectorised numpy reference on every knn mode, similarity measure and scoring
interval, including across checkpoint/resume.  When numba is installed the
same assertions run against the compiled backend (see the ``numba`` tests at
the bottom — skipped, not weakened, when it is absent).
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest

import repro.core.kernels as kernels_module
from repro.api import ClaSSConfig, create
from repro.core.kernels import (
    KERNEL_BACKENDS,
    LoopKernels,
    NumpyKernels,
    available_backends,
    get_backend,
)
from repro.core.scoring import fused_split_scores
from repro.core.similarity import SIMILARITY_MEASURES
from repro.core.streaming_knn import KNN_MODES, StreamingKNN
from repro.utils.exceptions import ConfigurationError

HAS_NUMBA = "numba" in available_backends()


def ingest(knn: StreamingKNN, values) -> None:
    for _ in knn.update_many(values):
        pass


def knn_fingerprint(knn: StreamingKNN) -> dict:
    """Every piece of k-NN state an equivalence assertion can bite on."""
    state = knn.state_dict()
    return {
        "knn_idx": state["knn_idx"],
        "knn_sim": state["knn_sim"],
        "thresholds": state["thresholds"],
        "worst_sim": state["worst_sim"],
        "profile": knn.last_similarity_profile,
    }


def assert_fingerprints_equal(left: dict, right: dict) -> None:
    for key in left:
        np.testing.assert_array_equal(left[key], right[key], err_msg=key)


def segment(values, backend, **overrides) -> object:
    config = ClaSSConfig(
        window_size=overrides.pop("window_size", 1_500),
        scoring_interval=overrides.pop("scoring_interval", 10),
        kernel_backend=backend,
        **overrides,
    )
    segmenter = create("class", config)
    segmenter.process(values)
    segmenter.finalise()
    return segmenter


class TestRegistry:
    def test_backend_names(self):
        assert KERNEL_BACKENDS == ("auto", "numpy", "numba", "loops")
        assert "numpy" in available_backends()
        assert "loops" in available_backends()

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("loops") is get_backend("loops")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("gpu")

    def test_auto_resolves_to_concrete_backend(self):
        backend = get_backend("auto")
        assert backend.name in ("numpy", "numba")

    def test_backend_types(self):
        assert isinstance(get_backend("numpy"), NumpyKernels)
        loops = get_backend("loops")
        assert isinstance(loops, LoopKernels)
        assert loops.compiled is False

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed: no fallback to exercise")
    def test_explicit_numba_without_numba_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_NUMBA_WARNED", False)
        with pytest.warns(RuntimeWarning, match="falling back to the numpy reference"):
            backend = get_backend("numba")
        assert backend.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("numba").name == "numpy"  # warned once only

    def test_backends_pickle_to_the_singleton(self):
        for name in available_backends():
            backend = get_backend(name)
            assert pickle.loads(pickle.dumps(backend)) is backend

    def test_unknown_measure_rejected_by_every_backend(self):
        for name in available_backends():
            with pytest.raises(ConfigurationError, match="unknown similarity measure"):
                get_backend(name).similarity_kernel("cosine")

    def test_unknown_score_rejected_by_every_backend(self):
        for name in available_backends():
            with pytest.raises(ConfigurationError, match="no fused kernel for score"):
                get_backend(name).fused_split_scores(
                    np.array([3, 4], dtype=np.int64),
                    np.array([3, 4], dtype=np.int64),
                    8,
                    score="f0.5",
                )


class TestKernelLevelEquivalence:
    """Each kernel, loops vs numpy, on randomised inputs — exact equality."""

    @pytest.fixture(params=["loops", "numba"] if HAS_NUMBA else ["loops"])
    def other(self, request):
        return get_backend(request.param)

    def test_extend_shrink(self, rng, other):
        reference = get_backend("numpy")
        for m in (1, 2, 17, 64):
            partial = rng.normal(size=m)
            extend_values = rng.normal(size=m)
            shrink_values = rng.normal(size=m)
            newest, oldest = map(float, rng.normal(size=2))
            q_ref = np.full(m + 3, np.nan)
            q_other = np.full(m + 3, np.nan)
            full_ref = reference.extend_shrink(
                partial.copy(), extend_values, newest, shrink_values, oldest, q_ref
            )
            full_other = other.extend_shrink(
                partial.copy(), extend_values, newest, shrink_values, oldest, q_other
            )
            np.testing.assert_array_equal(np.asarray(full_ref), np.asarray(full_other))
            np.testing.assert_array_equal(q_ref[:m], q_other[:m])

    @pytest.mark.parametrize("measure", SIMILARITY_MEASURES)
    def test_similarity_profiles(self, rng, other, measure):
        reference = get_backend("numpy")
        w = 9
        for m in (1, 5, 40):
            dots = rng.normal(size=m) * w
            means = rng.normal(size=m)
            stds = np.abs(rng.normal(size=m)) + 1e-3
            comps = np.abs(rng.normal(size=m)) + 1e-3
            args = (dots, means, stds, m - 1, w, comps)
            np.testing.assert_array_equal(
                reference.similarity_kernel(measure)(*args),
                np.asarray(other.similarity_kernel(measure)(*args)),
            )

    def test_similarity_ties_and_degenerate_stds(self, rng, other):
        # correlations clipped at +/-1 and the std floor path must agree too
        reference = get_backend("numpy")
        w, m = 9, 12
        means = np.zeros(m)
        stds = np.full(m, 1e-8)
        dots = np.concatenate([np.full(m // 2, 1e6), np.full(m - m // 2, -1e6)])
        for measure in SIMILARITY_MEASURES:
            args = (dots, means, stds, m - 1, w, np.full(m, 1e-8))
            np.testing.assert_array_equal(
                reference.similarity_kernel(measure)(*args),
                np.asarray(other.similarity_kernel(measure)(*args)),
            )

    def test_cid_requires_complexities(self, other):
        profile = other.similarity_kernel("cid")
        with pytest.raises(ConfigurationError, match="complexities"):
            profile(np.zeros(3), np.zeros(3), np.ones(3), 2, 5)

    def test_topk_newest_including_ties(self, rng, other):
        reference = get_backend("numpy")
        for low, take in ((1, 1), (5, 5), (40, 7), (64, 16)):
            exact_ties = rng.choice(np.round(rng.normal(size=5), 1), size=low)
            for sims in (rng.normal(size=low + 3), np.resize(exact_ties, low + 3)):
                out = [np.full(take, -1, dtype=np.int64), np.full(take, np.nan)]
                expected = [np.full(take, -1, dtype=np.int64), np.full(take, np.nan)]
                other.topk_newest(sims, low, take, 100, out[0], out[1])
                reference.topk_newest(sims, low, take, 100, expected[0], expected[1])
                np.testing.assert_array_equal(out[0], expected[0])
                np.testing.assert_array_equal(out[1], expected[1])

    def test_rank_smallest(self, rng, other):
        reference = get_backend("numpy")
        values = rng.integers(-50, 50, size=11).astype(np.int64)
        for rank in (0, 3, 10):
            assert other.rank_smallest(values.copy(), rank) == reference.rank_smallest(
                values.copy(), rank
            )

    @pytest.mark.parametrize("n_rows", [1, 2, 3, 24])
    def test_insert_newest(self, rng, other, n_rows):
        # n_rows spans both numpy code paths (scalar <=2 rows, vectorised)
        reference = get_backend("numpy")
        k = 4
        sims = np.sort(rng.normal(size=(n_rows, k)), axis=1)[:, ::-1].copy()
        indices = rng.integers(0, 500, size=(n_rows, k)).astype(np.int64)
        worst = sims[:, -1].copy()
        thresholds = np.partition(indices, 1, axis=1)[:, 1].copy()
        candidates = rng.normal(size=n_rows)
        candidates[0] = sims[0, -1] + 1.0  # force at least one beaten row
        ref_state = (indices.copy(), sims.copy(), worst.copy(), thresholds.copy())
        other_state = (indices.copy(), sims.copy(), worst.copy(), thresholds.copy())
        reference.insert_newest(*ref_state, candidates, 999, 1)
        other.insert_newest(*other_state, candidates, 999, 1)
        for left, right in zip(ref_state, other_state):
            np.testing.assert_array_equal(left, right)

    @pytest.mark.parametrize("score", ["macro_f1", "accuracy"])
    def test_fused_split_scores(self, rng, other, score):
        m = 120
        pred_zero_from = np.sort(rng.integers(0, m, size=m)).astype(np.int64)
        splits = np.arange(5, m - 5, dtype=np.int64)
        expected = fused_split_scores(pred_zero_from, splits, m, score)
        got = other.fused_split_scores(pred_zero_from, splits, m, score)
        np.testing.assert_array_equal(np.asarray(got), expected)


class TestStreamingKNNBackendEquivalence:
    """End-to-end k-NN tables: every backend vs numpy, bit-identical."""

    @pytest.fixture(params=["loops", "numba"] if HAS_NUMBA else ["loops"])
    def backend(self, request):
        return request.param

    @pytest.mark.parametrize("mode", KNN_MODES)
    @pytest.mark.parametrize("measure", SIMILARITY_MEASURES)
    def test_tables_bit_identical(self, rng, backend, mode, measure):
        values = rng.normal(size=700).cumsum()
        kwargs = dict(
            window_size=300, subsequence_width=12, k_neighbours=3, similarity=measure, mode=mode
        )
        reference = StreamingKNN(kernel_backend="numpy", **kwargs)
        candidate = StreamingKNN(kernel_backend=backend, **kwargs)
        ingest(reference, values)
        ingest(candidate, values)
        assert_fingerprints_equal(knn_fingerprint(reference), knn_fingerprint(candidate))

    def test_checkpoint_crosses_backends(self, rng, backend):
        values = rng.normal(size=600).cumsum()
        kwargs = dict(window_size=250, subsequence_width=10, k_neighbours=3)
        saved = StreamingKNN(kernel_backend="numpy", **kwargs)
        ingest(saved, values[:400])
        restored = StreamingKNN(kernel_backend=backend, **kwargs)
        restored.load_state_dict(pickle.loads(pickle.dumps(saved.state_dict())))
        ingest(saved, values[400:])
        ingest(restored, values[400:])
        assert_fingerprints_equal(knn_fingerprint(saved), knn_fingerprint(restored))


class TestClaSSBackendEquivalence:
    """Detector-level results: change points, scores and p-values equal."""

    @pytest.fixture(params=["loops", "numba"] if HAS_NUMBA else ["loops"])
    def backend(self, request):
        return request.param

    @pytest.mark.parametrize("scoring_interval", [1, 25])
    def test_reports_identical(self, sine_square_stream, backend, scoring_interval):
        values, _ = sine_square_stream
        reference = segment(values, "numpy", scoring_interval=scoring_interval)
        candidate = segment(values, backend, scoring_interval=scoring_interval)
        np.testing.assert_array_equal(reference.change_points, candidate.change_points)
        assert len(reference.reports) == len(candidate.reports)
        for left, right in zip(reference.reports, candidate.reports):
            assert left.change_point == right.change_point
            assert left.score == right.score
            assert left.p_value == right.p_value

    def test_checkpoint_crosses_backends(self, sine_square_stream, backend):
        values, _ = sine_square_stream
        reference = create(
            "class", ClaSSConfig(window_size=1_500, scoring_interval=10, kernel_backend="numpy")
        )
        reference.process(values[:2_000])
        payload = pickle.loads(pickle.dumps(reference.save_state()))
        # the config travels with the payload; the restoring side may run any
        # backend — override via the restored segmenter's own config
        resumed = create(
            "class", ClaSSConfig(window_size=1_500, scoring_interval=10, kernel_backend=backend)
        )
        resumed.load_state(payload)
        reference.process(values[2_000:])
        resumed.process(values[2_000:])
        reference.finalise()
        resumed.finalise()
        np.testing.assert_array_equal(reference.change_points, resumed.change_points)

    def test_config_round_trip_preserves_backend(self):
        config = ClaSSConfig(kernel_backend="loops")
        assert ClaSSConfig.from_json(config.to_json()).kernel_backend == "loops"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            ClaSSConfig(kernel_backend="gpu").validate()


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaBackend:
    """Compiled-path smoke checks beyond the shared fixtures above."""

    def test_numba_backend_is_compiled(self):
        backend = get_backend("numba")
        assert backend.name == "numba"
        assert backend.compiled is True

    def test_auto_prefers_numba(self):
        assert get_backend("auto") is get_backend("numba")
