"""Unit tests for CP-F1, detection delays, ranks and CD statistics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    change_point_f1,
    detection_delays,
    match_change_points,
    mean_absolute_error_of_matched_cps,
)
from repro.evaluation.ranking import (
    critical_difference_analysis,
    friedman_test,
    mean_ranks,
    nemenyi_critical_difference,
    pairwise_wins,
    rank_scores,
    wins_and_ties_per_method,
)
from repro.utils.exceptions import ValidationError


class TestChangePointMatching:
    def test_exact_match(self):
        match = match_change_points([100, 200], [100, 200], margin=10)
        assert match.true_positives == 2
        assert match.f1 == pytest.approx(1.0)

    def test_one_to_one_matching(self):
        # two predictions near the same annotation: only one may match
        match = match_change_points([100], [95, 105], margin=10)
        assert match.true_positives == 1
        assert match.false_positives == 1

    def test_miss_and_false_alarm(self):
        match = match_change_points([100, 500], [300], margin=20)
        assert match.true_positives == 0
        assert match.false_negatives == 2
        assert match.false_positives == 1
        assert match.f1 == 0.0

    def test_f1_helper(self):
        assert change_point_f1([500], [505], 1_000, margin_fraction=0.01) == pytest.approx(1.0)
        assert change_point_f1([500], [], 1_000) == 0.0

    def test_detection_delays(self):
        delays = detection_delays([100, 400], [102, 401], [150, 470], margin=10)
        assert delays == [50, 70]

    def test_detection_delays_unmatched_ignored(self):
        assert detection_delays([100], [900], [950], margin=10) == []

    def test_mean_absolute_error(self):
        assert mean_absolute_error_of_matched_cps([100, 200], [105, 190], margin=20) == (
            pytest.approx(7.5)
        )
        assert np.isnan(mean_absolute_error_of_matched_cps([100], [500], margin=20))


class TestRanking:
    def test_rank_scores_basic(self):
        scores = np.array([[0.9, 0.5, 0.7], [0.2, 0.8, 0.4]])
        ranks = rank_scores(scores)
        np.testing.assert_array_equal(ranks[0], [1, 3, 2])
        np.testing.assert_array_equal(ranks[1], [3, 1, 2])

    def test_mean_ranks_ties_are_averaged(self):
        scores = np.array([[0.5, 0.5, 0.1]])
        np.testing.assert_allclose(mean_ranks(scores), [1.5, 1.5, 3.0])

    def test_rank_scores_requires_2d(self):
        with pytest.raises(ValidationError):
            rank_scores(np.array([1.0, 2.0]))

    def test_friedman_detects_consistent_winner(self, rng):
        base = rng.uniform(0.3, 0.5, size=(30, 1))
        scores = np.hstack([base + 0.4, base, base - 0.1])
        statistic, p_value = friedman_test(scores)
        assert p_value < 1e-5
        assert statistic > 0

    def test_nemenyi_cd_decreases_with_more_datasets(self):
        assert nemenyi_critical_difference(5, 200) < nemenyi_critical_difference(5, 20)

    def test_critical_difference_analysis(self, rng):
        base = rng.uniform(0.3, 0.5, size=(40, 1))
        # "best" always wins; "mid" and "low" are statistically indistinguishable
        scores = np.hstack(
            [base + 0.4, base + rng.normal(0, 0.02, (40, 1)), base + rng.normal(0, 0.02, (40, 1))]
        )
        result = critical_difference_analysis(scores, ["best", "mid", "low"])
        ordering = result.ordering()
        assert ordering[0][0] == "best"
        assert result.is_significantly_better("best", "low")
        assert not result.is_significantly_better("mid", "low")
        assert any({"mid", "low"} <= set(clique) for clique in result.cliques)

    def test_method_name_mismatch(self, rng):
        with pytest.raises(ValidationError):
            critical_difference_analysis(rng.random((10, 3)), ["a", "b"])

    def test_pairwise_wins(self):
        scores = np.array([[0.9, 0.1], [0.8, 0.2], [0.3, 0.4]])
        wins = pairwise_wins(scores, ["a", "b"])
        assert wins[("a", "b")] == (2, 0, 1)
        assert wins[("b", "a")] == (1, 0, 2)

    def test_wins_and_ties(self):
        scores = np.array([[0.9, 0.9], [0.2, 0.5]])
        counts = wins_and_ties_per_method(scores, ["a", "b"])
        assert counts == {"a": 1, "b": 2}
