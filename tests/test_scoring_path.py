"""Tests for the incremental ClaSP scoring path.

Three pillars, mirroring the contract of the fast path:

* the threshold cache maintained inside :class:`StreamingKNN` always equals a
  fresh ``prediction_thresholds`` computation over the current k-NN table —
  through evictions, backing-array and table compactions, resets, change
  point region shifts and ``relearn_width`` rebuilds;
* the fused score kernel is bit-identical to every oracle implementation on
  randomized k-NN tables (including the lazily materialised confusion
  counts);
* ClaSS reports bit-identical change points for every
  ``cross_val_implementation`` across k-NN modes and scoring intervals.
"""

from __future__ import annotations

import collections

import numpy as np
import pytest

from repro.core.class_segmenter import ClaSS
from repro.core.cross_val import (
    CROSS_VAL_IMPLEMENTATIONS,
    cross_val_scores_fast,
    cross_val_scores_from_thresholds,
    cross_val_scores_incremental,
    cross_val_scores_naive,
    cross_val_scores_vectorised,
    prediction_thresholds,
    predictions_for_split,
)
from repro.core.scoring import fused_split_scores
from repro.core.streaming_knn import PADDING_INDEX, StreamingKNN
from repro.utils.exceptions import ConfigurationError


def cached_thresholds_window(knn: StreamingKNN) -> np.ndarray:
    """The cached thresholds converted to window-relative coordinates."""
    view = knn.region_view(0)
    cached = view.thresholds.copy()
    return np.where(cached == PADDING_INDEX, PADDING_INDEX, cached - view.offset)


def assert_cache_consistent(knn: StreamingKNN) -> None:
    """Cached thresholds must equal a fresh computation over the live table."""
    if knn.n_subsequences < 2:
        return
    fresh = prediction_thresholds(knn.knn_indices)
    np.testing.assert_array_equal(cached_thresholds_window(knn), fresh)


class TestThresholdCacheConsistency:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    @pytest.mark.parametrize("mode", ["streaming", "recompute"])
    def test_cache_through_evictions_and_compactions(self, rng, k, mode):
        # stream length covers several window turnovers: the backing array
        # compacts every d evictions and the k-NN tables every m evictions
        knn = StreamingKNN(window_size=180, subsequence_width=12, k_neighbours=k, mode=mode)
        values = rng.normal(size=800)
        for position, _ in enumerate(knn.update_many(values)):
            if position % 29 == 0:
                assert_cache_consistent(knn)
        assert_cache_consistent(knn)

    def test_cache_after_reset_and_reingest(self, rng):
        knn = StreamingKNN(window_size=150, subsequence_width=10)
        collections.deque(knn.update_many(rng.normal(size=400)), maxlen=0)
        knn.reset()
        assert np.all(knn.region_view(0).thresholds.shape == (0,))
        collections.deque(knn.update_many(rng.normal(size=260)), maxlen=0)
        assert_cache_consistent(knn)

    def test_cache_after_change_point_region_shift(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = ClaSS(window_size=1_500, subsequence_width=25, scoring_interval=10)
        segmenter.process(values)
        assert segmenter.change_points.size >= 1
        assert_cache_consistent(segmenter._knn)
        # the scored-region view must agree with the fresh region table
        region_start = segmenter._state.last_change_point_offset
        view = segmenter._knn.region_view(region_start)
        region_knn = segmenter._knn.knn_indices[region_start:] - region_start
        if region_knn.shape[0] >= 2:
            fresh = prediction_thresholds(region_knn)
            cached = np.where(
                view.thresholds == PADDING_INDEX,
                PADDING_INDEX - region_start,
                view.thresholds - view.offset,
            )
            np.testing.assert_array_equal(cached, fresh)

    def test_cache_after_relearn_width_rebuild(self, sine_square_stream):
        values, _ = sine_square_stream
        segmenter = ClaSS(
            window_size=1_500, subsequence_width=25, scoring_interval=10, relearn_width=True
        )
        segmenter.process(values)
        assert_cache_consistent(segmenter._knn)

    def test_region_view_rejects_out_of_range_start(self, rng):
        knn = StreamingKNN(window_size=120, subsequence_width=10)
        collections.deque(knn.update_many(rng.normal(size=120)), maxlen=0)
        with pytest.raises(ConfigurationError):
            knn.region_view(knn.n_subsequences + 1)
        with pytest.raises(ConfigurationError):
            knn.region_view(-1)

    def test_region_view_returns_views_not_copies(self, rng):
        knn = StreamingKNN(window_size=120, subsequence_width=10)
        collections.deque(knn.update_many(rng.normal(size=120)), maxlen=0)
        view = knn.region_view(0)
        assert view.thresholds.base is not None
        assert view.knn_indices.base is not None
        assert view.thresholds.shape[0] == knn.n_subsequences
        assert view.knn_indices.shape[0] == knn.n_subsequences


class TestFusedKernelEquivalence:
    @pytest.mark.parametrize("score", ["macro_f1", "accuracy"])
    def test_fused_scores_bit_identical_to_all_oracles(self, rng, score):
        for _ in range(25):
            m = int(rng.integers(12, 180))
            k = int(rng.integers(1, 6))
            exclusion = int(rng.integers(1, 10))
            knn = rng.integers(-8, m, size=(m, k))
            fast = cross_val_scores_fast(knn, exclusion, score)
            for oracle in (
                cross_val_scores_vectorised,
                cross_val_scores_incremental,
                cross_val_scores_naive,
            ):
                reference = oracle(knn, exclusion, score)
                np.testing.assert_array_equal(fast.splits, reference.splits)
                np.testing.assert_array_equal(fast.scores, reference.scores)

    def test_lazy_confusion_counts_match_vectorised(self, rng):
        knn = rng.integers(-5, 90, size=(90, 3))
        fast = cross_val_scores_fast(knn, exclusion=6)
        reference = cross_val_scores_vectorised(knn, exclusion=6)
        np.testing.assert_array_equal(fast.n00, reference.n00)
        np.testing.assert_array_equal(fast.n01, reference.n01)
        np.testing.assert_array_equal(fast.n10, reference.n10)
        np.testing.assert_array_equal(fast.n11, reference.n11)

    def test_offset_thresholds_equal_shifted_table(self, rng):
        # consuming global-coordinate thresholds with an offset must equal
        # scoring the materialised region-relative table
        m, offset = 120, 37
        knn = rng.integers(-5, m, size=(m, 4))
        thresholds = prediction_thresholds(knn)
        shifted = cross_val_scores_from_thresholds(
            thresholds + offset, exclusion=8, offset=offset
        )
        reference = cross_val_scores_vectorised(knn, exclusion=8)
        np.testing.assert_array_equal(shifted.scores, reference.scores)

    def test_predictions_for_split_reuses_thresholds(self, rng):
        knn = rng.integers(-5, 80, size=(80, 3))
        thresholds = prediction_thresholds(knn)
        for split in (10, 40, 70):
            expected = predictions_for_split(knn, split)
            reused = predictions_for_split(None, split, thresholds=thresholds)
            shifted = predictions_for_split(None, split, thresholds=thresholds + 11, offset=11)
            np.testing.assert_array_equal(reused, expected)
            np.testing.assert_array_equal(shifted, expected)

    def test_fused_kernel_rejects_unknown_score(self):
        with pytest.raises(ConfigurationError):
            fused_split_scores(np.zeros(5, dtype=np.int64), np.arange(1, 3), 5, score="roc")

    def test_from_thresholds_validates_input(self):
        with pytest.raises(ConfigurationError):
            cross_val_scores_from_thresholds(np.zeros((3, 2), dtype=np.int64), exclusion=1)
        with pytest.raises(ConfigurationError):
            cross_val_scores_from_thresholds(np.zeros(1, dtype=np.int64), exclusion=1)

    def test_empty_result_when_exclusion_too_large(self):
        result = cross_val_scores_from_thresholds(np.arange(10, dtype=np.int64), exclusion=9)
        assert result.scores.size == 0
        assert result.n00.size == 0  # eager empties, no lazy materialisation


def two_regime_stream(rng, half=650):
    t = np.arange(half)
    values = np.concatenate(
        [np.sin(2 * np.pi * t / 22), 2.0 * np.sign(np.sin(2 * np.pi * t / 55))]
    )
    return values + rng.normal(0.0, 0.1, 2 * half)


class TestChangePointIdentity:
    """Pinned: all implementations report bit-identical change points."""

    @pytest.mark.parametrize("knn_mode", ["streaming", "recompute", "fft"])
    @pytest.mark.parametrize("scoring_interval", [1, 7])
    def test_fast_matches_vectorised_and_incremental(self, rng, knn_mode, scoring_interval):
        values = two_regime_stream(rng)
        outcomes = {}
        for implementation in ("fast", "vectorised", "incremental"):
            segmenter = ClaSS(
                window_size=650,
                subsequence_width=20,
                scoring_interval=scoring_interval,
                cross_val_implementation=implementation,
                knn_mode=knn_mode,
            )
            segmenter.process(values)
            outcomes[implementation] = (
                segmenter.change_points.tolist(),
                [(r.detected_at, r.score, r.p_value) for r in segmenter.reports],
            )
        assert outcomes["fast"] == outcomes["vectorised"] == outcomes["incremental"]
        assert len(outcomes["fast"][0]) >= 1  # the grid must actually detect

    def test_fast_matches_naive(self, rng):
        values = two_regime_stream(rng, half=500)
        outcomes = {}
        for implementation in ("fast", "naive"):
            segmenter = ClaSS(
                window_size=500,
                subsequence_width=18,
                scoring_interval=25,
                cross_val_implementation=implementation,
            )
            segmenter.process(values)
            outcomes[implementation] = segmenter.change_points.tolist()
        assert outcomes["fast"] == outcomes["naive"]
        assert len(outcomes["fast"]) >= 1

    def test_fast_is_default_and_registered(self):
        assert ClaSS().cross_val_implementation == "fast"
        assert "fast" in CROSS_VAL_IMPLEMENTATIONS

    def test_warmup_bulk_slice_matches_pointwise(self, rng):
        # the vectorised warm-up buffering must be behaviour-identical to the
        # per-point path, including a width learned mid-chunk
        values = two_regime_stream(rng, half=600)
        bulk = ClaSS(window_size=600, scoring_interval=5)
        bulk.process(values)
        pointwise = ClaSS(window_size=600, scoring_interval=5)
        for value in values:
            pointwise.update(float(value))
        assert bulk.n_seen == pointwise.n_seen
        assert bulk.subsequence_width_ == pointwise.subsequence_width_
        np.testing.assert_array_equal(bulk.change_points, pointwise.change_points)
