"""Unit tests for the dot-product based similarity measures."""

import numpy as np
import pytest

from repro.core.similarity import (
    SIMILARITY_MEASURES,
    cid_factor,
    get_similarity,
    pairwise_similarity_matrix,
    pearson_from_dot_products,
    similarity_profile,
    squared_distance_from_correlation,
)
from repro.utils.exceptions import ConfigurationError
from repro.utils.running_stats import sliding_complexity, sliding_mean_std


def _direct_pearson(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.corrcoef(a, b)[0, 1])


class TestPearsonFromDotProducts:
    def test_matches_numpy_corrcoef(self, rng):
        values = rng.normal(size=200)
        w = 20
        m = values.shape[0] - w + 1
        subs = np.lib.stride_tricks.sliding_window_view(values, w)
        query = m - 1
        dots = subs @ subs[query]
        means, stds = sliding_mean_std(values, w)
        corr = pearson_from_dot_products(dots, means, stds, query, w)
        for i in range(0, m, 13):
            assert corr[i] == pytest.approx(_direct_pearson(subs[i], subs[query]), abs=1e-8)

    def test_self_correlation_is_one(self, rng):
        values = rng.normal(size=100)
        w = 10
        subs = np.lib.stride_tricks.sliding_window_view(values, w)
        dots = subs @ subs[-1]
        means, stds = sliding_mean_std(values, w)
        corr = pearson_from_dot_products(dots, means, stds, subs.shape[0] - 1, w)
        assert corr[-1] == pytest.approx(1.0, abs=1e-9)

    def test_clipped_to_valid_range(self, rng):
        values = rng.normal(size=80)
        w = 8
        subs = np.lib.stride_tricks.sliding_window_view(values, w)
        dots = subs @ subs[-1]
        means, stds = sliding_mean_std(values, w)
        corr = pearson_from_dot_products(dots, means, stds, subs.shape[0] - 1, w)
        assert np.all(corr <= 1.0) and np.all(corr >= -1.0)


class TestEuclideanAndCid:
    def test_distance_from_correlation_identity(self):
        # perfectly correlated -> zero distance; anti-correlated -> maximal
        assert squared_distance_from_correlation(np.array([1.0]), 10)[0] == pytest.approx(0.0)
        assert squared_distance_from_correlation(np.array([-1.0]), 10)[0] == pytest.approx(40.0)

    def test_cid_factor_symmetric_floor(self):
        complexities = np.array([0.0, 1.0, 2.0])
        factor = cid_factor(complexities, query_index=1)
        assert factor[1] == pytest.approx(1.0)
        assert factor[2] == pytest.approx(2.0)
        assert np.isfinite(factor).all()

    def test_cid_requires_complexities(self, rng):
        values = rng.normal(size=60)
        w = 6
        subs = np.lib.stride_tricks.sliding_window_view(values, w)
        dots = subs @ subs[-1]
        means, stds = sliding_mean_std(values, w)
        with pytest.raises(ConfigurationError, match="complexities"):
            similarity_profile("cid", dots, means, stds, subs.shape[0] - 1, w)

    def test_all_measures_rank_self_highest(self, rng):
        values = rng.normal(size=150)
        w = 12
        subs = np.lib.stride_tricks.sliding_window_view(values, w)
        dots = subs @ subs[-1]
        means, stds = sliding_mean_std(values, w)
        complexities = sliding_complexity(values, w)
        for measure in SIMILARITY_MEASURES:
            profile = similarity_profile(
                measure, dots, means, stds, subs.shape[0] - 1, w, complexities
            )
            assert int(np.argmax(profile)) == subs.shape[0] - 1


class TestPairwiseMatrix:
    def test_symmetric_and_unit_diagonal(self, rng):
        values = rng.normal(size=100)
        matrix = pairwise_similarity_matrix(values, 10)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-9)
        np.testing.assert_allclose(np.diag(matrix), 1.0, atol=1e-9)

    def test_euclidean_is_negative_distance(self, rng):
        values = rng.normal(size=80)
        matrix = pairwise_similarity_matrix(values, 8, measure="euclidean")
        assert np.all(matrix <= 1e-9)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-6)

    def test_unknown_measure_raises(self, rng):
        with pytest.raises(ConfigurationError):
            pairwise_similarity_matrix(rng.normal(size=50), 5, measure="cosine")


class TestGetSimilarity:
    def test_lookup_and_dispatch(self, rng):
        values = rng.normal(size=60)
        w = 6
        subs = np.lib.stride_tricks.sliding_window_view(values, w)
        dots = subs @ subs[-1]
        means, stds = sliding_mean_std(values, w)
        fn = get_similarity("pearson")
        out = fn(dots, means, stds, subs.shape[0] - 1, w)
        assert out.shape == (subs.shape[0],)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_similarity("manhattan")
