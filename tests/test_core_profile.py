"""Unit tests for the ClaSP profile container."""

import numpy as np
import pytest

from repro.core.profile import ClaSPProfile


def _profile():
    scores = np.array([0.5, 0.7, 0.9, 0.6, 0.8, 0.75])
    splits = np.arange(10, 16)
    return ClaSPProfile(
        scores=scores,
        splits=splits,
        region_start=100,
        window_start_time=5_000,
        subsequence_width=20,
    )


class TestClaSPProfile:
    def test_len_and_empty(self):
        profile = _profile()
        assert len(profile) == 6
        assert not profile.is_empty
        assert ClaSPProfile.empty().is_empty

    def test_global_maximum(self):
        split, score = _profile().global_maximum()
        assert split == 12
        assert score == pytest.approx(0.9)

    def test_global_maximum_on_empty_raises(self):
        with pytest.raises(ValueError):
            ClaSPProfile.empty().global_maximum()

    def test_to_absolute(self):
        profile = _profile()
        assert profile.to_absolute(12) == 5_000 + 100 + 12

    def test_local_maxima(self):
        profile = _profile()
        maxima = profile.local_maxima(order=1)
        assert 12 in maxima.tolist()
        assert 14 in maxima.tolist()

    def test_local_maxima_too_short(self):
        profile = ClaSPProfile(scores=np.array([0.5]), splits=np.array([3]))
        assert profile.local_maxima().size == 0

    def test_local_maxima_order_zero_returns_all_splits(self):
        profile = _profile()
        np.testing.assert_array_equal(profile.local_maxima(order=0), profile.splits)

    def test_dense_representation(self):
        profile = _profile()
        dense = profile.dense(length=20)
        assert dense.shape == (20,)
        assert np.isnan(dense[0])
        assert dense[12] == pytest.approx(0.9)

    def test_dense_default_length(self):
        dense = _profile().dense()
        assert dense.shape == (16,)
