"""Unit and integration tests for the batch ClaSP baseline."""

import numpy as np
import pytest

from repro.core.clasp_batch import ClaSP
from repro.utils.exceptions import ConfigurationError, NotEnoughDataError


def _two_regime_series(rng, n=1_200, period_a=20, period_b=55):
    half = n // 2
    t = np.arange(half)
    values = np.concatenate(
        [np.sin(2 * np.pi * t / period_a), np.sin(2 * np.pi * t / period_b)]
    )
    return values + rng.normal(0, 0.05, n)


class TestConstruction:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ClaSP(knn_backend="gpu")

    def test_rejects_unknown_cross_val(self):
        with pytest.raises(ConfigurationError):
            ClaSP(cross_val_implementation="quantum")


class TestProfile:
    def test_profile_peaks_near_true_change_point(self, rng):
        values = _two_regime_series(rng)
        clasp = ClaSP(subsequence_width=20)
        profile = clasp.profile(values)
        split, score = profile.global_maximum()
        assert abs(split - 600) < 60
        assert score > 0.8

    def test_too_short_series_raises(self, rng):
        clasp = ClaSP(subsequence_width=50)
        with pytest.raises(NotEnoughDataError):
            clasp.profile(rng.normal(size=120))

    def test_bruteforce_and_streaming_backends_agree(self, rng):
        values = _two_regime_series(rng, n=600)
        profile_a = ClaSP(subsequence_width=20, knn_backend="streaming").profile(values)
        profile_b = ClaSP(subsequence_width=20, knn_backend="bruteforce").profile(values)
        # the streaming backend builds neighbours causally with later updates,
        # so profiles are close but not bitwise identical; the argmax must agree
        split_a, _ = profile_a.global_maximum()
        split_b, _ = profile_b.global_maximum()
        assert abs(split_a - split_b) < 40


class TestFitPredict:
    def test_detects_single_change_point(self, rng):
        values = _two_regime_series(rng)
        result = ClaSP(subsequence_width=20, n_change_points=1).fit_predict(values)
        assert result.n_segments == 2
        assert abs(int(result.change_points[0]) - 600) < 60

    def test_detects_two_change_points(self, rng):
        t = np.arange(700)
        values = np.concatenate(
            [
                np.sin(2 * np.pi * t / 18),
                2.0 * np.sign(np.sin(2 * np.pi * t / 60)),
                np.sin(2 * np.pi * t / 45),
            ]
        ) + rng.normal(0, 0.05, 2_100)
        result = ClaSP(subsequence_width=20).fit_predict(values)
        assert result.change_points.shape[0] >= 2
        assert any(abs(cp - 700) < 80 for cp in result.change_points)
        assert any(abs(cp - 1_400) < 80 for cp in result.change_points)

    def test_stationary_series_yields_no_change_points(self, rng):
        values = np.sin(2 * np.pi * np.arange(1_500) / 30) + rng.normal(0, 0.05, 1_500)
        result = ClaSP(subsequence_width=30).fit_predict(values)
        assert result.change_points.shape[0] == 0

    def test_learns_width_when_not_given(self, rng):
        values = _two_regime_series(rng)
        result = ClaSP().fit_predict(values)
        assert result.subsequence_width >= 10
