"""Chunk store tests: round-trips, boundaries, zero-copy reads, recovery.

The crash cases pin the ISSUE 9 satellite: a partially written segment
file (torn write) is detected via the manifest's byte length / CRC and
truncated by recovery — never silently served to a reader.
"""

import numpy as np
import pytest

from repro.storage import (
    ChunkStoreWriter,
    StoredStream,
    StreamStore,
    recover_chunk_store,
)
from repro.utils.exceptions import (
    ConfigurationError,
    CorruptRecordError,
    StorageError,
)


@pytest.fixture
def store(tmp_path):
    return StreamStore(tmp_path / "store", segment_rows=1_000, fsync=False)


@pytest.fixture
def data(rng):
    return np.concatenate([rng.normal(0, 1, 2_500), rng.normal(4, 1, 2_500)])


class TestWriterReader:
    def test_round_trip_across_segments(self, store, data):
        stored = store.ingest("s", data)
        assert len(stored) == 5_000
        assert stored.shape == (5_000,)
        assert len(stored.segments) == 5
        assert np.array_equal(stored.read(), data)

    def test_range_read_spanning_boundary(self, store, data):
        stored = store.ingest("s", data)
        assert np.array_equal(stored.read(990, 1_010), data[990:1_010])
        assert np.array_equal(stored.read(4_999), data[4_999:])
        assert stored.read(2_000, 2_000).shape == (0,)

    def test_iter_chunks_clips_at_segment_boundaries(self, store, data):
        stored = store.ingest("s", data)
        sizes = [chunk.shape[0] for chunk in stored.iter_chunks(300)]
        # 1000-row segments chunked by 300 -> 300,300,300,100 per segment
        assert sizes == [300, 300, 300, 100] * 5
        pieces = [np.array(chunk, copy=True) for chunk in stored.iter_chunks(300)]
        assert np.array_equal(np.concatenate(pieces), data)

    def test_iter_chunks_window(self, store, data):
        stored = store.ingest("s", data)
        window = np.concatenate(
            [np.array(c, copy=True) for c in stored.iter_chunks(256, start=700, stop=3_300)]
        )
        assert np.array_equal(window, data[700:3_300])

    def test_chunks_are_zero_copy_views(self, store, data):
        stored = store.ingest("s", data)
        chunk = next(stored.iter_chunks(100))
        assert chunk.base is not None  # a view into the segment map, not a copy

    def test_multivariate_round_trip(self, store, rng):
        data = rng.normal(size=(2_300, 3))
        stored = store.ingest("mv", data)
        assert stored.shape == (2_300, 3)
        assert stored.columns == 3
        assert np.array_equal(stored.read(), data)
        assert np.array_equal(stored.read(995, 1_005), data[995:1_005])

    def test_reopen_appends_after_flush(self, store, data):
        store.ingest("s", data[:2_200])
        with store.writer("s") as writer:
            assert writer.n_rows == 2_200
            writer.append(data[2_200:])
        stored = store.open("s")
        assert np.array_equal(stored.read(), data)

    def test_partial_final_segment_then_continue(self, tmp_path, rng):
        values = rng.normal(size=777)
        with ChunkStoreWriter(tmp_path / "w", segment_rows=500, fsync=False) as writer:
            writer.append(values)
        # 500-row sealed segment + 277-row partial one
        stored = StoredStream(tmp_path / "w")
        assert [int(entry["rows"]) for entry in stored.segments] == [500, 277]
        assert np.array_equal(stored.read(), values)

    def test_ingest_iterable_source(self, store, data):
        chunks = (data[i : i + 64] for i in range(0, data.shape[0], 64))
        stored = store.ingest("s", chunks)
        assert np.array_equal(stored.read(), data)

    def test_verify_clean_store(self, store, data):
        assert store.ingest("s", data).verify() == []


class TestValidation:
    def test_ingest_existing_name_requires_append(self, store, data):
        store.ingest("s", data)
        with pytest.raises(StorageError, match="already exists"):
            store.ingest("s", data)
        store.ingest("s", data, append=True)
        assert len(store.open("s")) == 10_000

    def test_bad_stream_names_rejected(self, store):
        for name in ("", "../evil", "a/b", ".hidden", "x" * 200):
            with pytest.raises(StorageError, match="invalid stream name"):
                store.path_for(name)

    def test_unknown_stream(self, store):
        with pytest.raises(StorageError, match="unknown stream"):
            store.open("ghost")
        assert not store.exists("ghost")

    def test_shape_mismatch_rejected(self, store, rng):
        store.ingest("mv", rng.normal(size=(100, 2)))
        with store.writer("mv", columns=2) as writer:
            with pytest.raises(ConfigurationError, match=r"\(n, 2\)"):
                writer.append(rng.normal(size=50))

    def test_dtype_and_columns_pinned_on_reopen(self, store, rng):
        store.ingest("s", rng.normal(size=100))
        with pytest.raises(ConfigurationError, match="dtype"):
            store.writer("s", dtype=np.float32)
        with pytest.raises(ConfigurationError, match="column"):
            store.writer("s", columns=2)

    def test_bad_chunk_windows_rejected(self, store, data):
        stored = store.ingest("s", data)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            list(stored.iter_chunks(0))
        with pytest.raises(ConfigurationError, match="out of range"):
            list(stored.iter_chunks(10, start=4_000, stop=9_999))

    def test_delete_removes_everything(self, store, data):
        store.ingest("s", data)
        store.delete("s")
        assert store.list_streams() == []
        with pytest.raises(StorageError):
            store.delete("s")


class TestCrashRecovery:
    def _segment_path(self, store, name, index):
        return store.path_for(name) / "segments" / f"seg-{index:08d}.npy"

    def test_torn_segment_detected_not_silently_read(self, store, data):
        store.ingest("s", data)
        path = self._segment_path(store, "s", 4)
        path.write_bytes(path.read_bytes()[:-16])  # crash mid-write
        with pytest.raises(CorruptRecordError, match="torn write"):
            store.open("s")

    def test_recovery_truncates_torn_tail(self, store, data):
        store.ingest("s", data)
        path = self._segment_path(store, "s", 4)
        path.write_bytes(path.read_bytes()[:-16])
        report = recover_chunk_store(store.path_for("s"), fsync=False)
        assert report.dropped_segments == ["seg-00000004.npy"]
        assert report.n_rows_before == 5_000
        assert report.n_rows_after == 4_000
        stored = store.open("s")  # opens clean again
        assert np.array_equal(stored.read(), data[:4_000])
        assert stored.verify() == []

    def test_recovery_removes_orphan_tmp_files(self, store, data):
        store.ingest("s", data)
        orphan = store.path_for("s") / "segments" / "seg-00000009.npy.tmp"
        orphan.write_bytes(b"torn")
        report = recover_chunk_store(store.path_for("s"), fsync=False)
        assert "seg-00000009.npy.tmp" in report.removed_files
        assert not orphan.exists()

    def test_recovery_is_idempotent_on_clean_store(self, store, data):
        store.ingest("s", data)
        report = recover_chunk_store(store.path_for("s"), fsync=False)
        assert report.clean
        assert report.n_rows_after == 5_000

    def test_missing_segment_detected(self, store, data):
        store.ingest("s", data)
        self._segment_path(store, "s", 2).unlink()
        with pytest.raises(CorruptRecordError, match="missing"):
            store.open("s")
        report = recover_chunk_store(store.path_for("s"), fsync=False)
        # truncate-at-first-bad: everything from the hole on is dropped
        assert report.n_rows_after == 2_000

    def test_verify_flags_bit_rot(self, store, data):
        stored = store.ingest("s", data)
        path = self._segment_path(store, "s", 1)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # same length, different bytes: only the CRC sees it
        path.write_bytes(bytes(raw))
        problems = store.open("s").verify()
        assert problems and "CRC" in problems[0]
        assert stored is not None

    def test_appending_after_recovery_continues_from_truncation(self, store, data):
        store.ingest("s", data)
        path = self._segment_path(store, "s", 4)
        path.write_bytes(path.read_bytes()[:-16])
        # reopening the writer runs recovery implicitly, then appends
        with store.writer("s") as writer:
            assert writer.n_rows == 4_000
            writer.append(data[4_000:])
        assert np.array_equal(store.open("s").read(), data)
