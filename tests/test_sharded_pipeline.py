"""Tests for the sharded multi-stream engine and the parallel channel fan-out.

The contract under test mirrors the grid executor's: sharded execution —
any shard count, in-process or on worker processes — produces outputs
bit-identical to running each stream through its own single pipeline, the
merge order is deterministic, and misuse (non-positive ``n_shards``, a
source yielding unsupported items) fails fast with a clear error.
"""

import numpy as np
import pytest

from repro.core.multivariate import MultivariateClaSS
from repro.datasets import SegmentSpec, compose_stream
from repro.streamengine import (
    ArraySource,
    MapOperator,
    Pipeline,
    Record,
    ShardedPipeline,
    run_class_pipeline,
    run_class_pipelines,
    shard_for_key,
)
from repro.utils.exceptions import ConfigurationError

WINDOW = 500
SCORING_INTERVAL = 30
BATCH = 128


def _make_dataset(index: int):
    specs = [
        SegmentSpec("sine", 500, {"period": 20 + index, "noise": 0.05}),
        SegmentSpec("square", 500, {"period": 55 + index, "noise": 0.05}),
    ]
    return compose_stream(specs, name=f"shard_stream_{index}", seed=60 + index)


@pytest.fixture(scope="module")
def stream_suite():
    return [_make_dataset(index) for index in range(4)]


@pytest.fixture(scope="module")
def single_pipeline_baseline(stream_suite):
    return [
        run_class_pipeline(
            dataset, window_size=WINDOW, scoring_interval=SCORING_INTERVAL, batch_size=BATCH
        )
        for dataset in stream_suite
    ]


def _double(value: float) -> float:
    return 2.0 * value


def _double_chain(key: str):
    return MapOperator(_double)


class TestShardRouting:
    def test_shard_for_key_is_stable_and_in_range(self):
        for n_shards in (1, 2, 5):
            for key in ("a", "b", "stream_17"):
                shard = shard_for_key(key, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_for_key(key, n_shards)

    @pytest.mark.parametrize("n_shards", [0, -3])
    def test_non_positive_n_shards_rejected(self, n_shards):
        with pytest.raises(ConfigurationError, match="n_shards must be a positive integer"):
            ShardedPipeline(n_shards, operator_factory=_double_chain)

    def test_source_without_stream_key_rejected(self):
        sharded = ShardedPipeline(2, operator_factory=_double_chain)
        with pytest.raises(ConfigurationError, match="stream"):
            sharded.add_source([Record(0, 1.0)])

    def test_run_without_sources_rejected(self):
        sharded = ShardedPipeline(2, operator_factory=_double_chain)
        with pytest.raises(ConfigurationError, match="no sources"):
            sharded.run()


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_sharded_matches_single_pipelines(
        self, stream_suite, single_pipeline_baseline, n_shards
    ):
        results, run = run_class_pipelines(
            stream_suite,
            n_shards=n_shards,
            window_size=WINDOW,
            scoring_interval=SCORING_INTERVAL,
            batch_size=BATCH,
        )
        for expected, actual in zip(single_pipeline_baseline, results):
            assert actual.dataset == expected.dataset
            assert np.array_equal(actual.change_points, expected.change_points)
            assert np.array_equal(actual.detection_delays, expected.detection_delays)
        assert run.n_shards == n_shards
        assert run.keys == [dataset.name for dataset in stream_suite]

    def test_duplicate_dataset_names_rejected(self, stream_suite):
        duplicated = [stream_suite[0], stream_suite[0], stream_suite[1]]
        with pytest.raises(ConfigurationError, match="unique"):
            run_class_pipelines(duplicated, n_shards=2, window_size=WINDOW)

    def test_process_pool_matches_in_process(self, stream_suite, single_pipeline_baseline):
        results, run = run_class_pipelines(
            stream_suite,
            n_shards=2,
            n_workers=2,
            window_size=WINDOW,
            scoring_interval=SCORING_INTERVAL,
            batch_size=BATCH,
        )
        for expected, actual in zip(single_pipeline_baseline, results):
            assert np.array_equal(actual.change_points, expected.change_points)
        assert run.wall_seconds > 0
        assert run.shard_seconds

    def test_aggregate_metrics_sum_over_chains(self, stream_suite):
        _, run = run_class_pipelines(
            stream_suite,
            n_shards=3,
            window_size=WINDOW,
            scoring_interval=SCORING_INTERVAL,
            batch_size=BATCH,
        )
        aggregate = run.aggregate
        total_points = sum(dataset.n_timepoints for dataset in stream_suite)
        assert aggregate.n_source_records == total_points
        assert aggregate.n_source_batches == sum(
            -(-dataset.n_timepoints // BATCH) for dataset in stream_suite
        )
        assert aggregate.throughput > 0
        per_chain = [result.metrics.n_source_records for result in run.results.values()]
        assert sum(per_chain) == total_points


class TestOrderedMerge:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_merged_records_deterministic_across_shard_counts(self, n_shards):
        sharded = ShardedPipeline(n_shards, operator_factory=_double_chain)
        for index in range(3):
            sharded.add_source(ArraySource(np.arange(5, dtype=np.float64), stream=f"s{index}"))
        merged = sharded.run().merged_records()
        keys = [(record.stream, record.timestamp) for record in merged]
        assert keys == sorted(keys)
        assert len(merged) == 15
        assert [record.value for record in merged if record.stream == "s1"] == [
            0.0,
            2.0,
            4.0,
            6.0,
            8.0,
        ]

    def test_interleaved_records_routed_per_key_in_order(self):
        items = []
        for timestamp in range(6):
            stream = "even" if timestamp % 2 == 0 else "odd"
            items.append(Record(timestamp, float(timestamp), stream=stream))
        sharded = ShardedPipeline(2, operator_factory=_double_chain)
        sharded.add_records(items)
        run = sharded.run()
        assert set(run.keys) == {"even", "odd"}
        even_values = [record.value for record in run.results["even"].sink.records]
        assert even_values == [0.0, 4.0, 8.0]

    def test_interleaved_unsupported_item_rejected(self):
        sharded = ShardedPipeline(2, operator_factory=_double_chain)
        sharded.add_records([Record(0, 1.0), "not a record"])
        with pytest.raises(ConfigurationError, match="unsupported item"):
            sharded.run()


class TestPipelineSourceValidation:
    def test_unsupported_source_item_raises_clear_error(self):
        pipeline = Pipeline([Record(0, 1.0), 42], name="bad_source")
        with pytest.raises(ConfigurationError, match="unsupported item of type 'int'"):
            pipeline.run()

    def test_valid_items_still_flow(self):
        sink_values = []

        class _ListSink:
            def consume(self, record):
                sink_values.append(record.value)

        pipeline = Pipeline([Record(0, 1.0), Record(1, 2.0)])
        pipeline.add_sink(_ListSink())
        metrics = pipeline.run()
        assert metrics.n_source_records == 2
        assert sink_values == [1.0, 2.0]


class TestMultivariateParallelFanOut:
    @pytest.fixture(scope="class")
    def multivariate_stream(self):
        rng = np.random.default_rng(11)

        def channel(period):
            first = np.sin(2 * np.pi * np.arange(800) / period)
            second = 2.0 * np.sign(np.sin(2 * np.pi * np.arange(800) / (3 * period)))
            return np.concatenate([first, second]) + rng.normal(0, 0.05, 1_600)

        return np.stack([channel(20), channel(24), channel(28)], axis=1)

    @staticmethod
    def _make_ensemble():
        return MultivariateClaSS(
            n_channels=3,
            min_votes=2,
            fusion_tolerance=300,
            window_size=700,
            scoring_interval=25,
        )

    def test_parallel_channels_match_sequential(self, multivariate_stream):
        sequential = self._make_ensemble()
        sequential.process(multivariate_stream, chunk_size=128)
        parallel = self._make_ensemble()
        parallel.process(multivariate_stream, chunk_size=128, n_workers=2)

        assert np.array_equal(sequential.change_points, parallel.change_points)
        for expected, actual in zip(sequential.fused_reports, parallel.fused_reports):
            assert actual.change_point == expected.change_point
            assert actual.detected_at == expected.detected_at
            assert actual.supporting_channels == expected.supporting_channels
            assert actual.channel_change_points == expected.channel_change_points
        for expected, actual in zip(
            sequential.channel_change_points, parallel.channel_change_points
        ):
            assert np.array_equal(actual, expected)

    def test_streaming_continues_after_parallel_call(self, multivariate_stream):
        sequential = self._make_ensemble()
        parallel = self._make_ensemble()
        sequential.process(multivariate_stream, chunk_size=128)
        parallel.process(multivariate_stream, chunk_size=128, n_workers=2)
        tail = multivariate_stream[:120]
        sequential.process(tail, chunk_size=50)
        parallel.process(tail, chunk_size=50)
        assert sequential.n_seen == parallel.n_seen
        assert np.array_equal(sequential.change_points, parallel.change_points)

    def test_non_positive_workers_rejected(self, multivariate_stream):
        ensemble = self._make_ensemble()
        with pytest.raises(ConfigurationError, match="n_workers"):
            ensemble.process(multivariate_stream, n_workers=0)
