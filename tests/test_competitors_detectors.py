"""Behavioural tests for the drift/CPD competitors (BOCD, ChangeFinder, NEWMA,
ADWIN, DDM, HDDM, Page-Hinkley, Window)."""

import numpy as np
import pytest

from repro.competitors import (
    ADWIN,
    BOCD,
    DDM,
    HDDMA,
    HDDMW,
    NEWMA,
    ChangeFinder,
    PageHinkley,
    WindowSegmenter,
    get_competitor,
)
from repro.competitors.adapters import (
    OnlinePredictor,
    PredictionErrorBinarizer,
    StandardizedErrorStream,
)
from repro.competitors.change_finder import SDAR


def _mean_shift(rng, n_side=1_500, mean=5.0, noise=0.3):
    return np.concatenate([rng.normal(0, noise, n_side), rng.normal(mean, noise, n_side)])


def _near(change_points, target, tolerance):
    return any(abs(int(cp) - target) <= tolerance for cp in change_points)


class TestAdapters:
    def test_online_predictor_tracks_level(self):
        predictor = OnlinePredictor(order=5)
        for value in [1.0, 1.0, 1.0, 1.0, 1.0]:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(1.0)

    def test_binariser_flags_large_errors(self, rng):
        binariser = PredictionErrorBinarizer(order=5, tolerance=2.0)
        flags = [binariser.update(v) for v in rng.normal(0, 0.2, 300)]
        flags_after_shift = [binariser.update(v) for v in rng.normal(8, 0.2, 5)]
        assert sum(flags[50:]) <= 30            # few flags in the stationary part
        assert max(flags_after_shift) == 1      # the jump is flagged

    def test_standardised_error_stream_spikes_at_shift(self, rng):
        stream = StandardizedErrorStream(order=5)
        baseline = [stream.update(v) for v in rng.normal(0, 0.2, 300)]
        spike = [stream.update(v) for v in rng.normal(8, 0.2, 3)]
        assert max(spike) > max(baseline[50:])


class TestBOCD:
    def test_detects_clear_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=800, mean=6.0, noise=0.2)
        bocd = BOCD(hazard=1 / 300, run_length_drop=100, max_run_length=1_200)
        detected = bocd.process(values)
        assert _near(detected, 800, 150)

    def test_silent_on_stationary_noise(self, rng):
        bocd = BOCD(hazard=1 / 300, run_length_drop=150)
        assert bocd.process(rng.normal(0, 1, 1_500)).shape[0] == 0

    def test_run_length_truncation_bounds_state(self, rng):
        bocd = BOCD(max_run_length=50)
        bocd.process(rng.normal(0, 1, 500))
        assert bocd._run_probs.shape[0] <= 50

    def test_invalid_hazard(self):
        with pytest.raises(ValueError):
            BOCD(hazard=2.0)


class TestChangeFinder:
    def test_sdar_score_spikes_on_outlier(self, rng):
        sdar = SDAR(order=3, discount=0.02)
        for value in rng.normal(0, 0.3, 300):
            baseline = sdar.update(float(value))
        spike = sdar.update(10.0)
        assert spike > baseline + 1.0

    def test_detects_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=1_000, mean=5.0)
        finder = ChangeFinder()
        detected = finder.process(values)
        assert _near(detected, 1_000, 200)

    def test_few_detections_on_noise(self, rng):
        finder = ChangeFinder()
        detected = finder.process(rng.normal(0, 1, 2_000))
        assert detected.shape[0] <= 2


class TestNEWMA:
    def test_detects_variance_change(self, rng):
        values = np.concatenate([rng.normal(0, 0.3, 1_500), rng.normal(0, 3.0, 1_500)])
        newma = NEWMA()
        detected = newma.process(values)
        assert _near(detected, 1_500, 400)

    def test_invalid_forgetting_factors(self):
        with pytest.raises(ValueError):
            NEWMA(fast_forgetting=0.01, slow_forgetting=0.05)


class TestADWIN:
    def test_detects_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=1_200, mean=4.0, noise=0.5)
        adwin = ADWIN()
        detected = adwin.process(values)
        assert _near(detected, 1_200, 400)

    def test_window_statistics(self, rng):
        adwin = ADWIN()
        adwin.process(rng.normal(2.0, 0.1, 400))
        assert adwin.window_length > 0
        assert adwin.window_mean == pytest.approx(2.0, abs=0.2)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            ADWIN(delta=0.0)


class TestDDMAndHDDM:
    def test_ddm_detects_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=1_200, mean=6.0, noise=0.3)
        ddm = DDM(drift_factor=10.0)
        detected = ddm.process(values)
        assert _near(detected, 1_200, 400)

    def test_ddm_parameter_validation(self):
        with pytest.raises(ValueError):
            DDM(warning_factor=5.0, drift_factor=3.0)

    def test_hddm_a_detects_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=1_500, mean=6.0, noise=0.3)
        hddm = HDDMA(drift_confidence=1e-4, warning_confidence=1e-2)
        detected = hddm.process(values)
        assert _near(detected, 1_500, 500)

    def test_hddm_w_detects_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=1_500, mean=6.0, noise=0.3)
        hddm = HDDMW(drift_confidence=1e-4, warning_confidence=1e-2)
        detected = hddm.process(values)
        assert _near(detected, 1_500, 500)

    def test_hddm_parameter_validation(self):
        with pytest.raises(ValueError):
            HDDMA(drift_confidence=0.1, warning_confidence=0.01)
        with pytest.raises(ValueError):
            HDDMW(lambda_=0.0)


class TestPageHinkley:
    def test_detects_mean_shift(self, rng):
        values = _mean_shift(rng, n_side=1_000, mean=3.0, noise=0.3)
        detector = PageHinkley(threshold=30.0)
        detected = detector.process(values)
        assert _near(detected, 1_000, 300)

    def test_silent_on_constant_signal(self):
        detector = PageHinkley()
        assert detector.process(np.full(1_000, 2.0)).shape[0] == 0


class TestWindowSegmenter:
    def test_detects_mean_shift_at_buffer_centre(self, rng):
        values = _mean_shift(rng, n_side=1_000, mean=5.0)
        window = WindowSegmenter(window_size=300, cost="l2", threshold=0.5)
        detected = window.process(values)
        assert _near(detected, 1_000, 300)

    def test_ar_cost_detects_shape_change(self, rng):
        t = np.arange(1_200)
        values = np.concatenate(
            [np.sin(2 * np.pi * t / 20), rng.normal(0, 1, 1_200)]
        ) + rng.normal(0, 0.05, 2_400)
        window = WindowSegmenter(window_size=400, cost="ar", threshold=0.2)
        detected = window.process(values)
        assert _near(detected, 1_200, 400)

    def test_stride_reduces_checks(self, rng):
        values = _mean_shift(rng, n_side=600, mean=5.0)
        strided = WindowSegmenter(window_size=200, cost="l2", threshold=0.5, stride=25)
        detected = strided.process(values)
        assert _near(detected, 600, 300)


class TestRegistry:
    def test_every_registered_competitor_streams(self, rng):
        values = _mean_shift(rng, n_side=400, mean=5.0)
        from repro.competitors import COMPETITOR_REGISTRY

        for name in COMPETITOR_REGISTRY:
            kwargs = {}
            if name == "FLOSS":
                kwargs = {"window_size": 400, "subsequence_width": 20, "stride": 10}
            if name == "Window":
                kwargs = {"window_size": 150}
            competitor = get_competitor(name, **kwargs)
            competitor.process(values)
            assert competitor.n_seen == values.shape[0]

    def test_unknown_competitor(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_competitor("Prophet")
