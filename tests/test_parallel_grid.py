"""Equivalence and accounting tests for the process-pool evaluation grid.

The contract under test: ``evaluate_methods(..., n_workers=k)`` produces
records bit-identical to the sequential runner — same order, same change
points, same Covering/F1 — for every worker count, with per-worker
accounting attached; and the task specs it builds survive a pickle
round-trip (the property the process pool relies on).
"""

import pickle

import numpy as np
import pytest

from repro.datasets import make_tssb_like
from repro.evaluation import (
    build_grid_tasks,
    default_method_factories,
    evaluate_methods,
    run_experiment,
    run_method_on_dataset,
)
from repro.utils.exceptions import ConfigurationError

WINDOW = 500
SCORING_INTERVAL = 40
METHODS = ["ClaSS", "Window", "DDM"]


@pytest.fixture(scope="module")
def grid_suite():
    return make_tssb_like(n_series=2, length_scale=0.15, seed=2026)


@pytest.fixture(scope="module")
def grid_methods():
    return default_method_factories(
        window_size=WINDOW,
        scoring_interval=SCORING_INTERVAL,
        floss_stride=SCORING_INTERVAL,
        include=METHODS,
    )


@pytest.fixture(scope="module")
def sequential_result(grid_methods, grid_suite):
    return run_experiment(grid_methods, grid_suite)


def assert_records_identical(sequential, parallel):
    assert len(sequential.records) == len(parallel.records)
    for expected, actual in zip(sequential.records, parallel.records):
        assert actual.method == expected.method
        assert actual.dataset == expected.dataset
        assert actual.collection == expected.collection
        assert actual.n_timepoints == expected.n_timepoints
        assert actual.covering == expected.covering
        assert actual.f1 == expected.f1
        assert np.array_equal(actual.predicted_change_points, expected.predicted_change_points)
        assert np.array_equal(actual.detection_times, expected.detection_times)


class TestGridEquivalence:
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_parallel_grid_matches_sequential(
        self, grid_methods, grid_suite, sequential_result, n_workers
    ):
        parallel = evaluate_methods(grid_methods, grid_suite, n_workers=n_workers)
        assert_records_identical(sequential_result, parallel)

    def test_run_experiment_n_workers_delegates_to_grid(
        self, grid_methods, grid_suite, sequential_result
    ):
        parallel = run_experiment(grid_methods, grid_suite, n_workers=2)
        assert_records_identical(sequential_result, parallel)
        assert parallel.grid_stats is not None

    def test_single_worker_falls_back_to_sequential(self, grid_methods, grid_suite):
        result = evaluate_methods(grid_methods, grid_suite, n_workers=1)
        assert result.grid_stats is None
        assert len(result.records) == len(grid_suite) * len(METHODS)

    def test_explicit_chunksize_keeps_ordering(
        self, grid_methods, grid_suite, sequential_result
    ):
        parallel = evaluate_methods(grid_methods, grid_suite, n_workers=2, chunksize=1)
        assert_records_identical(sequential_result, parallel)


class TestGridAccounting:
    def test_worker_stats_cover_every_task(self, grid_methods, grid_suite):
        result = evaluate_methods(grid_methods, grid_suite, n_workers=2)
        stats = result.grid_stats
        assert stats.n_workers == 2
        assert stats.n_tasks == len(grid_suite) * len(METHODS)
        assert sum(worker.n_tasks for worker in stats.workers) == stats.n_tasks
        assert stats.wall_seconds > 0
        assert stats.busy_seconds > 0
        assert stats.speedup > 0
        rows = stats.as_rows()
        assert len(rows) == len(stats.workers)
        assert all(row["points_per_s"] > 0 for row in rows)


class TestGridValidation:
    @pytest.mark.parametrize("n_workers", [0, -2])
    def test_non_positive_workers_rejected(self, grid_methods, grid_suite, n_workers):
        with pytest.raises(ConfigurationError, match="n_workers"):
            evaluate_methods(grid_methods, grid_suite, n_workers=n_workers)
        with pytest.raises(ConfigurationError, match="n_workers"):
            run_experiment(grid_methods, grid_suite, n_workers=n_workers)

    def test_non_positive_chunksize_rejected(self, grid_methods, grid_suite):
        with pytest.raises(ConfigurationError, match="chunksize"):
            evaluate_methods(grid_methods, grid_suite, n_workers=2, chunksize=0)

    def test_empty_methods_rejected(self, grid_suite):
        with pytest.raises(ConfigurationError):
            evaluate_methods({}, grid_suite, n_workers=2)

    def test_unpicklable_factory_rejected_by_name(self, grid_suite):
        methods = {"bad_method": lambda dataset: None}
        with pytest.raises(ConfigurationError, match="bad_method"):
            evaluate_methods(methods, grid_suite, n_workers=2)


class TestTaskSpecPickling:
    def test_grid_tasks_round_trip(self, grid_methods, grid_suite):
        tasks = build_grid_tasks(grid_methods, grid_suite)
        assert [task.index for task in tasks] == list(range(len(tasks)))
        # dataset-major order, mirroring the sequential runner
        assert tasks[0].dataset.name == tasks[1].dataset.name == grid_suite[0].name
        restored = [pickle.loads(pickle.dumps(task)) for task in tasks]
        for original, copy in zip(tasks, restored):
            assert copy.index == original.index
            assert copy.method == original.method
            assert np.array_equal(copy.dataset.values, original.dataset.values)

    def test_restored_task_streams_identically(self, grid_methods, grid_suite):
        task = build_grid_tasks(grid_methods, grid_suite)[0]
        restored = pickle.loads(pickle.dumps(task))
        original_record = run_method_on_dataset(task.method, task.factory, task.dataset)
        restored_record = run_method_on_dataset(restored.method, restored.factory, restored.dataset)
        assert restored_record.covering == original_record.covering
        assert np.array_equal(
            restored_record.predicted_change_points, original_record.predicted_change_points
        )

    def test_all_default_factories_picklable(self):
        for name, factory in default_method_factories().items():
            clone = pickle.loads(pickle.dumps(factory))
            assert type(clone) is type(factory), name
