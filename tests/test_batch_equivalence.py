"""Batch-vs-pointwise equivalence of the chunked ingestion engine.

The chunked ingestion contract promises that feeding a stream through the
batch APIs — ``StreamingKNN.update_many``, ``ClaSS.process(values,
chunk_size=...)``, ``StreamSegmenter.process_chunk``, the engine's record
batches — is *bit-identical* to feeding it one observation at a time, for
every configuration: all three k-NN modes, scoring intervals larger than
one, streams shorter than the warm-up window, and the concept-drift
``relearn_width`` mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.competitors import get_competitor
from repro.competitors.floss import FLOSS
from repro.core.class_segmenter import ClaSS
from repro.core.multivariate import MultivariateClaSS
from repro.core.streaming_knn import KNN_MODES, StreamingKNN
from repro.streamengine import run_class_pipeline

#: Chunkings exercised against the per-point reference; deliberately ragged
#: so chunk boundaries fall before, on and after scoring/compaction points.
CHUNKINGS = (1, 7, 256, 1000)


def stream(rng, n=2_000):
    """A two-state stream with a change point in the middle."""
    half = n // 2
    t = np.arange(half)
    values = np.concatenate(
        [np.sin(2 * np.pi * t / 25), 2.0 * np.sign(np.sin(2 * np.pi * t / 60))]
    )
    return values + rng.normal(0.0, 0.1, 2 * half)


def feed_chunked(segmenter, values, chunk_size):
    """Drive ClaSS's batch path, accumulating each call's new detections."""
    detected = []
    for start in range(0, values.shape[0], chunk_size):
        got = segmenter.process(values[start : start + chunk_size], chunk_size=chunk_size)
        detected.extend(np.atleast_1d(got).tolist())
    return detected


class TestStreamingKNNEquivalence:
    @pytest.mark.parametrize("mode", KNN_MODES)
    @pytest.mark.parametrize("similarity", ("pearson", "euclidean", "cid"))
    def test_tables_bit_identical_for_any_chunking(self, rng, mode, similarity):
        values = stream(rng, 1_500)
        reference = StreamingKNN(
            window_size=300, subsequence_width=15, mode=mode, similarity=similarity
        )
        for value in values:
            reference.update(float(value))
        for chunk_size in CHUNKINGS:
            knn = StreamingKNN(
                window_size=300, subsequence_width=15, mode=mode, similarity=similarity
            )
            for start in range(0, values.shape[0], chunk_size):
                for _ in knn.update_many(values[start : start + chunk_size]):
                    pass
            assert np.array_equal(reference.knn_indices, knn.knn_indices)
            assert np.array_equal(reference.knn_similarities, knn.knn_similarities)
            assert np.array_equal(
                reference.last_similarity_profile, knn.last_similarity_profile
            )
            assert reference.n_seen == knn.n_seen
            assert reference.n_evicted == knn.n_evicted

    def test_ragged_mixed_chunk_sizes(self, rng):
        values = stream(rng, 1_200)
        reference = StreamingKNN(window_size=250, subsequence_width=12)
        for value in values:
            reference.update(float(value))
        knn = StreamingKNN(window_size=250, subsequence_width=12)
        position = 0
        for size in (1, 3, 499, 250, 2, 445):
            for _ in knn.update_many(values[position : position + size]):
                pass
            position += size
        assert position == values.shape[0]
        assert np.array_equal(reference.knn_indices, knn.knn_indices)
        assert np.array_equal(reference.knn_similarities, knn.knn_similarities)


class TestClaSSEquivalence:
    def reference_run(self, values, **kwargs):
        segmenter = ClaSS(window_size=1_000, **kwargs)
        detected = [
            cp for value in values if (cp := segmenter.update(float(value))) is not None
        ]
        return segmenter, detected

    def assert_identical(self, a: ClaSS, b: ClaSS):
        assert [
            (r.change_point, r.detected_at, r.score, r.p_value) for r in a.reports
        ] == [(r.change_point, r.detected_at, r.score, r.p_value) for r in b.reports]
        assert a.subsequence_width_ == b.subsequence_width_
        if a._knn is not None:
            assert np.array_equal(a._knn.knn_indices, b._knn.knn_indices)
            assert np.array_equal(a._knn.knn_similarities, b._knn.knn_similarities)

    @pytest.mark.parametrize("knn_mode", KNN_MODES)
    def test_all_knn_modes(self, rng, knn_mode):
        values = stream(rng)
        reference, detected = self.reference_run(values, scoring_interval=5, knn_mode=knn_mode)
        for chunk_size in CHUNKINGS:
            segmenter = ClaSS(window_size=1_000, scoring_interval=5, knn_mode=knn_mode)
            assert feed_chunked(segmenter, values, chunk_size) == detected
            self.assert_identical(reference, segmenter)

    @pytest.mark.parametrize("scoring_interval", (1, 3, 25))
    def test_scoring_intervals(self, rng, scoring_interval):
        values = stream(rng)
        reference, detected = self.reference_run(values, scoring_interval=scoring_interval)
        for chunk_size in CHUNKINGS:
            segmenter = ClaSS(window_size=1_000, scoring_interval=scoring_interval)
            assert feed_chunked(segmenter, values, chunk_size) == detected
            self.assert_identical(reference, segmenter)

    def test_stream_shorter_than_warmup(self, rng):
        values = stream(rng, 600)  # warm-up needs window_size=1000 observations
        reference = ClaSS(window_size=1_000, scoring_interval=5)
        for value in values:
            assert reference.update(float(value)) is None
        reference.finalise()
        for chunk_size in CHUNKINGS:
            segmenter = ClaSS(window_size=1_000, scoring_interval=5)
            assert feed_chunked(segmenter, values, chunk_size) == []
            segmenter.finalise()
            assert segmenter.change_points.tolist() == reference.change_points.tolist()
            assert segmenter.subsequence_width_ == reference.subsequence_width_

    def test_relearn_width(self, rng):
        values = stream(rng)
        reference, detected = self.reference_run(
            values, scoring_interval=7, relearn_width=True
        )
        for chunk_size in CHUNKINGS:
            segmenter = ClaSS(window_size=1_000, scoring_interval=7, relearn_width=True)
            assert feed_chunked(segmenter, values, chunk_size) == detected
            self.assert_identical(reference, segmenter)

    def test_explicit_subsequence_width_skips_warmup(self, rng):
        values = stream(rng)
        reference, detected = self.reference_run(
            values, scoring_interval=5, subsequence_width=20
        )
        segmenter = ClaSS(window_size=1_000, scoring_interval=5, subsequence_width=20)
        assert feed_chunked(segmenter, values, 256) == detected
        self.assert_identical(reference, segmenter)

    def test_update_is_single_element_process(self, rng):
        values = stream(rng, 1_400)
        a = ClaSS(window_size=700, scoring_interval=5)
        b = ClaSS(window_size=700, scoring_interval=5)
        for value in values:
            cp_a = a.update(float(value))
            batch = b.process(np.asarray([value]))
            cp_b = int(batch[-1]) if batch.size else None
            assert cp_a == cp_b


class TestMultivariateEquivalence:
    def test_fused_reports_identical(self, rng):
        n = 1_600
        channels = np.stack(
            [stream(rng, n), stream(rng, n), rng.normal(0.0, 1.0, n)], axis=1
        )
        kwargs = dict(
            n_channels=3,
            min_votes=2,
            fusion_tolerance=400,
            window_size=700,
            scoring_interval=5,
        )
        reference = MultivariateClaSS(**kwargs)
        for row in channels:
            reference.update(row)
        for chunk_size in (1, 128, 500):
            ensemble = MultivariateClaSS(**kwargs)
            ensemble.process(channels, chunk_size=chunk_size)
            assert np.array_equal(reference.change_points, ensemble.change_points)
            assert [
                (f.change_point, f.detected_at, tuple(f.supporting_channels))
                for f in reference.fused_reports
            ] == [
                (f.change_point, f.detected_at, tuple(f.supporting_channels))
                for f in ensemble.fused_reports
            ]


class TestCompetitorEquivalence:
    @pytest.mark.parametrize("name", ("ADWIN", "Window", "BOCD", "NEWMA"))
    def test_default_chunk_handler_matches_pointwise(self, rng, name):
        values = stream(rng, 1_500)
        reference = get_competitor(name)
        for value in values:
            reference.update(float(value))
        chunked = get_competitor(name)
        chunked.process(values, chunk_size=256)
        assert np.array_equal(reference.change_points, chunked.change_points)
        assert np.array_equal(reference.detection_times, chunked.detection_times)
        assert reference.n_seen == chunked.n_seen

    @pytest.mark.parametrize("stride", (1, 15))
    def test_floss_batched_knn_matches_pointwise(self, rng, stride):
        values = stream(rng, 2_400)
        reference = FLOSS(window_size=1_000, subsequence_width=25, stride=stride)
        for value in values:
            reference.update(float(value))
        for chunk_size in (1, 256, 1000):
            chunked = FLOSS(window_size=1_000, subsequence_width=25, stride=stride)
            chunked.process(values, chunk_size=chunk_size)
            assert np.array_equal(reference.change_points, chunked.change_points)
            assert np.array_equal(reference.detection_times, chunked.detection_times)


class TestEngineEquivalence:
    def test_batched_pipeline_emits_identical_events(self, small_dataset):
        pointwise = run_class_pipeline(small_dataset, window_size=900, scoring_interval=10)
        batched = run_class_pipeline(
            small_dataset, window_size=900, scoring_interval=10, batch_size=256
        )
        assert np.array_equal(pointwise.change_points, batched.change_points)
        assert np.array_equal(pointwise.detection_delays, batched.detection_delays)
        assert batched.metrics.n_source_records == pointwise.metrics.n_source_records
        assert batched.metrics.n_source_batches == -(-len(small_dataset.values) // 256)
        assert pointwise.metrics.n_source_batches == 0
