#!/usr/bin/env python
"""Docstring completeness gate for the public API (``repro.api``).

Everything a user can reach through the unified detector API must be
documented well enough to use without reading the source: every symbol in
``repro.api.__all__`` and every registry key's typed config class needs a
docstring that

* names every parameter (function parameters, or constructor/dataclass
  fields for classes),
* states what is returned (functions with a non-``None`` return),
* lists what is raised (callables whose body contains a ``raise``),
* and shows at least one example (a doctest ``>>>`` block or an
  ``Example``/``Examples`` section).

Module-level data constants (no useful ``__doc__`` at runtime) are listed in
``DATA_CONSTANTS`` and exempt; everything else fails loudly with one line
per missing piece.  Run next to the api-surface gate in CI::

    PYTHONPATH=src python scripts/check_docstrings.py
"""

from __future__ import annotations

import ast
import inspect
import re
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Module-level data (not callables/classes): a runtime ``__doc__`` is the
#: type's, not the constant's — these are documented at their definition
#: site and in the generated reference instead.
DATA_CONSTANTS = {"CHECKPOINT_FORMAT", "EVENT_KINDS"}

#: Parameter names that never need documenting.
IMPLICIT_PARAMS = {"self", "cls", "args", "kwargs"}


def _word(name: str, text: str) -> bool:
    """Whether ``name`` appears as a whole word in ``text``."""
    return re.search(rf"\b{re.escape(name)}\b", text) is not None


def _has_example(doc: str) -> bool:
    return ">>>" in doc or re.search(r"^\s*Examples?\s*$", doc, re.MULTILINE) is not None


def _body_raises(obj) -> bool:
    """Whether the callable's own body contains a ``raise`` statement."""
    try:
        source = textwrap.dedent(inspect.getsource(obj))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return False
    return any(isinstance(node, ast.Raise) for node in ast.walk(tree))


def _documentable_params(obj) -> list[str]:
    """Parameter names the docstring must mention."""
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return []
    return [
        name
        for name, parameter in signature.parameters.items()
        if name not in IMPLICIT_PARAMS and not name.startswith("_")
    ]


def _returns_value(obj) -> bool:
    """Whether a function's annotated return is something other than None."""
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return False
    annotation = signature.return_annotation
    if annotation is inspect.Signature.empty:
        return True  # undeclared: assume it returns something worth stating
    return annotation not in (None, "None", type(None))


def check_symbol(qualified: str, obj) -> list[str]:
    """Return one problem line per missing docstring piece (empty = ok)."""
    problems = []
    doc = inspect.getdoc(obj) or ""
    if len(doc.strip()) < 20:
        return [f"{qualified}: missing (or trivial) docstring"]

    if inspect.isclass(obj):
        params = _documentable_params(obj.__init__)
        raises = _body_raises(obj.__init__) or (
            hasattr(obj, "validate") and _body_raises(obj.validate)
        )
        returns = False
    elif callable(obj):
        params = _documentable_params(obj)
        raises = _body_raises(obj)
        returns = _returns_value(obj)
    else:
        return problems  # data: presence already checked above

    for name in params:
        if not _word(name, doc):
            problems.append(f"{qualified}: parameter {name!r} not documented")
    if returns and not re.search(r"\breturns?\b|\byields?\b", doc, re.IGNORECASE):
        problems.append(f"{qualified}: return value not documented")
    if raises and not re.search(r"\braises?\b", doc, re.IGNORECASE):
        problems.append(f"{qualified}: raised exceptions not documented")
    if not _has_example(doc):
        problems.append(f"{qualified}: no Example (>>> block or Example section)")
    return problems


def check_api() -> list[str]:
    """Audit ``repro.api.__all__`` plus every registry config class."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro import api

    problems = []
    for name in sorted(api.__all__):
        if name in DATA_CONSTANTS:
            continue
        problems.extend(check_symbol(f"repro.api.{name}", getattr(api, name)))
    for key in api.available():
        config_cls = api.spec(key).config_cls
        problems.extend(check_symbol(f"registry[{key!r}].{config_cls.__name__}", config_cls))
    return sorted(set(problems))


def main() -> int:
    problems = check_api()
    if problems:
        print(f"docstring gate FAILED ({len(problems)} problem(s)):", file=sys.stderr)
        for line in problems:
            print(f"  - {line}", file=sys.stderr)
        return 1
    from repro import api

    n_symbols = len(set(api.__all__) - DATA_CONSTANTS) + len(api.available())
    print(f"docstring gate passed ({n_symbols} public symbols audited)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
