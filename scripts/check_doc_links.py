#!/usr/bin/env python
"""Link check over the built docs site and the README.

Two passes, both purely local (no network):

* every internal ``href``/``src`` in the built HTML under the site directory
  must point at a file that exists in the site (fragments are stripped;
  ``http(s)://`` and ``mailto:`` links are skipped);
* every local markdown link in ``README.md`` (and any extra markdown files
  passed on the command line) must point at an existing path in the repo.

Usage::

    python scripts/check_doc_links.py [--site docs/_site] [readme.md ...]

Exit status 0 when every link resolves, 1 otherwise (each broken link is
printed to stderr).  The CI docs job runs this right after ``docs/build.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from html.parser import HTMLParser
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Link targets that are not files in this repo.
_EXTERNAL = ("http://", "https://", "mailto:", "data:")

#: Inline markdown links: ``[text](target)`` — images included via the
#: leading ``!?``; reference-style definitions are matched separately.
_MD_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)[^)]*\)")
_MD_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)


class _LinkCollector(HTMLParser):
    """Collect every href/src attribute of a page."""

    def __init__(self) -> None:
        super().__init__()
        self.links: list[str] = []

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        for attribute, value in attrs:
            if attribute in ("href", "src") and value:
                self.links.append(value)


def _is_external(target: str) -> bool:
    return target.startswith(_EXTERNAL)


def check_site(site_dir: Path) -> list[str]:
    """Broken internal links in the built HTML under ``site_dir``."""
    problems: list[str] = []
    pages = sorted(site_dir.glob("**/*.html"))
    if not pages:
        return [f"{site_dir}: no built HTML pages found (run docs/build.py first)"]
    for page in pages:
        collector = _LinkCollector()
        collector.feed(page.read_text())
        for link in collector.links:
            if _is_external(link):
                continue
            target = link.split("#", 1)[0]
            if not target:  # pure fragment: same-page anchor
                continue
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{page.relative_to(site_dir)}: broken link {link!r}")
    return problems


def check_markdown(markdown_path: Path) -> list[str]:
    """Broken local links in one markdown file."""
    if not markdown_path.exists():
        return [f"{markdown_path}: file not found"]
    text = markdown_path.read_text()
    targets = _MD_LINK.findall(text) + _MD_REF_DEF.findall(text)
    problems: list[str] = []
    for raw in targets:
        if _is_external(raw) or raw.startswith("#"):
            continue
        target = raw.split("#", 1)[0]
        if not target:
            continue
        resolved = (markdown_path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{markdown_path.name}: broken link {raw!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--site",
        type=Path,
        default=REPO_ROOT / "docs" / "_site",
        help="built site directory (default docs/_site)",
    )
    parser.add_argument(
        "markdown",
        nargs="*",
        type=Path,
        default=[REPO_ROOT / "README.md"],
        help="markdown files to check (default README.md)",
    )
    args = parser.parse_args(argv)

    problems = check_site(args.site)
    for markdown_path in args.markdown:
        problems.extend(check_markdown(markdown_path))

    if problems:
        for problem in problems:
            print(f"broken: {problem}", file=sys.stderr)
        print(f"link check failed: {len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"link check passed ({args.site} + {len(args.markdown)} markdown file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
