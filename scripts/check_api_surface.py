#!/usr/bin/env python
"""Public-API surface gate: fail CI on silent breakage of ``repro.api``.

The committed ``api_surface.txt`` pins the public surface of the unified
detector API — every name in ``repro.api.__all__`` plus every registry key
with its config class.  This script rebuilds the surface from a live import
and diffs it against the committed file:

* an entry missing from the live surface is a silent breaking change — the
  gate fails,
* a new live entry not in the file means the surface grew without the
  change being committed deliberately — the gate fails too.

Run ``python scripts/check_api_surface.py --update`` after an intentional
surface change to rewrite the pin, and commit the diff alongside the code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SURFACE_FILE = REPO_ROOT / "api_surface.txt"

HEADER = (
    "# Pinned public surface of repro.api (see scripts/check_api_surface.py).\n"
    "# Regenerate deliberately with: python scripts/check_api_surface.py --update\n"
)


def current_surface() -> list[str]:
    """The live API surface: exported names plus registry key -> config pairs."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro import api

    lines = [f"api:{name}" for name in sorted(api.__all__)]
    for key in api.available():
        lines.append(f"registry:{key}={api.spec(key).config_cls.__name__}")
    return lines


def committed_surface(path: Path) -> list[str]:
    """The pinned surface entries (comments and blank lines ignored)."""
    lines = path.read_text().splitlines()
    return [line.strip() for line in lines if line.strip() and not line.startswith("#")]


def check(path: Path = DEFAULT_SURFACE_FILE) -> tuple[list[str], list[str]]:
    """Return (removed, added) entries relative to the committed surface."""
    live = set(current_surface())
    pinned = set(committed_surface(path))
    return sorted(pinned - live), sorted(live - pinned)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--surface-file",
        type=Path,
        default=DEFAULT_SURFACE_FILE,
        help="pinned surface file (default: api_surface.txt at the repo root)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the pinned surface from the live import instead of checking",
    )
    args = parser.parse_args(argv)

    if args.update:
        lines = current_surface()
        args.surface_file.write_text(HEADER + "\n".join(lines) + "\n")
        print(f"wrote {len(lines)} surface entries to {args.surface_file}")
        return 0

    if not args.surface_file.exists():
        print(f"error: pinned surface file {args.surface_file} is missing", file=sys.stderr)
        return 1
    removed, added = check(args.surface_file)
    if removed:
        print("REMOVED from the public API surface (breaking change?):", file=sys.stderr)
        for line in removed:
            print(f"  - {line}", file=sys.stderr)
    if added:
        print("ADDED to the public API surface (commit the updated pin):", file=sys.stderr)
        for line in added:
            print(f"  + {line}", file=sys.stderr)
    if removed or added:
        print(
            "api surface drifted; run `python scripts/check_api_surface.py --update` "
            "and commit api_surface.txt if the change is intentional",
            file=sys.stderr,
        )
        return 1
    print(f"api surface ok ({len(committed_surface(args.surface_file))} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
