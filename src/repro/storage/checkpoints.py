"""Periodic detector-state snapshots for "re-segment from T".

A :class:`CheckpointIndex` is a directory of CRC-framed checkpoint files
(the same ``repro.api.checkpoint`` framing the CLI and the service spool
use), one per snapshot, named by the observation count they were taken at::

    checkpoints/
        ckpt-000000000000.ckpt      # detector state after 0 observations
        ckpt-000000004096.ckpt      # ... after 4096
        ckpt-000000008192.ckpt

``load_at_or_before(t)`` walks newest-first and returns the first envelope
whose position is ``<= t`` — the replay anchor for
:meth:`repro.storage.store.StreamStore.resegment`.  A corrupt file (torn
write, bit rot) is skipped with a warning rather than failing the seek:
losing one snapshot only means replaying a little more input.
"""

from __future__ import annotations

import logging
import re
from pathlib import Path
from typing import Any

from repro.api.checkpoint import (
    detector_key_for,
    read_payload_file,
    write_payload_file,
)
from repro.utils.exceptions import ConfigurationError, CorruptCheckpointError

logger = logging.getLogger(__name__)

#: Envelope format marker for stored snapshots.
INDEX_FORMAT = "repro.storeckpt/1"
#: Snapshot file pattern — the number is the detector's ``n_seen``.
CKPT_NAME = re.compile(r"^ckpt-(\d{12})\.ckpt$")


class CheckpointIndex:
    """Snapshots of detector state keyed by observation position.

    Parameters
    ----------
    directory:
        Directory the ``ckpt-*.ckpt`` files live in (created if missing).
    fsync:
        Fsync each written snapshot (snapshots are replay anchors; losing
        one is survivable, so tests may disable this for speed).
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync

    def _path_for(self, n_seen: int) -> Path:
        return self.directory / f"ckpt-{int(n_seen):012d}.ckpt"

    def positions(self) -> list[int]:
        """Observation positions with a stored snapshot, ascending."""
        positions = []
        for path in self.directory.iterdir():
            match = CKPT_NAME.match(path.name)
            if match:
                positions.append(int(match.group(1)))
        return sorted(positions)

    def __len__(self) -> int:
        return len(self.positions())

    def add(
        self,
        segmenter,
        *,
        detector: str | None = None,
        config: dict | None = None,
    ) -> Path:
        """Snapshot a live segmenter at its current ``n_seen``; return the path.

        The envelope records the detector's registry key and (canonical)
        config alongside the ``save_state()`` payload, so a later
        ``resegment`` can tell whether the stored run and the requested
        replay share a configuration.
        """
        n_seen = int(segmenter.n_seen)
        envelope: dict[str, Any] = {
            "format": INDEX_FORMAT,
            "n_seen": n_seen,
            "detector": detector if detector is not None else detector_key_for(segmenter),
            "config": config,
            "state": segmenter.save_state(),
        }
        return write_payload_file(self._path_for(n_seen), envelope, fsync=self.fsync)

    def load_at_or_before(self, t: int) -> dict[str, Any] | None:
        """Newest intact snapshot envelope at position ``<= t``, else ``None``.

        Corrupt snapshot files are skipped (with a warning) — the caller
        just replays from an earlier anchor, or from the stream start.
        """
        t = int(t)
        if t < 0:
            raise ConfigurationError("checkpoint position must be non-negative")
        for n_seen in reversed(self.positions()):
            if n_seen > t:
                continue
            path = self._path_for(n_seen)
            try:
                envelope = read_payload_file(path)
            except (CorruptCheckpointError, OSError) as error:
                logger.warning("skipping corrupt snapshot %s: %s", path, error)
                continue
            if isinstance(envelope, dict) and envelope.get("format") == INDEX_FORMAT:
                return envelope
            logger.warning("skipping snapshot %s with unexpected format", path)
        return None

    def prune(self, keep: int) -> int:
        """Delete all but the newest ``keep`` snapshots; return how many went."""
        if keep < 0:
            raise ConfigurationError("keep must be non-negative")
        doomed = self.positions()[:-keep] if keep else self.positions()
        for n_seen in doomed:
            self._path_for(n_seen).unlink(missing_ok=True)
        return len(doomed)

    def clear(self) -> int:
        """Delete every snapshot (a fresh segmentation run starts clean)."""
        return self.prune(0)
