"""Bounded event history: a memory window backed by a disk spill log.

The service used to keep every event a stream ever emitted in a Python
list — unbounded growth for long-lived streams.  :class:`StreamHistory`
replaces that list with a fixed-size memory window (a deque of the newest
``window`` events) plus an optional :class:`~repro.storage.eventlog.EventLog`
spill: events evicted from the window are appended to the log *before*
leaving memory, so a ``?since=`` cursor older than the window is served
from disk and the replay contract survives bounding.

Without a spill path the history degrades gracefully: evicted events are
simply gone, and a cursor pointing before the window raises
:class:`~repro.utils.exceptions.HistoryTruncatedError` carrying the oldest
cursor that can still be served (the service maps it to a typed 410).

Cursor semantics are unchanged from the unbounded list: a cursor is the
count of events already seen, ``read_since(cursor)`` returns everything at
or after it plus the new cursor (the total event count).
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any

from repro.storage.eventlog import EventLog
from repro.utils.exceptions import HistoryTruncatedError

#: Default memory window (events) for service streams.
DEFAULT_HISTORY_WINDOW = 4_096


class StreamHistory:
    """Append-ordered event history with a bounded memory window.

    Parameters
    ----------
    window:
        Newest events kept in memory; ``None`` means unbounded (the
        pre-storage behaviour, nothing ever spills).
    spill_path:
        Record file for evicted events.  ``None`` with a finite window
        means evicted events are dropped and old cursors get a
        :class:`~repro.utils.exceptions.HistoryTruncatedError`.
    """

    def __init__(
        self,
        *,
        window: int | None = DEFAULT_HISTORY_WINDOW,
        spill_path: str | Path | None = None,
    ) -> None:
        self.window = window
        self._memory: deque[dict] = deque()
        #: Cursor of the oldest event still in memory.
        self._base = 0
        #: Total events ever appended (== the next cursor).
        self._total = 0
        self._spill_path = Path(spill_path) if spill_path is not None else None
        self._spill: EventLog | None = None

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._total

    @property
    def earliest(self) -> int:
        """Oldest cursor that can still be served (0 when nothing was lost)."""
        return 0 if self._spill_path is not None else self._base

    @property
    def n_spilled(self) -> int:
        """Events currently living only on disk."""
        return self._base if self._spill is not None else 0

    def _ensure_spill(self) -> EventLog | None:
        if self._spill is None and self._spill_path is not None:
            # the spill is rebuildable history, not a write-ahead log: no fsync
            self._spill = EventLog(self._spill_path, fsync=False)
        return self._spill

    def append(self, events: list[dict]) -> int:
        """Append event payloads; spill overflow; return the new cursor."""
        self._memory.extend(events)
        self._total += len(events)
        if self.window is not None:
            while len(self._memory) > self.window:
                evicted = self._memory.popleft()
                spill = self._ensure_spill()
                if spill is not None:
                    # clamp: the spill's time index needs monotone keys, and
                    # a client-visible publish must never fail on a quirky at
                    at = max(spill.last_at, int(evicted.get("at", 0) or 0))
                    spill.append(at, evicted)
                self._base += 1
        return self._total

    def read_since(self, cursor: int) -> tuple[list[dict], int]:
        """Events with position ``>= cursor`` plus the new cursor.

        Serves the disk spill for cursors older than the memory window.

        Raises
        ------
        HistoryTruncatedError
            When ``cursor`` predates both the memory window and any spill —
            those events are gone; the exception's ``earliest`` is the
            oldest cursor that still works.
        """
        cursor = max(0, int(cursor))
        if cursor >= self._base:
            start = cursor - self._base
            tail = list(self._memory)[start:] if start < len(self._memory) else []
            return tail, self._total
        spill = self._ensure_spill()
        if spill is None:
            raise HistoryTruncatedError(
                f"cursor {cursor} predates the retained history window "
                f"(earliest available: {self._base})",
                earliest=self._base,
            )
        spilled = spill.read_since(cursor)
        return spilled + list(self._memory), self._total

    def snapshot(self) -> list[dict]:
        """Every event still reachable (disk spill + memory), oldest first."""
        events, _ = self.read_since(self.earliest)
        return events

    def info(self) -> dict[str, Any]:
        """JSON-safe counters: totals, window occupancy, spill size."""
        return {
            "n_events": self._total,
            "in_memory": len(self._memory),
            "spilled": self.n_spilled,
            "window": self.window,
            "earliest": self.earliest,
        }

    def close(self) -> None:
        """Close the spill log handle (the files stay for a later reopen)."""
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    def discard(self) -> None:
        """Close and delete the spill files (stream deletion)."""
        self.close()
        if self._spill_path is not None:
            self._spill_path.unlink(missing_ok=True)
            self._spill_path.with_name(self._spill_path.name + ".idx").unlink(missing_ok=True)
