"""Time-partitioned, memory-mapped chunk store for stream inputs.

One stored stream is a directory of append-only ``.npy`` **segment files**
plus an atomically rewritten ``manifest.json`` naming them::

    <stream>/
        manifest.json            # format, dtype, layout, segment table
        segments/
            seg-00000000.npy     # rows [0, segment_rows)
            seg-00000001.npy     # rows [segment_rows, 2*segment_rows)
            ...

The design follows the write path of an LSM/time-series store:

* :class:`ChunkStoreWriter` buffers at most one segment's worth of rows in
  memory, serialises each full segment to bytes, CRC-32s them, writes the
  file tmp + fsync + rename, and only then appends the segment to the
  manifest (itself rewritten tmp + fsync + rename).  A crash therefore
  leaves either a ``*.tmp`` file or a segment file the manifest does not
  know about — never a manifest entry pointing at torn data — and
  :func:`recover_chunk_store` cleans both up.
* :class:`StoredStream` opens segments with ``np.load(..., mmap_mode="r")``
  and exposes a zero-copy chunk iterator, so a reader's resident memory is
  bounded by one segment regardless of stream length: each segment's pages
  are unmapped as soon as the iterator moves past it.

Integrity: every manifest entry records the segment's byte length and
CRC-32.  Opening a stream validates the (cheap) byte lengths and raises
:class:`~repro.utils.exceptions.CorruptRecordError` on a mismatch instead
of silently serving torn rows; :meth:`StoredStream.verify` re-reads every
segment and checks the CRCs.
"""

from __future__ import annotations

import io
import json
import logging
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.utils.exceptions import ConfigurationError, CorruptRecordError, StorageError

logger = logging.getLogger(__name__)

#: Manifest format marker.
MANIFEST_FORMAT = "repro.chunkstore/1"
#: Manifest file name inside a stream directory.
MANIFEST_NAME = "manifest.json"
#: Sub-directory holding the segment files.
SEGMENT_DIR = "segments"
#: Segment file name pattern (index zero-padded for lexical order).
SEGMENT_NAME = re.compile(r"^seg-(\d{8})\.npy$")
#: Default rows per segment — 2 MiB of univariate float64.
DEFAULT_SEGMENT_ROWS = 262_144


def write_json_atomic(path: Path, payload: dict, *, fsync: bool = True) -> None:
    """Write a JSON document tmp + flush (+ fsync) + rename, like a checkpoint."""
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_directory(path.parent)


def fsync_directory(directory: Path) -> None:
    """Fsync a directory so a rename inside it is durable."""
    handle = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


def release_memmap(array) -> None:
    """Unmap a ``np.memmap``'s pages as soon as the reader is done with it.

    Dropping resident file pages promptly is what keeps a whole-stream scan
    at one-segment RSS.  When the caller still holds a view into the map the
    close raises ``BufferError``; the map then simply lives until the view
    is garbage-collected — correctness is never affected.
    """
    mapping = getattr(array, "_mmap", None)
    if mapping is None:
        return
    try:
        mapping.close()
    except (BufferError, ValueError):
        pass


def _load_manifest(directory: Path) -> dict:
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise StorageError(f"no chunk-store manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise CorruptRecordError(f"manifest {path} is unreadable: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise StorageError(
            f"manifest {path} has format {manifest.get('format')!r}; "
            f"expected {MANIFEST_FORMAT!r}"
        )
    return manifest


@dataclass
class ChunkStoreRecovery:
    """What :func:`recover_chunk_store` did to bring a store back to consistency."""

    #: Manifest entries dropped because their file was missing or short.
    dropped_segments: list[str] = field(default_factory=list)
    #: Orphan files deleted (tmp files, segments unknown to the manifest).
    removed_files: list[str] = field(default_factory=list)
    #: Durable row count before and after recovery.
    n_rows_before: int = 0
    n_rows_after: int = 0

    @property
    def clean(self) -> bool:
        """True when the store needed no repair at all."""
        return not self.dropped_segments and not self.removed_files


def recover_chunk_store(directory: str | Path, *, fsync: bool = True) -> ChunkStoreRecovery:
    """Repair a chunk store after a crash; return what was done.

    Walks the manifest in order and truncates it at the first segment whose
    file is missing or shorter than recorded (a torn write can only affect
    the tail — segments are sealed strictly in order).  Any file in the
    segment directory that the surviving manifest does not reference —
    ``*.tmp`` remnants, segments renamed but not yet committed to the
    manifest — is deleted.  Idempotent; a clean store is left untouched.
    """
    directory = Path(directory)
    manifest = _load_manifest(directory)
    segments_dir = directory / SEGMENT_DIR
    report = ChunkStoreRecovery(n_rows_before=int(manifest.get("n_rows", 0)))

    kept: list[dict] = []
    truncated = False
    for entry in manifest.get("segments", []):
        path = segments_dir / entry["file"]
        if not truncated and path.exists() and path.stat().st_size == int(entry["bytes"]):
            kept.append(entry)
            continue
        truncated = True
        report.dropped_segments.append(entry["file"])

    referenced = {entry["file"] for entry in kept}
    if segments_dir.exists():
        for path in sorted(segments_dir.iterdir()):
            if path.name in referenced:
                continue
            report.removed_files.append(path.name)
            path.unlink(missing_ok=True)

    report.n_rows_after = sum(int(entry["rows"]) for entry in kept)
    if report.dropped_segments or report.n_rows_after != report.n_rows_before:
        manifest["segments"] = kept
        manifest["n_rows"] = report.n_rows_after
        write_json_atomic(directory / MANIFEST_NAME, manifest, fsync=fsync)
        logger.warning(
            "chunk store %s recovered: dropped %d segment(s), removed %d file(s), "
            "%d -> %d durable rows",
            directory, len(report.dropped_segments), len(report.removed_files),
            report.n_rows_before, report.n_rows_after,
        )
    return report


class ChunkStoreWriter:
    """Append-only writer of one stored stream (constant memory).

    Parameters
    ----------
    directory:
        The stream's directory (created if missing).  Reopening a directory
        that already holds a manifest continues appending after an implicit
        :func:`recover_chunk_store` pass.
    dtype:
        Element dtype rows are cast to on append (default ``float64``).
    columns:
        0 for a univariate 1-d stream, else the channel count of ``(n,
        columns)`` rows.  Must match the manifest when reopening.
    segment_rows:
        Rows per sealed segment file; the writer never buffers more than
        this many rows in memory.
    fsync:
        Fsync segment files and manifest rewrites (disable only in tests).

    Raises
    ------
    ConfigurationError
        On a non-positive ``segment_rows``, negative ``columns``, or a
        dtype/layout mismatch with an existing manifest.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        dtype: str | np.dtype = np.float64,
        columns: int = 0,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        fsync: bool = True,
    ) -> None:
        if not isinstance(segment_rows, int) or segment_rows < 1:
            raise ConfigurationError("segment_rows must be a positive integer")
        if not isinstance(columns, int) or columns < 0:
            raise ConfigurationError("columns must be a non-negative integer")
        self.directory = Path(directory)
        self.segments_dir = self.directory / SEGMENT_DIR
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            recover_chunk_store(self.directory, fsync=fsync)
            self.manifest = _load_manifest(self.directory)
            if np.dtype(self.manifest["dtype"]) != np.dtype(dtype):
                raise ConfigurationError(
                    f"store {self.directory} holds dtype {self.manifest['dtype']!r}, "
                    f"cannot append {np.dtype(dtype).str!r}"
                )
            if int(self.manifest["columns"]) != columns:
                raise ConfigurationError(
                    f"store {self.directory} holds {self.manifest['columns']} column(s), "
                    f"cannot append {columns}"
                )
            self.segment_rows = int(self.manifest["segment_rows"])
        else:
            self.segment_rows = segment_rows
            self.manifest = {
                "format": MANIFEST_FORMAT,
                "dtype": np.dtype(dtype).str,
                "columns": columns,
                "segment_rows": segment_rows,
                "n_rows": 0,
                "segments": [],
            }
            write_json_atomic(manifest_path, self.manifest, fsync=fsync)
        self.dtype = np.dtype(self.manifest["dtype"])
        self.columns = int(self.manifest["columns"])
        self._buffer: list[np.ndarray] = []
        self._buffered = 0

    # ------------------------------------------------------------------ #

    @property
    def n_rows(self) -> int:
        """Rows already durable on disk (excludes the in-memory buffer)."""
        return int(self.manifest["n_rows"])

    @property
    def pending_rows(self) -> int:
        """Rows buffered in memory, not yet sealed into a segment."""
        return self._buffered

    def append(self, values) -> "ChunkStoreWriter":
        """Buffer rows; seal full segments to disk as the buffer fills.

        ``values`` is cast to the store dtype and must be 1-d (univariate
        store) or ``(n, columns)``; raises
        :class:`~repro.utils.exceptions.ConfigurationError` otherwise.
        """
        array = np.asarray(values, dtype=self.dtype)
        if self.columns == 0:
            if array.ndim != 1:
                raise ConfigurationError(
                    f"univariate store expects 1-d rows, got shape {array.shape}"
                )
        elif array.ndim != 2 or array.shape[1] != self.columns:
            raise ConfigurationError(
                f"store expects (n, {self.columns}) rows, got shape {array.shape}"
            )
        if array.shape[0] == 0:
            return self
        self._buffer.append(array)
        self._buffered += array.shape[0]
        while self._buffered >= self.segment_rows:
            self._seal(self.segment_rows)
        return self

    def flush(self) -> "ChunkStoreWriter":
        """Seal any buffered rows as a (possibly short) final segment."""
        if self._buffered:
            self._seal(self._buffered)
        return self

    def close(self) -> None:
        """Flush; the writer can be reopened on the same directory later."""
        self.flush()

    def __enter__(self) -> "ChunkStoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _take(self, n: int) -> np.ndarray:
        """Remove and return the first ``n`` buffered rows as one array."""
        pieces: list[np.ndarray] = []
        needed = n
        while needed:
            head = self._buffer[0]
            if head.shape[0] <= needed:
                pieces.append(head)
                needed -= head.shape[0]
                self._buffer.pop(0)
            else:
                pieces.append(head[:needed])
                self._buffer[0] = head[needed:]
                needed = 0
        self._buffered -= n
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def _seal(self, n: int) -> None:
        """Write one segment file atomically, then commit it to the manifest."""
        array = np.ascontiguousarray(self._take(n))
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, array, allow_pickle=False)
        data = buffer.getvalue()
        name = f"seg-{len(self.manifest['segments']):08d}.npy"
        path = self.segments_dir / name
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fsync:
            fsync_directory(self.segments_dir)
        self.manifest["segments"].append(
            {
                "file": name,
                "start": int(self.manifest["n_rows"]),
                "rows": int(n),
                "bytes": len(data),
                "crc32": zlib.crc32(data),
            }
        )
        self.manifest["n_rows"] = int(self.manifest["n_rows"]) + int(n)
        write_json_atomic(self.directory / MANIFEST_NAME, self.manifest, fsync=self.fsync)


class StoredStream:
    """Zero-copy reader over a stored stream's memory-mapped segments.

    Opening validates the manifest and every segment's on-disk byte length;
    a mismatch raises :class:`~repro.utils.exceptions.CorruptRecordError`
    (run :func:`recover_chunk_store` to truncate the torn tail).  All reads
    go through ``np.load(..., mmap_mode="r")``, so arbitrarily long streams
    are served at one-segment resident memory.
    """

    def __init__(self, directory: str | Path, *, name: str | None = None) -> None:
        self.directory = Path(directory)
        self.name = name if name is not None else self.directory.name
        self.manifest = _load_manifest(self.directory)
        self.dtype = np.dtype(self.manifest["dtype"])
        self.columns = int(self.manifest["columns"])
        self.segments: list[dict] = list(self.manifest["segments"])
        self.n_rows = int(self.manifest["n_rows"])
        segments_dir = self.directory / SEGMENT_DIR
        for entry in self.segments:
            path = segments_dir / entry["file"]
            if not path.exists():
                raise CorruptRecordError(
                    f"stored stream {self.name!r}: segment {entry['file']} is missing; "
                    "run repro.storage.recover_chunk_store() to truncate the store"
                )
            size = path.stat().st_size
            if size != int(entry["bytes"]):
                raise CorruptRecordError(
                    f"stored stream {self.name!r}: segment {entry['file']} holds "
                    f"{size} byte(s), manifest records {entry['bytes']} — torn write; "
                    "run repro.storage.recover_chunk_store() to truncate the store"
                )

    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        """``(n_rows,)`` for univariate stores, ``(n_rows, columns)`` otherwise."""
        if self.columns == 0:
            return (self.n_rows,)
        return (self.n_rows, self.columns)

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all segments (excluding npy headers)."""
        return self.n_rows * max(1, self.columns) * self.dtype.itemsize

    def __len__(self) -> int:
        return self.n_rows

    def _segment_array(self, entry: dict) -> np.ndarray:
        return np.load(self.directory / SEGMENT_DIR / entry["file"], mmap_mode="r")

    def iter_chunks(
        self,
        chunk_size: int | None = None,
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield zero-copy row chunks of at most ``chunk_size`` rows.

        Chunks never cross a segment boundary (so they stay views into one
        mapping), which means a chunk may be shorter than ``chunk_size`` —
        harmless for every detector thanks to chunk invariance.  Each yielded
        view is only guaranteed valid until the next iteration: the previous
        segment's pages are unmapped as the iterator moves on.  With
        ``chunk_size=None`` each segment is yielded whole.

        Raises
        ------
        ConfigurationError
            On a non-positive ``chunk_size`` or an out-of-range window.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be a positive integer")
        stop = self.n_rows if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= self.n_rows:
            raise ConfigurationError(
                f"chunk window [{start}, {stop}) out of range for {self.n_rows} rows"
            )
        for entry in self.segments:
            seg_start, seg_rows = int(entry["start"]), int(entry["rows"])
            seg_stop = seg_start + seg_rows
            if seg_stop <= start:
                continue
            if seg_start >= stop:
                break
            array = self._segment_array(entry)
            lo = max(start, seg_start) - seg_start
            hi = min(stop, seg_stop) - seg_start
            step = hi - lo if chunk_size is None else chunk_size
            try:
                for offset in range(lo, hi, step):
                    yield array[offset : min(offset + step, hi)]
            finally:
                release_memmap(array)

    def read(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Materialise rows ``[start, stop)`` as one contiguous in-memory array."""
        # copy inside the loop: each yielded view dies with its segment's map
        pieces = [np.array(chunk, copy=True) for chunk in self.iter_chunks(start=start, stop=stop)]
        if not pieces:
            shape = (0,) if self.columns == 0 else (0, self.columns)
            return np.empty(shape, dtype=self.dtype)
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def verify(self) -> list[str]:
        """Re-read every segment and check its CRC-32; return problem strings."""
        problems: list[str] = []
        for entry in self.segments:
            data = (self.directory / SEGMENT_DIR / entry["file"]).read_bytes()
            if len(data) != int(entry["bytes"]):
                problems.append(f"{entry['file']}: {len(data)} byte(s), expected {entry['bytes']}")
            elif zlib.crc32(data) != int(entry["crc32"]):
                problems.append(f"{entry['file']}: CRC mismatch")
        return problems

    def info(self) -> dict[str, Any]:
        """JSON-safe descriptor: layout, size and segmentation of the store."""
        return {
            "name": self.name,
            "dtype": self.dtype.str,
            "columns": self.columns,
            "n_rows": self.n_rows,
            "n_segments": len(self.segments),
            "segment_rows": int(self.manifest["segment_rows"]),
            "bytes": self.nbytes,
        }
