"""The stream store: ingest, segment, and re-segment durable streams.

:class:`StreamStore` owns a root directory with one sub-directory per
stream, tying the three storage primitives together::

    <root>/<stream>/
        manifest.json            # chunk-store manifest (input rows)
        segments/seg-*.npy       # memory-mapped input segments
        events.log[.idx]         # append-only log of emitted events
        checkpoints/ckpt-*.ckpt  # periodic detector snapshots
        run.json                 # descriptor of the recorded run

``ingest`` writes input through the constant-memory
:class:`~repro.storage.chunkstore.ChunkStoreWriter`; ``segment`` drives a
registry detector over the stored rows (mirroring :func:`repro.api.stream`
event-for-event), appending every event to the log and snapshotting
detector state every ``checkpoint_every`` observations; ``resegment`` seeks
the newest snapshot at or before ``from_t``, replays the stored input from
there — bit-identical to the uninterrupted run, by the checkpoint/restore
contract — and reports a structured :class:`ResegmentAudit` of old-vs-new
change points.  Passing a different detector or config to ``resegment``
replays from the stream start instead, which is exactly the "what would the
new version have said" audit the event log exists for.
"""

from __future__ import annotations

import json
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.api.checkpoint import restore
from repro.api.events import ScoreEvent, event_from_dict
from repro.api.registry import config_class, create, normalise_key
from repro.api.stream import DEFAULT_STREAM_CHUNK_SIZE
from repro.storage.checkpoints import CheckpointIndex
from repro.storage.chunkstore import (
    DEFAULT_SEGMENT_ROWS,
    ChunkStoreWriter,
    StoredStream,
    write_json_atomic,
)
from repro.storage.eventlog import EventLog
from repro.utils.exceptions import ConfigurationError, StorageError

#: Accepted stream names (path- and URL-safe, bounded; same shape the
#: service accepts, so stored and served streams can share names).
STREAM_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")
#: Run descriptor format marker.
RUN_FORMAT = "repro.run/1"
#: Default observations between detector snapshots.
DEFAULT_CHECKPOINT_EVERY = 4_096


def canonical_config(detector: str, config: dict | None) -> tuple[str, dict]:
    """Normalise ``(detector, config)`` to the registry key + full config dict.

    The returned dictionary is the validated config's complete
    ``to_dict()`` — two runs are "the same configuration" exactly when
    these dictionaries are equal.
    """
    key = normalise_key(detector)
    cls = config_class(key)
    instance = cls.from_dict(config) if config else cls()
    return key, instance.validate().to_dict()


@dataclass
class SegmentRun:
    """Result of :meth:`StreamStore.segment` — what was recorded."""

    stream: str
    detector: str
    config: dict
    n_seen: int
    n_events: int
    n_checkpoints: int
    change_points: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of the run summary."""
        return {
            "stream": self.stream,
            "detector": self.detector,
            "config": self.config,
            "n_seen": self.n_seen,
            "n_events": self.n_events,
            "n_checkpoints": self.n_checkpoints,
            "change_points": self.change_points,
        }


@dataclass
class ResegmentAudit:
    """Structured old-vs-new diff produced by :meth:`StreamStore.resegment`.

    ``unchanged`` / ``moved`` / ``added`` / ``removed`` partition the two
    change-point sets: a pair is *unchanged* when the change-point position
    matches exactly, *moved* when old and new positions pair up within
    ``tolerance`` observations, and the leftovers are *added* (new-only) or
    *removed* (old-only).  ``identical`` is the strict bit-level criterion —
    equal positions, scores and p-values in order.
    """

    stream: str
    from_t: int
    replayed_from: int
    checkpoint_used: int | None
    same_config: bool
    old_detector: str
    new_detector: str
    old_config: dict
    new_config: dict
    old_change_points: list[dict]
    new_change_points: list[dict]
    unchanged: list[dict] = field(default_factory=list)
    moved: list[dict] = field(default_factory=list)
    added: list[dict] = field(default_factory=list)
    removed: list[dict] = field(default_factory=list)
    identical: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of the full audit (the CLI prints this)."""
        return {
            "stream": self.stream,
            "from_t": self.from_t,
            "replayed_from": self.replayed_from,
            "checkpoint_used": self.checkpoint_used,
            "same_config": self.same_config,
            "old_detector": self.old_detector,
            "new_detector": self.new_detector,
            "old_config": self.old_config,
            "new_config": self.new_config,
            "old_change_points": self.old_change_points,
            "new_change_points": self.new_change_points,
            "unchanged": self.unchanged,
            "moved": self.moved,
            "added": self.added,
            "removed": self.removed,
            "identical": self.identical,
        }

    def summary(self) -> str:
        """One human-readable line per headline number."""
        anchor = (
            f"checkpoint @ {self.checkpoint_used}"
            if self.checkpoint_used is not None
            else "stream start"
        )
        lines = [
            f"resegment {self.stream!r} from t={self.from_t} "
            f"(replayed from {self.replayed_from}, {anchor})",
            f"detector: {self.old_detector} -> {self.new_detector} "
            f"({'same' if self.same_config else 'different'} config)",
            f"change points: {len(self.old_change_points)} old, "
            f"{len(self.new_change_points)} new — "
            f"{len(self.unchanged)} unchanged, {len(self.moved)} moved, "
            f"{len(self.added)} added, {len(self.removed)} removed",
            f"identical: {self.identical}",
        ]
        return "\n".join(lines)


def _change_point_dicts(segmenter) -> list[dict]:
    """The detector's change-point events as plain JSON-safe dicts."""
    return [
        event.to_dict()
        for event in segmenter.events()
        if event.kind == "change_point"
    ]


def diff_change_points(
    old: list[dict], new: list[dict], *, tolerance: int = 0
) -> dict[str, list[dict]]:
    """Partition two change-point lists into unchanged/moved/added/removed.

    Matching is greedy by position: exact ``change_point`` matches first,
    then leftover pairs within ``tolerance`` observations (nearest first)
    count as *moved*.  Entries in the returned ``moved`` list carry both
    sides (``old``/``new``).
    """
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    old_left = list(old)
    new_left = list(new)
    unchanged: list[dict] = []
    for entry in list(old_left):
        position = int(entry["change_point"])
        match = next(
            (cand for cand in new_left if int(cand["change_point"]) == position), None
        )
        if match is not None:
            unchanged.append({"old": entry, "new": match})
            old_left.remove(entry)
            new_left.remove(match)
    moved: list[dict] = []
    if tolerance:
        pairs = sorted(
            (
                (abs(int(o["change_point"]) - int(n["change_point"])), i, j)
                for i, o in enumerate(old_left)
                for j, n in enumerate(new_left)
            ),
        )
        taken_old: set[int] = set()
        taken_new: set[int] = set()
        for distance, i, j in pairs:
            if distance > tolerance or i in taken_old or j in taken_new:
                continue
            moved.append({"old": old_left[i], "new": new_left[j], "distance": distance})
            taken_old.add(i)
            taken_new.add(j)
        old_left = [o for i, o in enumerate(old_left) if i not in taken_old]
        new_left = [n for j, n in enumerate(new_left) if j not in taken_new]
    return {
        "unchanged": unchanged,
        "moved": moved,
        "added": new_left,
        "removed": old_left,
    }


class StreamStore:
    """Directory of durable streams: rows, events, checkpoints, run metadata.

    Parameters
    ----------
    root:
        Store root directory (created if missing); one sub-directory per
        stream.
    segment_rows:
        Rows per chunk-store segment for newly ingested streams.
    fsync:
        Fsync writes throughout (chunk segments, manifests, checkpoints).
        Tests disable it for speed; real ingestion should leave it on.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_rows = segment_rows
        self.fsync = fsync

    # ------------------------------------------------------------------ #
    # layout helpers

    def path_for(self, name: str) -> Path:
        """The stream's directory, after validating its name."""
        if not isinstance(name, str) or not STREAM_NAME.match(name):
            raise StorageError(
                f"invalid stream name {name!r}; expected {STREAM_NAME.pattern}"
            )
        return self.root / name

    def exists(self, name: str) -> bool:
        """Whether a stream of this name has been ingested."""
        return (self.path_for(name) / "manifest.json").exists()

    def list_streams(self) -> list[str]:
        """Names of every ingested stream, sorted."""
        return sorted(
            path.name
            for path in self.root.iterdir()
            if path.is_dir() and (path / "manifest.json").exists()
        )

    def delete(self, name: str) -> None:
        """Remove a stream and everything recorded about it."""
        directory = self.path_for(name)
        if not directory.exists():
            raise StorageError(f"unknown stream {name!r}")
        shutil.rmtree(directory)

    # ------------------------------------------------------------------ #
    # ingestion / reading

    def writer(
        self,
        name: str,
        *,
        dtype: str | np.dtype = np.float64,
        columns: int = 0,
    ) -> ChunkStoreWriter:
        """Open (or reopen, appending) the stream's constant-memory writer."""
        return ChunkStoreWriter(
            self.path_for(name),
            dtype=dtype,
            columns=columns,
            segment_rows=self.segment_rows,
            fsync=self.fsync,
        )

    def ingest(
        self,
        name: str,
        source: np.ndarray | Iterable[np.ndarray],
        *,
        append: bool = False,
    ) -> StoredStream:
        """Write ``source`` into the chunk store; return the readable stream.

        ``source`` is a 1-d/2-d array or any iterable of row chunks; chunks
        are streamed straight into segment files, so an iterable source is
        ingested at constant memory regardless of total length.  Ingesting
        a name that already exists raises
        :class:`~repro.utils.exceptions.StorageError` unless ``append`` is
        true.
        """
        if self.exists(name) and not append:
            raise StorageError(f"stream {name!r} already exists (pass append=True to extend)")
        if isinstance(source, np.ndarray):
            chunks: Iterable[np.ndarray] = iter((source,))
        else:
            chunks = iter(source)
        try:
            first = np.asarray(next(chunks))
        except StopIteration:
            first = np.empty(0, dtype=np.float64)
        if first.ndim not in (1, 2):
            raise ConfigurationError(
                f"ingest expects 1-d or 2-d row chunks, got shape {first.shape}"
            )
        columns = 0 if first.ndim == 1 else int(first.shape[1])
        with self.writer(name, dtype=first.dtype, columns=columns) as writer:
            if first.shape[0]:
                writer.append(first)
            for chunk in chunks:
                writer.append(chunk)
        return self.open(name)

    def open(self, name: str) -> StoredStream:
        """Open a stream for zero-copy memory-mapped reading."""
        if not self.exists(name):
            raise StorageError(f"unknown stream {name!r}")
        return StoredStream(self.path_for(name), name=name)

    # ------------------------------------------------------------------ #
    # per-stream companions

    def event_log(self, name: str, *, fsync: bool | None = None) -> EventLog:
        """The stream's event log (created on first use)."""
        directory = self.path_for(name)
        if not directory.exists():
            raise StorageError(f"unknown stream {name!r}")
        return EventLog(
            directory / "events.log",
            fsync=self.fsync if fsync is None else fsync,
        )

    def checkpoint_index(self, name: str) -> CheckpointIndex:
        """The stream's detector-snapshot index (created on first use)."""
        directory = self.path_for(name)
        if not directory.exists():
            raise StorageError(f"unknown stream {name!r}")
        return CheckpointIndex(directory / "checkpoints", fsync=self.fsync)

    def run_meta(self, name: str) -> dict[str, Any] | None:
        """The recorded run descriptor, or None when never segmented."""
        path = self.path_for(name) / "run.json"
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    # segmentation

    def segment(
        self,
        name: str,
        detector: str = "class",
        config: dict | None = None,
        *,
        chunk_size: int | None = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        include_scores: bool = False,
        finalize: bool = False,
    ) -> SegmentRun:
        """Run a registry detector over the stored rows, recording everything.

        Mirrors :func:`repro.api.stream` event-for-event (fresh typed events
        after each chunk, then the optional per-chunk
        :class:`~repro.api.events.ScoreEvent`), but instead of yielding, the
        events land in the stream's durable log and the detector state is
        snapshotted every ``checkpoint_every`` observations — including a
        "birth" snapshot at position 0, so ``resegment`` always has an
        anchor.  A previous run's log, snapshots and descriptor are
        replaced.

        Raises
        ------
        StorageError
            For unknown streams.
        ConfigurationError
            For unknown detectors, invalid configs, or a non-positive
            ``checkpoint_every``.
        """
        if not isinstance(checkpoint_every, int) or checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be a positive integer")
        stored = self.open(name)
        key, config_dict = canonical_config(detector, config)
        segmenter = create(key, config_dict)
        directory = self.path_for(name)
        # replace any previous run's artifacts
        (directory / "events.log").unlink(missing_ok=True)
        (directory / "events.log.idx").unlink(missing_ok=True)
        (directory / "run.json").unlink(missing_ok=True)
        checkpoints = self.checkpoint_index(name)
        checkpoints.clear()
        checkpoints.add(segmenter, detector=key, config=config_dict)
        step = chunk_size if chunk_size is not None else DEFAULT_STREAM_CHUNK_SIZE
        n_events = 0
        with self.event_log(name) as log:
            n_emitted = 0
            last_checkpoint = 0
            for chunk in stored.iter_chunks(step):
                segmenter.process(np.asarray(chunk, dtype=np.float64))
                history = segmenter.events()
                for event in history[n_emitted:]:
                    log.append_event(event)
                    n_events += 1
                n_emitted = len(history)
                if include_scores:
                    score = getattr(segmenter, "current_score", None)
                    if score is not None:
                        log.append_event(
                            ScoreEvent(at=int(segmenter.n_seen), score=float(score))
                        )
                        n_events += 1
                if int(segmenter.n_seen) - last_checkpoint >= checkpoint_every:
                    checkpoints.add(segmenter, detector=key, config=config_dict)
                    last_checkpoint = int(segmenter.n_seen)
            if finalize:
                segmenter.finalize()
                history = segmenter.events()
                for event in history[n_emitted:]:
                    log.append_event(event)
                    n_events += 1
        change_points = _change_point_dicts(segmenter)
        run = {
            "format": RUN_FORMAT,
            "detector": key,
            "config": config_dict,
            "chunk_size": chunk_size,
            "checkpoint_every": checkpoint_every,
            "include_scores": include_scores,
            "finalized": finalize,
            "n_seen": int(segmenter.n_seen),
            "n_events": n_events,
            "change_points": change_points,
        }
        write_json_atomic(directory / "run.json", run, fsync=self.fsync)
        return SegmentRun(
            stream=name,
            detector=key,
            config=config_dict,
            n_seen=int(segmenter.n_seen),
            n_events=n_events,
            n_checkpoints=len(checkpoints),
            change_points=change_points,
        )

    def resegment(
        self,
        name: str,
        from_t: int = 0,
        *,
        detector: str | None = None,
        config: dict | None = None,
        chunk_size: int | None = None,
        tolerance: int = 0,
    ) -> ResegmentAudit:
        """Replay the stored input from ``from_t``; audit old vs new detections.

        With the recorded configuration (``detector``/``config`` omitted or
        equal to the run's), the replay anchors on the newest snapshot at or
        before ``from_t`` and is **bit-identical** to the original run — the
        audit's ``identical`` flag is the proof.  With a different detector
        or config, the whole stream is replayed through the new version from
        position 0 and the audit shows what the new version would have said.

        Raises
        ------
        StorageError
            For unknown streams or streams that were never ``segment``-ed.
        """
        stored = self.open(name)
        run = self.run_meta(name)
        if run is None:
            raise StorageError(
                f"stream {name!r} has no recorded run; call segment() before resegment()"
            )
        from_t = int(from_t)
        if from_t < 0:
            raise ConfigurationError("from_t must be non-negative")
        old_key = run["detector"]
        old_config = run["config"]
        new_key, new_config = canonical_config(
            detector if detector is not None else old_key,
            config if config is not None else (old_config if detector is None else config),
        )
        same_config = (new_key == old_key) and (new_config == old_config)

        checkpoint_used: int | None = None
        replayed_from = 0
        if same_config:
            envelope = self.checkpoint_index(name).load_at_or_before(from_t)
            if envelope is not None:
                segmenter = restore(envelope["state"])
                checkpoint_used = int(envelope["n_seen"])
                replayed_from = checkpoint_used
            else:
                segmenter = create(new_key, new_config)
        else:
            segmenter = create(new_key, new_config)

        step = chunk_size if chunk_size is not None else (
            run.get("chunk_size") or DEFAULT_STREAM_CHUNK_SIZE
        )
        for chunk in stored.iter_chunks(step, start=replayed_from):
            segmenter.process(np.asarray(chunk, dtype=np.float64))
        if run.get("finalized"):
            segmenter.finalize()

        new_change_points = _change_point_dicts(segmenter)
        old_change_points = list(run["change_points"])
        parts = diff_change_points(old_change_points, new_change_points, tolerance=tolerance)
        identical = old_change_points == new_change_points
        return ResegmentAudit(
            stream=name,
            from_t=from_t,
            replayed_from=replayed_from,
            checkpoint_used=checkpoint_used,
            same_config=same_config,
            old_detector=old_key,
            new_detector=new_key,
            old_config=old_config,
            new_config=new_config,
            old_change_points=old_change_points,
            new_change_points=new_change_points,
            unchanged=parts["unchanged"],
            moved=parts["moved"],
            added=parts["added"],
            removed=parts["removed"],
            identical=identical,
        )

    # ------------------------------------------------------------------ #

    def stream_info(self, name: str) -> dict[str, Any]:
        """JSON-safe overview: store layout plus recorded-run headline numbers."""
        info = self.open(name).info()
        run = self.run_meta(name)
        if run is not None:
            info["run"] = {
                "detector": run["detector"],
                "n_seen": run["n_seen"],
                "n_events": run["n_events"],
                "n_change_points": len(run["change_points"]),
                "finalized": run["finalized"],
            }
        return info


def replay_events(log: EventLog, from_seq: int = 0):
    """Yield typed event objects from a stream's log (oldest first).

    Thin adapter from stored record bodies back to
    :mod:`repro.api.events` instances, for callers that want objects
    rather than dictionaries.
    """
    for record in log.iter_records(from_seq):
        yield event_from_dict(record["event"])
