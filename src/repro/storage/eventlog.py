"""Append-only CRC-framed event log with a sparse time index.

One log is a single record file plus an optional ``<name>.idx`` sidecar of
index hints.  Every record is framed::

    u32 body length | u32 CRC-32 of body | body (UTF-8 JSON)

with body ``{"seq": int, "at": int, "event": {...}}`` — ``seq`` is the
dense record number (the replay cursor), ``at`` the stream timestamp the
event is keyed by (monotone non-decreasing, so range reads can bisect).

The sidecar holds one JSON line per ``index_every`` records:
``{"seq", "at", "offset"}`` — byte offsets into the record file.  It is a
pure *hint* file: opening a log validates the last hint against the record
file and falls back to a full scan when the sidecar is stale, torn or
missing, so it needs no fsync and can always be deleted.

Crash behaviour mirrors the chunk store: the writer appends frame-at-a-time
(optionally fsynced), so a crash can only tear the final record.  Opening
scans the tail, and a torn trailing frame (short header, short body, or CRC
mismatch) is **physically truncated** — with a warning — rather than ever
being surfaced to a reader.  Corruption anywhere *before* the tail is not
self-repairable and raises
:class:`~repro.utils.exceptions.CorruptRecordError`.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import zlib
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterator

from repro.utils.exceptions import ConfigurationError, CorruptRecordError, StorageError

logger = logging.getLogger(__name__)

_HEADER = struct.Struct("<II")
#: Index sidecar suffix, appended to the log file name.
INDEX_SUFFIX = ".idx"
#: Default record interval between sparse-index hints.
DEFAULT_INDEX_EVERY = 64


class EventLog:
    """Append-only log of typed events keyed by ``(seq, at)``.

    Parameters
    ----------
    path:
        Record file path; created (with parents) on first append.
    fsync:
        Fsync after every appended record.  Durability spools want this on;
        the service's history spill (which can be rebuilt) leaves it off.
    index_every:
        Emit one sparse-index hint per this many records.

    Raises
    ------
    ConfigurationError
        On a non-positive ``index_every``.
    CorruptRecordError
        When a record *before* the tail fails its CRC — the log cannot be
        self-repaired without losing acknowledged history.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        index_every: int = DEFAULT_INDEX_EVERY,
    ) -> None:
        if not isinstance(index_every, int) or index_every < 1:
            raise ConfigurationError("index_every must be a positive integer")
        self.path = Path(path)
        self.index_path = self.path.with_name(self.path.name + INDEX_SUFFIX)
        self.fsync = fsync
        self.index_every = index_every
        #: Sparse hints as parallel lists (for bisect): seqs, ats, offsets.
        self._hint_seqs: list[int] = []
        self._hint_ats: list[int] = []
        self._hint_offsets: list[int] = []
        self._n_records = 0
        self._end_offset = 0
        self._last_at = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._open()
        self._handle = self.path.open("ab")

    # ------------------------------------------------------------------ #
    # open / recovery

    def _open(self) -> None:
        if not self.path.exists():
            self.path.touch()
            return
        self._load_hints()
        torn_at = self._scan_tail()
        if torn_at is not None:
            logger.warning(
                "event log %s: torn trailing record at byte %d (after %d intact "
                "record(s)); truncating",
                self.path, torn_at, self._n_records,
            )
            with self.path.open("r+b") as handle:
                handle.truncate(torn_at)
            self._end_offset = torn_at
            self._rewrite_hints()

    def _load_hints(self) -> None:
        """Load the sparse index sidecar; drop it when stale or torn."""
        if not self.index_path.exists():
            return
        seqs: list[int] = []
        ats: list[int] = []
        offsets: list[int] = []
        try:
            with self.index_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    hint = json.loads(line)
                    seqs.append(int(hint["seq"]))
                    ats.append(int(hint["at"]))
                    offsets.append(int(hint["offset"]))
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            logger.warning("event log %s: unreadable index sidecar; rebuilding", self.path)
            return
        if not seqs:
            return
        # validate the newest hint actually points at its record
        record = self._read_frame_at(offsets[-1])
        if record is None or int(record[0].get("seq", -1)) != seqs[-1]:
            logger.warning("event log %s: stale index sidecar; rebuilding", self.path)
            return
        self._hint_seqs, self._hint_ats, self._hint_offsets = seqs, ats, offsets

    def _read_frame_at(self, offset: int) -> tuple[dict, int] | None:
        """Read one frame; return ``(body, next_offset)`` or None when torn."""
        with self.path.open("rb") as handle:
            handle.seek(offset)
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return None
            length, crc = _HEADER.unpack(header)
            body = handle.read(length)
        if len(body) < length or zlib.crc32(body) != crc:
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return payload, offset + _HEADER.size + length

    def _scan_tail(self) -> int | None:
        """Walk records from the newest hint; return the torn offset, if any.

        Sets ``_n_records``, ``_end_offset`` and ``_last_at`` as a side
        effect.  Because appends are strictly sequential, the first frame
        that fails to parse marks where the crash hit; everything from that
        byte on is the torn tail.
        """
        if self._hint_seqs:
            offset = self._hint_offsets[-1]
            count = self._hint_seqs[-1]
            last_at = self._hint_ats[-1]
        else:
            offset = 0
            count = 0
            last_at = 0
        size = self.path.stat().st_size
        torn_at: int | None = None
        while offset < size:
            frame = self._read_frame_at(offset)
            if frame is None or frame[1] > size:
                torn_at = offset
                break
            payload, next_offset = frame
            count += 1
            last_at = int(payload.get("at", last_at))
            offset = next_offset
        self._n_records = count
        self._end_offset = offset
        self._last_at = last_at
        if torn_at is not None:
            # hints for records beyond the tear are now dangling
            while self._hint_offsets and self._hint_offsets[-1] >= torn_at:
                self._hint_seqs.pop()
                self._hint_ats.pop()
                self._hint_offsets.pop()
        return torn_at

    # ------------------------------------------------------------------ #
    # append

    def append(self, at: int, event: dict[str, Any]) -> int:
        """Append one event keyed at stream time ``at``; return its ``seq``.

        ``at`` values must be monotone non-decreasing (range reads bisect on
        them); a regression raises
        :class:`~repro.utils.exceptions.StorageError`.
        """
        at = int(at)
        if at < self._last_at:
            raise StorageError(
                f"event log {self.path.name}: at={at} regresses behind {self._last_at}"
            )
        seq = self._n_records
        body = json.dumps(
            {"seq": seq, "at": at, "event": event}, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        offset = self._end_offset
        self._handle.write(_HEADER.pack(len(body), zlib.crc32(body)))
        self._handle.write(body)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._n_records = seq + 1
        self._end_offset = offset + _HEADER.size + len(body)
        self._last_at = at
        if seq % self.index_every == 0:
            self._write_hint(seq, at, offset)
        return seq

    def append_event(self, event) -> int:
        """Append a typed API event (anything with ``to_dict()`` and ``at``)."""
        return self.append(int(event.at), event.to_dict())

    def _rewrite_hints(self) -> None:
        """Rewrite the sidecar from the surviving in-memory hints."""
        try:
            with self.index_path.open("w", encoding="utf-8") as handle:
                for seq, at, offset in zip(self._hint_seqs, self._hint_ats, self._hint_offsets):
                    handle.write(json.dumps({"seq": seq, "at": at, "offset": offset}) + "\n")
        except OSError:
            logger.warning("event log %s: could not rewrite index sidecar", self.path)

    def _write_hint(self, seq: int, at: int, offset: int) -> None:
        self._hint_seqs.append(seq)
        self._hint_ats.append(at)
        self._hint_offsets.append(offset)
        try:
            with self.index_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps({"seq": seq, "at": at, "offset": offset}) + "\n")
        except OSError:  # the sidecar is only a hint; never fail an append on it
            logger.warning("event log %s: could not extend index sidecar", self.path)

    # ------------------------------------------------------------------ #
    # read

    def __len__(self) -> int:
        return self._n_records

    @property
    def last_at(self) -> int:
        """Stream timestamp of the newest record (0 when empty)."""
        return self._last_at

    def _offset_for_seq(self, seq: int) -> tuple[int, int]:
        """Nearest hinted ``(offset, seq)`` at or before the requested seq."""
        if not self._hint_seqs or seq < self._hint_seqs[0]:
            return 0, 0
        position = bisect_left(self._hint_seqs, seq + 1) - 1
        return self._hint_offsets[position], self._hint_seqs[position]

    def iter_records(self, from_seq: int = 0) -> Iterator[dict]:
        """Yield raw record bodies (``{"seq", "at", "event"}``) from a cursor.

        Raises
        ------
        CorruptRecordError
            When a frame inside the committed range fails its CRC — this is
            mid-file corruption, not a torn tail, and cannot be repaired
            without losing history.
        """
        from_seq = max(0, int(from_seq))
        if from_seq >= self._n_records:
            return
        offset, seq = self._offset_for_seq(from_seq)
        end = self._end_offset
        while offset < end:
            frame = self._read_frame_at(offset)
            if frame is None:
                raise CorruptRecordError(
                    f"event log {self.path}: record {seq} at byte {offset} failed its "
                    "integrity check inside the committed range"
                )
            payload, offset = frame
            if int(payload["seq"]) >= from_seq:
                yield payload
            seq += 1

    def read_since(self, seq: int, limit: int | None = None) -> list[dict]:
        """Events (bodies' ``event`` fields) with record number ``>= seq``."""
        out: list[dict] = []
        for record in self.iter_records(seq):
            out.append(record["event"])
            if limit is not None and len(out) >= limit:
                break
        return out

    def read_range(self, from_t: int, to_t: int | None = None) -> list[dict]:
        """Records with ``from_t <= at < to_t`` (``to_t=None`` → to the end).

        Seeks via the sparse time index (hints' ``at`` values are monotone
        because appends enforce it), then filters the scanned records.
        """
        from_t = int(from_t)
        if self._hint_ats:
            position = max(0, bisect_left(self._hint_ats, from_t) - 1)
            start_seq = self._hint_seqs[position]
        else:
            start_seq = 0
        out: list[dict] = []
        for record in self.iter_records(start_seq):
            at = int(record["at"])
            if at < from_t:
                continue
            if to_t is not None and at >= int(to_t):
                break
            out.append(record)
        return out

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close the append handle; the log can be reopened."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def info(self) -> dict[str, Any]:
        """JSON-safe descriptor: record count, span and file size."""
        return {
            "path": str(self.path),
            "n_records": self._n_records,
            "last_at": self._last_at,
            "bytes": self._end_offset,
            "n_index_hints": len(self._hint_seqs),
        }
