"""repro.storage — out-of-core stream store, event log, re-segment from T.

The persistence tier beneath the API, CLI and service (ROADMAP item 3):

* :mod:`repro.storage.chunkstore` — time-partitioned, memory-mapped
  ``.npy`` segment files per stream; append-only writer with an atomic
  manifest, zero-copy mmap reader, crash recovery.
* :mod:`repro.storage.eventlog` — append-only CRC-framed record log of
  typed events keyed by ``(seq, at)`` with a sparse time index; torn tails
  are truncated on open, never silently read.
* :mod:`repro.storage.checkpoints` — periodic detector snapshots in the
  ``repro.api.checkpoint`` framing, the replay anchors for
  "re-segment from T".
* :mod:`repro.storage.store` — :class:`StreamStore`, tying the three
  together: ``ingest`` → ``segment`` → ``resegment`` with a structured
  old-vs-new :class:`ResegmentAudit`.
* :mod:`repro.storage.history` — the service's bounded in-memory event
  window with disk spill, keeping ``?since=`` replay exact after eviction.
"""

from repro.storage.checkpoints import CheckpointIndex
from repro.storage.chunkstore import (
    DEFAULT_SEGMENT_ROWS,
    ChunkStoreRecovery,
    ChunkStoreWriter,
    StoredStream,
    recover_chunk_store,
)
from repro.storage.eventlog import EventLog
from repro.storage.history import DEFAULT_HISTORY_WINDOW, StreamHistory
from repro.storage.store import (
    DEFAULT_CHECKPOINT_EVERY,
    ResegmentAudit,
    SegmentRun,
    StreamStore,
    canonical_config,
    diff_change_points,
    replay_events,
)
from repro.utils.exceptions import (
    CorruptRecordError,
    HistoryTruncatedError,
    StorageError,
)

__all__ = [
    "CheckpointIndex",
    "ChunkStoreRecovery",
    "ChunkStoreWriter",
    "CorruptRecordError",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_HISTORY_WINDOW",
    "DEFAULT_SEGMENT_ROWS",
    "EventLog",
    "HistoryTruncatedError",
    "ResegmentAudit",
    "SegmentRun",
    "StorageError",
    "StoredStream",
    "StreamHistory",
    "StreamStore",
    "canonical_config",
    "diff_change_points",
    "recover_chunk_store",
    "replay_events",
]
