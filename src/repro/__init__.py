"""repro — a reproduction of "Raising the ClaSS of Streaming Time Series Segmentation".

The package provides:

* :class:`repro.ClaSS` — the streaming segmentation algorithm (the paper's
  primary contribution),
* :class:`repro.ClaSP` — the batch baseline it builds upon,
* :mod:`repro.competitors` — the eight state-of-the-art competitors of the
  experimental evaluation,
* :mod:`repro.datasets` — synthetic stand-ins for the two benchmarks and six
  data archives used in the paper,
* :mod:`repro.evaluation` — the Covering metric, rank statistics, and the
  streaming experiment runner,
* :mod:`repro.streamengine` — a minimal stream-processing engine with a ClaSS
  window operator (the Apache Flink substitute),
* :mod:`repro.api` — the unified detector API: typed configs, a string-keyed
  registry (``api.create("class", config)``), typed event streams and
  checkpoint/resume for every segmenter.
"""

from repro.core import (
    ChangePointReport,
    ClaSP,
    ClaSPProfile,
    ClaSS,
    MultivariateClaSS,
    StreamingKNN,
)
from repro.version import __version__

# imported last: the registry builds on the fully initialised core package
from repro import api  # noqa: E402  (deliberate import order)

__all__ = [
    "api",
    "ClaSS",
    "ClaSP",
    "MultivariateClaSS",
    "ClaSPProfile",
    "ChangePointReport",
    "StreamingKNN",
    "__version__",
]
