"""Common interface of all streaming segmentation / change detection methods.

Every competitor of the paper's evaluation (Table 2) is wrapped behind the
same minimal streaming contract so the evaluation runner, the stream engine
and user code can treat them interchangeably with ClaSS:

* :meth:`StreamSegmenter.update` ingests one observation and returns the
  absolute time point of a change point if one is reported at this step,
* :meth:`StreamSegmenter.process` streams a finite array in chunks,
  delegating each chunk to :meth:`StreamSegmenter.process_chunk` — the
  default chunk handler loops over :meth:`update`, and methods with a
  cheaper batch path (e.g. FLOSS feeding its streaming k-NN substrate
  through ``update_many``) override it,
* :attr:`StreamSegmenter.change_points` collects everything reported so far.

Methods that natively produce a continuous score per time point (FLOSS,
Window, BOCD, ChangeFinder, NEWMA) expose it through ``last_score`` so the
threshold-based change point extraction of §4.1 (score threshold plus an
exclusion zone around recent detections) can be shared via
:class:`ScoreThresholdDetector`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.class_segmenter import DEFAULT_CHUNK_SIZE
from repro.utils.exceptions import ConfigurationError


class StreamSegmenter(abc.ABC):
    """Abstract base class for streaming time series segmentation methods."""

    #: Human-readable name used by the evaluation reports.
    name: str = "segmenter"

    def __init__(self) -> None:
        self._n_seen = 0
        self._change_points: list[int] = []
        self._detection_times: list[int] = []
        self._detection_scores: list[float] = []
        self.last_score: float = 0.0

    # ------------------------------------------------------------------ #

    @property
    def n_seen(self) -> int:
        """Number of observations processed so far."""
        return self._n_seen

    @property
    def change_points(self) -> np.ndarray:
        """Absolute time points of all reported change points."""
        return np.asarray(self._change_points, dtype=np.int64)

    @property
    def detection_times(self) -> np.ndarray:
        """Time points at which each change point was reported (detection latency)."""
        return np.asarray(self._detection_times, dtype=np.int64)

    @property
    def segments(self) -> list[tuple[int, int]]:
        """Completed segments as (start, end) pairs in absolute time points."""
        points = [0, *self._change_points]
        return [(points[i], points[i + 1]) for i in range(len(points) - 1)]

    # ------------------------------------------------------------------ #

    def update(self, value: float) -> int | None:
        """Ingest one observation; return a change point time if one is reported."""
        self._n_seen += 1
        return self._record_detection(self._update(float(value)))

    def process(self, values: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Stream a finite batch of values in chunks; return all CPs so far.

        The array is cut into chunks of at most ``chunk_size`` observations
        (default :data:`DEFAULT_CHUNK_SIZE`) and each chunk is handed to
        :meth:`process_chunk`.  Chunked and point-wise ingestion report
        identical change points for every segmenter.

        Note the return-value difference from ``ClaSS.process``: this method
        returns the *cumulative* change-point history (the seed contract of
        the competitor wrappers), while ClaSS returns only the change points
        detected during the call.  Use :meth:`process_chunk` or diff
        ``change_points`` across calls for per-call detections.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        elif chunk_size < 1:
            raise ConfigurationError("chunk_size must be a positive integer")
        for start in range(0, values.shape[0], chunk_size):
            self.process_chunk(values[start : start + chunk_size])
        return self.change_points

    def process_chunk(self, values: np.ndarray) -> np.ndarray:
        """Ingest one chunk; return the change points detected within it.

        The default implementation loops over :meth:`update`.  Subclasses
        with a cheaper batch ingestion path override this — they must keep
        :attr:`n_seen` and the detection bookkeeping consistent by routing
        detections through :meth:`_record_detection`.
        """
        detected: list[int] = []
        for value in values:
            change_point = self.update(float(value))
            if change_point is not None:
                detected.append(change_point)
        return np.asarray(detected, dtype=np.int64)

    def reset(self) -> None:
        """Forget all state (default implementation re-initialises bookkeeping)."""
        self._n_seen = 0
        self._change_points = []
        self._detection_times = []
        self._detection_scores = []
        self.last_score = 0.0

    def finalize(self) -> np.ndarray:
        """Flush end-of-stream state (competitors have none); return all CPs."""
        return self.change_points

    #: British-spelling alias, matching ClaSS.
    finalise = finalize

    @property
    def warmup_end(self) -> int | None:
        """Competitors are ready from the first observation on (None before it)."""
        return 0 if self._n_seen > 0 else None

    @property
    def current_score(self) -> float | None:
        """The method's most recent detection score (``last_score``)."""
        return float(self.last_score) if self._n_seen > 0 else None

    def events(self) -> list:
        """Typed event history: readiness plus one event per recorded detection.

        Ordered by stream position and append-only over time, which is the
        contract :func:`repro.api.stream` relies on.  Scores are the
        method's ``last_score`` at detection time; competitors have no
        p-value concept, so ``p_value`` stays None.
        """
        from repro.api.events import ChangePointEvent, WarmupEvent

        events: list = []
        warmup = self.warmup_end
        if warmup is not None:
            events.append(WarmupEvent(at=int(warmup)))
        for index, (change_point, detected_at) in enumerate(
            zip(self._change_points, self._detection_times)
        ):
            score = (
                self._detection_scores[index] if index < len(self._detection_scores) else None
            )
            events.append(
                ChangePointEvent(
                    at=int(detected_at), change_point=int(change_point), score=score
                )
            )
        return events

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def save_state(self) -> dict:
        """Serialise the competitor's full runtime state.

        Every wrapper keeps its state in plain Python/numpy attributes (ring
        deques, bucket lists, model coefficients, an embedded
        :class:`~repro.core.streaming_knn.StreamingKNN` for FLOSS), so a deep
        copy of ``__dict__`` is a complete, picklable checkpoint and
        restoring it resumes bit-identically.
        """
        import copy

        from repro.api.checkpoint import state_payload

        return state_payload(self, copy.deepcopy(self.__dict__))

    def load_state(self, payload: dict) -> None:
        """Restore a :meth:`save_state` payload into this instance."""
        import copy

        from repro.api.checkpoint import checked_state

        state = checked_state(self, payload)
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(state))

    # ------------------------------------------------------------------ #

    def _record_detection(self, change_point: int | None) -> int | None:
        """Clamp, deduplicate and register a raw detection (shared bookkeeping)."""
        if change_point is None:
            return None
        change_point = int(change_point)
        if change_point >= self._n_seen:
            change_point = self._n_seen - 1
        if self._change_points and change_point <= self._change_points[-1]:
            return None
        self._change_points.append(change_point)
        self._detection_times.append(self._n_seen)
        self._detection_scores.append(float(self.last_score))
        return change_point

    @abc.abstractmethod
    def _update(self, value: float) -> int | None:
        """Method-specific single-point update; return a CP time or None."""


class ScoreThresholdDetector:
    """Shared threshold + exclusion-zone change point extraction (§4.1).

    Several competitors only emit homogeneity scores for sliding-window
    splits.  Following the paper, a change point is reported whenever the
    score crosses a learned threshold, and further reports are suppressed for
    ``exclusion_zone`` observations to avoid series of closely located splits.
    """

    def __init__(
        self,
        threshold: float,
        exclusion_zone: int,
        higher_is_change: bool = True,
    ) -> None:
        if exclusion_zone < 0:
            raise ConfigurationError("exclusion_zone must be non-negative")
        self.threshold = float(threshold)
        self.exclusion_zone = int(exclusion_zone)
        self.higher_is_change = bool(higher_is_change)
        self._last_report: int | None = None

    def reset(self) -> None:
        """Forget the position of the last report."""
        self._last_report = None

    def check(self, score: float, time_point: int) -> bool:
        """Return True when a change point should be reported at ``time_point``."""
        triggered = score >= self.threshold if self.higher_is_change else score <= self.threshold
        if not triggered:
            return False
        if self._last_report is not None and time_point - self._last_report < self.exclusion_zone:
            return False
        self._last_report = int(time_point)
        return True
