"""Discrepancy-based sliding Window baseline (paper §4.1, Truong et al. survey).

The Window algorithm keeps a buffer of the most recent observations, splits it
in the middle, and scores how much better two separate cost models explain the
two halves than a single model explains the whole buffer.  A change point is
reported at the buffer centre whenever the normalised discrepancy crosses a
threshold, with an exclusion zone suppressing bursts of nearby reports.

The paper's grid search selects the autoregressive cost with threshold 0.2 and
a window of ten times the annotated subsequence width; those are the defaults.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.competitors.base import ScoreThresholdDetector, StreamSegmenter
from repro.competitors.costs import discrepancy, get_cost_function
from repro.utils.validation import check_positive_int


class WindowSegmenter(StreamSegmenter):
    """Sliding-window discrepancy change point detector.

    Parameters
    ----------
    window_size:
        Total buffer size (the paper uses 10x the annotated subsequence width).
    cost:
        Cost function name: ``"ar"`` (default), ``"gaussian"``, ``"kernel"``,
        ``"l1"``, ``"l2"`` or ``"mahalanobis"``.
    threshold:
        Discrepancy threshold above which a change point is reported
        (default 0.2, the paper's selected configuration).
    exclusion_zone:
        Observations to wait after a report before reporting again; defaults
        to the window size.
    stride:
        Evaluate the discrepancy only every ``stride`` observations (1 =
        every point).
    """

    name = "Window"

    def __init__(
        self,
        window_size: int = 500,
        cost: str = "ar",
        threshold: float = 0.2,
        exclusion_zone: int | None = None,
        stride: int = 1,
    ) -> None:
        super().__init__()
        self.window_size = check_positive_int(window_size, "window_size", minimum=8)
        self.cost_name = cost
        self._cost = get_cost_function(cost)
        self.threshold = float(threshold)
        self.stride = check_positive_int(stride, "stride")
        self.exclusion_zone = (
            int(exclusion_zone) if exclusion_zone is not None else self.window_size
        )
        self._buffer: collections.deque[float] = collections.deque(maxlen=self.window_size)
        self._detector = ScoreThresholdDetector(self.threshold, self.exclusion_zone)

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()
        self._detector.reset()

    def _update(self, value: float) -> int | None:
        self._buffer.append(value)
        if len(self._buffer) < self.window_size:
            return None
        if self.stride > 1 and (self._n_seen % self.stride) != 0:
            return None
        segment = np.asarray(self._buffer, dtype=np.float64)
        self.last_score = discrepancy(segment, self._cost)
        if self._detector.check(self.last_score, self._n_seen):
            # the candidate change lies at the centre of the buffer
            return self._n_seen - self.window_size // 2
        return None
