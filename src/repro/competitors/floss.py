"""FLOSS — Fast Low-cost Online Semantic Segmentation (Gharghabi et al.;
paper Table 2, the strongest data-mining competitor).

FLOSS maintains a streaming matrix profile over a sliding window: every
subsequence is connected to its (1-)nearest neighbour by an arc.  Positions
crossed by few arcs separate regions whose subsequences prefer neighbours on
their own side, which is the signature of a semantic change.  The corrected
arc curve (CAC) normalises the raw crossing counts by the count expected for
an unstructured series (a parabola), and a change point is reported wherever
the CAC drops below a threshold (the paper's grid search selects 0.45), with
an exclusion zone suppressing bursts of nearby reports.

This implementation reuses the library's exact streaming k-NN (with k = 1) as
its matrix-profile substrate, so its per-point cost is O(d) for the profile
plus O(d) for the arc-curve recomputation.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.competitors.base import StreamSegmenter
from repro.core.streaming_knn import PADDING_INDEX, StreamingKNN
from repro.utils.validation import check_positive_int


def corrected_arc_curve(nearest_neighbours: np.ndarray, exclusion: int = 0) -> np.ndarray:
    """Corrected arc curve of a 1-NN profile.

    Parameters
    ----------
    nearest_neighbours:
        Array of length ``m`` with the nearest-neighbour offset of every
        subsequence.  Negative offsets (evicted or padded neighbours) are
        ignored.
    exclusion:
        Number of positions at both ends whose CAC is fixed to 1.0 (the
        borders carry no information, following the FLUSS/FLOSS papers).

    Returns
    -------
    numpy.ndarray
        CAC values in ``[0, 1]``; low values indicate likely change points.
    """
    nn = np.asarray(nearest_neighbours, dtype=np.int64)
    m = nn.shape[0]
    if m < 3:
        return np.ones(m, dtype=np.float64)

    crossings_delta = np.zeros(m + 1, dtype=np.float64)
    sources = np.arange(m)
    valid = nn >= 0
    starts = np.minimum(sources[valid], nn[valid])
    ends = np.maximum(sources[valid], nn[valid])
    # an arc (a, b) crosses positions a < i < b
    np.add.at(crossings_delta, starts + 1, 1.0)
    np.add.at(crossings_delta, ends, -1.0)
    crossings = np.cumsum(crossings_delta[:m])

    positions = np.arange(m, dtype=np.float64)
    idealised = 2.0 * positions * (m - positions) / m
    idealised = np.maximum(idealised, 1e-12)
    cac = np.minimum(crossings / idealised, 1.0)

    border = max(int(exclusion), 1)
    cac[:border] = 1.0
    cac[-border:] = 1.0
    return cac


class FLOSS(StreamSegmenter):
    """Streaming semantic segmentation via the corrected arc curve.

    Parameters
    ----------
    window_size:
        Sliding window size ``d`` (the paper uses 10k, same as ClaSS).
    subsequence_width:
        Subsequence width of the matrix profile (the paper takes it from the
        dataset annotations).
    threshold:
        CAC threshold below which a change point is reported (default 0.45).
    exclusion_zone:
        Observations to wait after a report before reporting again; defaults
        to five subsequence widths.
    stride:
        Recompute the arc curve only every ``stride`` observations.
    """

    name = "FLOSS"

    def __init__(
        self,
        window_size: int = 10_000,
        subsequence_width: int = 100,
        threshold: float = 0.45,
        exclusion_zone: int | None = None,
        stride: int = 1,
    ) -> None:
        super().__init__()
        self.window_size = check_positive_int(window_size, "window_size", minimum=20)
        self.subsequence_width = check_positive_int(
            subsequence_width, "subsequence_width", minimum=3
        )
        self.threshold = float(threshold)
        self.stride = check_positive_int(stride, "stride")
        self.exclusion_zone = (
            int(exclusion_zone) if exclusion_zone is not None else 5 * self.subsequence_width
        )
        self._knn = StreamingKNN(
            window_size=self.window_size,
            subsequence_width=self.subsequence_width,
            k_neighbours=1,
        )
        self._last_report: int | None = None
        self.last_curve: np.ndarray | None = None

    def reset(self) -> None:
        super().reset()
        self._knn.reset()
        self._last_report = None
        self.last_curve = None

    # ------------------------------------------------------------------ #

    def _update(self, value: float) -> int | None:
        self._knn.update(value)
        if self._knn.n_subsequences < 4 * self.subsequence_width:
            return None
        if self.stride > 1 and (self._n_seen % self.stride) != 0:
            return None
        return self._evaluate_curve()

    def process_chunk(self, values: np.ndarray) -> np.ndarray:
        """Chunked ingestion: batch-feed the k-NN between arc-curve strides.

        Values are pushed through the streaming k-NN's ``update_many`` path
        and the corrected arc curve is evaluated exactly at the stream
        positions the point-wise path would evaluate it, so both report
        identical change points.
        """
        values = np.asarray(values, dtype=np.float64)
        detected: list[int] = []
        position = 0
        n = values.shape[0]
        while position < n:
            until_boundary = self.stride - (self._n_seen % self.stride)
            take = min(until_boundary, n - position)
            collections.deque(self._knn.update_many(values[position : position + take]), maxlen=0)
            self._n_seen += take
            position += take
            if (
                (self._n_seen % self.stride) == 0
                and self._knn.n_subsequences >= 4 * self.subsequence_width
            ):
                change_point = self._record_detection(self._evaluate_curve())
                if change_point is not None:
                    detected.append(change_point)
        return np.asarray(detected, dtype=np.int64)

    def _evaluate_curve(self) -> int | None:
        """Recompute the corrected arc curve and apply the threshold rule."""
        nearest = self._knn.knn_indices[:, 0].copy()
        nearest[nearest == PADDING_INDEX] = -1
        cac = corrected_arc_curve(nearest, exclusion=self.subsequence_width)
        self.last_curve = cac
        best = int(np.argmin(cac))
        self.last_score = float(cac[best])

        if self.last_score > self.threshold:
            return None
        window_start = self._n_seen - self._knn.n_buffered
        change_point = window_start + best
        if self._last_report is not None and change_point - self._last_report < self.exclusion_zone:
            return None
        if self._last_report is not None and self._n_seen - self._last_report < self.exclusion_zone:
            return None
        self._last_report = change_point
        return change_point
