"""Adapters turning a real-valued stream into the binary/error streams expected
by concept-drift detectors (paper §4.1, DDM / HDDM / ADWIN competitors).

DDM, HDDM and ADWIN were designed to monitor the error rate of an online
learner that models the *current concept*.  To apply them to raw sensor
values, the adapters below model the current segment with its running mean
and standard deviation (re-estimated from scratch after every confirmed
drift) and emit either the binary indicator "the new value is surprising
under the current segment model" (:class:`PredictionErrorBinarizer`) or the
standardised surprise itself (:class:`StandardizedErrorStream`).  A shift in
the signal's level, scale or shape inflates the error stream, which is
exactly the sudden-drift signal these detectors were built for.

:class:`OnlinePredictor` is a small auxiliary forecaster (mean of the recent
history) that user code can combine with the drift detectors when an actual
short-horizon prediction model is preferred.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.utils.running_stats import RunningStats


class OnlinePredictor:
    """Tiny autoregressive-style predictor: the mean of the last ``order`` values."""

    def __init__(self, order: int = 10) -> None:
        self.order = max(1, int(order))
        self._history: collections.deque[float] = collections.deque(maxlen=self.order)

    def reset(self) -> None:
        """Clear the prediction history."""
        self._history.clear()

    def predict(self) -> float:
        """Predict the next value (0.0 before any history exists)."""
        if not self._history:
            return 0.0
        return float(np.mean(self._history))

    def observe(self, value: float) -> None:
        """Add the actual value to the history after prediction."""
        self._history.append(float(value))


class PredictionErrorBinarizer:
    """Convert a raw value stream into a 0/1 "surprising under the segment model" stream.

    The segment model is the running mean and standard deviation of all values
    observed since the last :meth:`reset`.  A value is flagged (1) when it
    deviates from the running mean by more than ``tolerance`` running standard
    deviations; for a stationary Gaussian segment this fires at a small,
    constant base rate, and after a level / scale change it fires persistently
    — the error-rate increase DDM monitors.
    """

    def __init__(self, order: int = 10, tolerance: float = 2.0, min_observations: int = 10) -> None:
        self.order = int(order)  # retained for API compatibility with the predictor variant
        self.tolerance = float(tolerance)
        self.min_observations = max(2, int(min_observations))
        self._stats = RunningStats()

    def reset(self) -> None:
        """Forget the segment model (called by the detector after a drift)."""
        self._stats = RunningStats()

    def update(self, value: float) -> int:
        """Return 1 when ``value`` is surprising under the current segment model."""
        value = float(value)
        if self._stats.count < self.min_observations:
            self._stats.update(value)
            return 0
        deviation = abs(value - self._stats.mean)
        flagged = int(deviation > self.tolerance * max(self._stats.std, 1e-12))
        self._stats.update(value)
        return flagged


class StandardizedErrorStream:
    """Convert a raw value stream into standardised deviations from the segment model.

    Emits ``|value - running_mean| / running_std`` (0.0 during the short
    initialisation phase).  Used by the HDDM competitors, which require a
    bounded statistic; callers clip the output to their assumed range.
    """

    def __init__(self, order: int = 10, min_observations: int = 10) -> None:
        self.order = int(order)
        self.min_observations = max(2, int(min_observations))
        self._stats = RunningStats()

    def reset(self) -> None:
        """Forget the segment model (called by the detector after a drift)."""
        self._stats = RunningStats()

    def update(self, value: float) -> float:
        """Return the standardised deviation of ``value`` from the segment model."""
        value = float(value)
        if self._stats.count < self.min_observations:
            self._stats.update(value)
            return 0.0
        z = abs(value - self._stats.mean) / max(self._stats.std, 1e-12)
        self._stats.update(value)
        return float(z)
