"""ChangeFinder (Yamanishi & Takeuchi 2002; paper Table 2).

ChangeFinder detects change points with a two-stage procedure built on
sequentially discounting autoregressive (SDAR) models:

1. a first SDAR model scores every observation with its negative predictive
   log-likelihood (outlier score),
2. the outlier scores are smoothed with a moving average,
3. a second SDAR model scores the smoothed series; high second-stage scores
   indicate sustained distributional shifts rather than isolated outliers.

A change point is reported when the final score crosses a threshold (the
paper's grid search selects 50), with an exclusion zone around recent reports.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.competitors.base import ScoreThresholdDetector, StreamSegmenter
from repro.utils.validation import check_positive_int


class SDAR:
    """Sequentially discounting autoregressive model of order ``k``."""

    def __init__(self, order: int = 5, discount: float = 0.01) -> None:
        if not 0.0 < discount < 1.0:
            raise ValueError("discount must lie in (0, 1)")
        self.order = max(1, int(order))
        self.discount = float(discount)
        self._mu = 0.0
        self._sigma = 1.0
        self._cov = np.zeros(self.order + 1)
        self._coeffs = np.zeros(self.order)
        self._history: collections.deque[float] = collections.deque(maxlen=self.order)
        self._initialised = False

    def update(self, value: float) -> float:
        """Update the model with ``value`` and return its outlier score.

        The score is the negative log-likelihood of ``value`` under the
        model's one-step-ahead Gaussian predictive distribution.
        """
        value = float(value)
        if not self._initialised:
            self._mu = value
            self._initialised = True
        r = self.discount
        self._mu = (1.0 - r) * self._mu + r * value

        history = np.asarray(self._history, dtype=np.float64)
        if history.shape[0] == self.order:
            centred_hist = history[::-1] - self._mu
            centred_value = value - self._mu
            for lag in range(self.order + 1):
                paired = centred_value * (centred_hist[lag - 1] if lag > 0 else centred_value)
                self._cov[lag] = (1.0 - r) * self._cov[lag] + r * paired
            # Yule-Walker estimate of the AR coefficients from the covariances
            toeplitz = np.empty((self.order, self.order))
            for i in range(self.order):
                for j in range(self.order):
                    toeplitz[i, j] = self._cov[abs(i - j)]
            toeplitz += 1e-6 * np.eye(self.order)
            try:
                self._coeffs = np.linalg.solve(toeplitz, self._cov[1:])
            except np.linalg.LinAlgError:  # pragma: no cover - defensive
                self._coeffs = np.zeros(self.order)
            prediction = self._mu + float(self._coeffs @ centred_hist)
        else:
            prediction = self._mu

        error = value - prediction
        self._sigma = (1.0 - r) * self._sigma + r * error * error
        sigma = max(self._sigma, 1e-12)
        score = 0.5 * (np.log(2.0 * np.pi * sigma) + error * error / sigma)
        self._history.append(value)
        return float(score)


class ChangeFinder(StreamSegmenter):
    """Two-stage SDAR change point detector.

    Parameters
    ----------
    order:
        AR order of both SDAR stages.
    discount:
        Discounting factor of both SDAR stages (smaller = longer memory).
    smoothing:
        Width of the moving average applied between the two stages.
    threshold:
        Second-stage score threshold for reporting a change point.  The paper
        grid-searches 10-100 on its own score scale and selects 50; this
        implementation's scores are plain Gaussian negative log-likelihoods,
        for which 5.0 plays the equivalent role (scores sit near 0 in
        stationary regions and spike above 10 at clear changes).
    exclusion_zone:
        Observations to wait after a report before reporting again.
    """

    name = "ChangeFinder"

    def __init__(
        self,
        order: int = 5,
        discount: float = 0.01,
        smoothing: int = 7,
        threshold: float = 5.0,
        exclusion_zone: int = 200,
    ) -> None:
        super().__init__()
        self.order = check_positive_int(order, "order")
        self.discount = float(discount)
        self.smoothing = check_positive_int(smoothing, "smoothing")
        self.threshold = float(threshold)
        self.exclusion_zone = int(exclusion_zone)
        self._stage1 = SDAR(order=self.order, discount=self.discount)
        self._stage2 = SDAR(order=self.order, discount=self.discount)
        self._smoother: collections.deque[float] = collections.deque(maxlen=self.smoothing)
        self._final_smoother: collections.deque[float] = collections.deque(maxlen=self.smoothing)
        self._detector = ScoreThresholdDetector(self.threshold, self.exclusion_zone)

    def reset(self) -> None:
        super().reset()
        self._stage1 = SDAR(order=self.order, discount=self.discount)
        self._stage2 = SDAR(order=self.order, discount=self.discount)
        self._smoother.clear()
        self._final_smoother.clear()
        self._detector.reset()

    def _update(self, value: float) -> int | None:
        outlier_score = self._stage1.update(value)
        self._smoother.append(outlier_score)
        smoothed = float(np.mean(self._smoother))
        change_score = self._stage2.update(smoothed)
        self._final_smoother.append(change_score)
        self.last_score = float(np.mean(self._final_smoother))
        if self._n_seen < 3 * self.smoothing:
            return None
        if self._detector.check(self.last_score, self._n_seen):
            return self._n_seen - self.smoothing
        return None
