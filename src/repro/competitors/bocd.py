"""Bayesian Online Changepoint Detection (Adams & MacKay 2007; paper Table 2).

BOCD maintains a posterior distribution over the run length — the number of
observations since the most recent change point.  With a conjugate
Normal-Gamma prior over the segment's mean and precision, the predictive
distribution of a new observation is a Student-t whose parameters are updated
per run-length hypothesis.  The paper's evaluation reports a change point
whenever the most probable run length drops by more than a threshold (the grid
search selects a drop of 150), which corresponds to the posterior abandoning
the "the current segment continues" hypothesis.

The run-length distribution is truncated to ``max_run_length`` hypotheses so
the per-point update cost stays bounded — without truncation BOCD's cost grows
with the stream length, which is why it did not finish on the paper's large
archives (§4.3).
"""

from __future__ import annotations

import numpy as np

from repro.competitors.base import StreamSegmenter
from repro.utils.validation import check_positive_int


class BOCD(StreamSegmenter):
    """Bayesian online changepoint detection with a Normal-Gamma model.

    Parameters
    ----------
    hazard:
        Constant hazard rate ``1 / expected_run_length``.
    run_length_drop:
        Report a change point when the maximum-a-posteriori run length drops
        by at least this many observations in one step (paper default 150).
    max_run_length:
        Truncation of the run-length distribution.
    mu0, kappa0, alpha0, beta0:
        Normal-Gamma prior hyper-parameters.
    """

    name = "BOCD"

    def __init__(
        self,
        hazard: float = 1.0 / 250.0,
        run_length_drop: int = 150,
        max_run_length: int = 2_000,
        mu0: float = 0.0,
        kappa0: float = 1.0,
        alpha0: float = 1.0,
        beta0: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < hazard < 1.0:
            raise ValueError("hazard must lie in (0, 1)")
        self.hazard = float(hazard)
        self.run_length_drop = check_positive_int(run_length_drop, "run_length_drop")
        self.max_run_length = check_positive_int(max_run_length, "max_run_length", minimum=10)
        self.prior = (float(mu0), float(kappa0), float(alpha0), float(beta0))
        self._init_state()

    def _init_state(self) -> None:
        mu0, kappa0, alpha0, beta0 = self.prior
        self._run_probs = np.array([1.0])
        self._mu = np.array([mu0])
        self._kappa = np.array([kappa0])
        self._alpha = np.array([alpha0])
        self._beta = np.array([beta0])
        self._previous_map_run = 0

    def reset(self) -> None:
        super().reset()
        self._init_state()

    # ------------------------------------------------------------------ #

    def _predictive_logpdf(self, value: float) -> np.ndarray:
        """Student-t predictive log density of ``value`` under each run length."""
        df = 2.0 * self._alpha
        scale_sq = self._beta * (self._kappa + 1.0) / (self._alpha * self._kappa)
        scale_sq = np.maximum(scale_sq, 1e-12)
        z = (value - self._mu) ** 2 / scale_sq
        from scipy.special import gammaln

        log_norm = (
            gammaln((df + 1.0) / 2.0)
            - gammaln(df / 2.0)
            - 0.5 * np.log(np.pi * df * scale_sq)
        )
        return log_norm - 0.5 * (df + 1.0) * np.log1p(z / df)

    def _update(self, value: float) -> int | None:
        log_pred = self._predictive_logpdf(value)
        pred = np.exp(log_pred - log_pred.max())
        pred /= max(pred.sum(), 1e-300)

        growth = self._run_probs * pred * (1.0 - self.hazard)
        change = float(np.sum(self._run_probs * pred) * self.hazard)
        new_probs = np.concatenate(([change], growth))
        new_probs /= max(new_probs.sum(), 1e-300)

        # posterior parameter updates per run-length hypothesis
        mu0, kappa0, alpha0, beta0 = self.prior
        new_mu = np.concatenate(([mu0], (self._kappa * self._mu + value) / (self._kappa + 1.0)))
        new_kappa = np.concatenate(([kappa0], self._kappa + 1.0))
        new_alpha = np.concatenate(([alpha0], self._alpha + 0.5))
        new_beta = np.concatenate(
            (
                [beta0],
                self._beta + 0.5 * self._kappa * (value - self._mu) ** 2 / (self._kappa + 1.0),
            )
        )

        if new_probs.shape[0] > self.max_run_length:
            new_probs = new_probs[: self.max_run_length]
            new_probs /= max(new_probs.sum(), 1e-300)
            new_mu = new_mu[: self.max_run_length]
            new_kappa = new_kappa[: self.max_run_length]
            new_alpha = new_alpha[: self.max_run_length]
            new_beta = new_beta[: self.max_run_length]

        self._run_probs = new_probs
        self._mu, self._kappa = new_mu, new_kappa
        self._alpha, self._beta = new_alpha, new_beta

        map_run = int(np.argmax(self._run_probs))
        self.last_score = float(self._run_probs[0])
        drop = self._previous_map_run - map_run
        self._previous_map_run = map_run
        if drop >= self.run_length_drop:
            # the new segment started map_run observations ago
            return self._n_seen - map_run
        return None
