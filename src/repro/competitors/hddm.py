"""HDDM — drift detection based on Hoeffding's and McDiarmid's bounds
(Frías-Blanco et al. 2015; paper Table 2).

Two variants are provided, following the original paper:

* :class:`HDDMA` (A-test) compares the running average of the monitored
  statistic before and after every candidate cut point using Hoeffding's
  inequality: a drift is signalled when the recent average exceeds the
  historical average by more than the confidence bound.
* :class:`HDDMW` (W-test) replaces the plain averages with exponentially
  weighted moving averages, which reacts faster to gradual drifts.

Both monitor the standardised prediction-error stream produced by
:class:`repro.competitors.adapters.StandardizedErrorStream` so they apply to
raw sensor values (§4.1).  The paper controls the number of issued drifts via
the confidence parameter, grid-searched to ``1e-60``; with the shorter
simulated streams of this reproduction a far less extreme default is used but
the original value remains selectable.
"""

from __future__ import annotations

import numpy as np

from repro.competitors.adapters import StandardizedErrorStream
from repro.competitors.base import StreamSegmenter
from repro.utils.running_stats import ExponentialMovingStats


class HDDMA(StreamSegmenter):
    """HDDM with the Hoeffding A-test (average comparison).

    Parameters
    ----------
    drift_confidence:
        Confidence level of the Hoeffding bound for signalling a drift.
    warning_confidence:
        Confidence level for entering the warning zone.
    predictor_order:
        History length of the error-stream predictor.
    value_range:
        Assumed range of the monitored statistic (Hoeffding's bound requires
        bounded values; the standardised error stream is clipped to it).
    """

    name = "HDDM"

    def __init__(
        self,
        drift_confidence: float = 1e-6,
        warning_confidence: float = 1e-3,
        predictor_order: int = 10,
        value_range: float = 6.0,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_confidence < warning_confidence < 1.0:
            raise ValueError("require 0 < drift_confidence < warning_confidence < 1")
        self.drift_confidence = float(drift_confidence)
        self.warning_confidence = float(warning_confidence)
        self.value_range = float(value_range)
        self.error_stream = StandardizedErrorStream(order=predictor_order)
        self._init_state()

    def _init_state(self) -> None:
        self._total_sum = 0.0
        self._total_count = 0
        self._cut_sum = 0.0
        self._cut_count = 0
        self._minimum_mean = float("inf")
        self._minimum_count = 0
        self._warning_at: int | None = None

    def reset(self) -> None:
        super().reset()
        self.error_stream.reset()
        self._init_state()

    def _bound(self, count: int, confidence: float) -> float:
        if count < 1:
            return float("inf")
        return self.value_range * np.sqrt(np.log(1.0 / confidence) / (2.0 * count))

    def _update(self, value: float) -> int | None:
        statistic = float(np.clip(self.error_stream.update(value), 0.0, self.value_range))
        self._total_sum += statistic
        self._total_count += 1

        mean = self._total_sum / self._total_count
        bound = self._bound(self._total_count, self.drift_confidence)
        if mean + bound < self._minimum_mean:
            self._minimum_mean = mean + bound
            self._minimum_count = self._total_count
            self._cut_sum = self._total_sum
            self._cut_count = self._total_count

        recent_count = self._total_count - self._cut_count
        if recent_count < 5:
            return None
        recent_mean = (self._total_sum - self._cut_sum) / recent_count
        baseline_mean = self._cut_sum / max(self._cut_count, 1)
        epsilon_drift = self._bound(recent_count, self.drift_confidence) + self._bound(
            max(self._cut_count, 1), self.drift_confidence
        )
        epsilon_warning = self._bound(recent_count, self.warning_confidence) + self._bound(
            max(self._cut_count, 1), self.warning_confidence
        )
        difference = recent_mean - baseline_mean
        self.last_score = difference / max(epsilon_drift, 1e-12)

        if difference > epsilon_drift:
            change_point = self._warning_at if self._warning_at is not None else (
                self._n_seen - recent_count
            )
            self._init_state()
            return change_point
        if difference > epsilon_warning:
            if self._warning_at is None:
                self._warning_at = self._n_seen
        else:
            self._warning_at = None
        return None


class HDDMW(StreamSegmenter):
    """HDDM with the McDiarmid W-test (exponentially weighted averages)."""

    name = "HDDM-W"

    def __init__(
        self,
        drift_confidence: float = 1e-6,
        warning_confidence: float = 1e-3,
        lambda_: float = 0.05,
        predictor_order: int = 10,
        value_range: float = 6.0,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_confidence < warning_confidence < 1.0:
            raise ValueError("require 0 < drift_confidence < warning_confidence < 1")
        if not 0.0 < lambda_ < 1.0:
            raise ValueError("lambda_ must lie in (0, 1)")
        self.drift_confidence = float(drift_confidence)
        self.warning_confidence = float(warning_confidence)
        self.lambda_ = float(lambda_)
        self.value_range = float(value_range)
        self.error_stream = StandardizedErrorStream(order=predictor_order)
        self._init_state()

    def _init_state(self) -> None:
        self._fast = ExponentialMovingStats(alpha=self.lambda_)
        self._slow_sum = 0.0
        self._slow_count = 0
        self._warning_at: int | None = None

    def reset(self) -> None:
        super().reset()
        self.error_stream.reset()
        self._init_state()

    def _bound(self, confidence: float) -> float:
        # McDiarmid bound for an EWMA with factor lambda over bounded values
        effective_n = max((2.0 - self.lambda_) / self.lambda_, 1.0)
        return self.value_range * np.sqrt(np.log(1.0 / confidence) / (2.0 * effective_n))

    def _update(self, value: float) -> int | None:
        statistic = float(np.clip(self.error_stream.update(value), 0.0, self.value_range))
        self._fast.update(statistic)
        self._slow_sum += statistic
        self._slow_count += 1
        if self._slow_count < 10:
            return None

        baseline = self._slow_sum / self._slow_count
        difference = self._fast.mean - baseline
        epsilon_drift = self._bound(self.drift_confidence)
        epsilon_warning = self._bound(self.warning_confidence)
        self.last_score = difference / max(epsilon_drift, 1e-12)

        if difference > epsilon_drift:
            change_point = self._warning_at if self._warning_at is not None else self._n_seen
            self._init_state()
            return change_point
        if difference > epsilon_warning:
            if self._warning_at is None:
                self._warning_at = self._n_seen
        else:
            self._warning_at = None
        return None
