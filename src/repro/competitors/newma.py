"""NEWMA — No-prior-knowledge Exponentially Weighted Moving Average
(Keriven, Garreau & Poli 2018; paper Table 2).

NEWMA maps each incoming observation (or a short sliding embedding of recent
observations) through a fixed random feature expansion and maintains two
exponentially weighted moving averages of the features with different
forgetting factors.  Under a stationary regime both averages converge to the
same value; after a change, the "fast" average reacts sooner than the "slow"
one and the norm of their difference spikes.  A change point is reported when
that norm exceeds an adaptive quantile threshold of its own recent history
(the paper's grid search selects the 1.0 quantile, i.e. the running maximum).
"""

from __future__ import annotations

import collections

import numpy as np

from repro.competitors.base import StreamSegmenter
from repro.utils.validation import check_positive_int, check_probability


class NEWMA(StreamSegmenter):
    """Model-free online change point detection with two EWMA statistics.

    Parameters
    ----------
    fast_forgetting, slow_forgetting:
        Forgetting factors of the fast and slow EWMA (fast > slow).
    embedding_size:
        Number of recent observations mapped through the random features.
    n_features:
        Dimensionality of the random Fourier feature map.
    quantile:
        Adaptive threshold quantile over the recent detection statistic
        (default 1.0, the paper's selected configuration).
    threshold_window:
        Number of recent statistics the quantile is computed over.
    exclusion_zone:
        Observations to wait after a report before reporting again.
    random_state:
        Seed for the random feature map.
    """

    name = "NEWMA"

    def __init__(
        self,
        fast_forgetting: float = 0.05,
        slow_forgetting: float = 0.01,
        embedding_size: int = 20,
        n_features: int = 50,
        quantile: float = 1.0,
        threshold_window: int = 500,
        exclusion_zone: int = 200,
        random_state: int | None = 42,
    ) -> None:
        super().__init__()
        if not 0.0 < slow_forgetting < fast_forgetting <= 1.0:
            raise ValueError("require 0 < slow_forgetting < fast_forgetting <= 1")
        self.fast_forgetting = float(fast_forgetting)
        self.slow_forgetting = float(slow_forgetting)
        self.embedding_size = check_positive_int(embedding_size, "embedding_size")
        self.n_features = check_positive_int(n_features, "n_features")
        self.quantile = check_probability(quantile, "quantile")
        self.threshold_window = check_positive_int(threshold_window, "threshold_window")
        self.exclusion_zone = int(exclusion_zone)
        rng = np.random.default_rng(random_state)
        self._weights = rng.normal(scale=1.0, size=(self.n_features, self.embedding_size))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self.n_features)
        self._init_state()

    def _init_state(self) -> None:
        self._embedding: collections.deque[float] = collections.deque(maxlen=self.embedding_size)
        self._fast = np.zeros(self.n_features)
        self._slow = np.zeros(self.n_features)
        self._statistics: collections.deque[float] = collections.deque(maxlen=self.threshold_window)
        self._last_report: int | None = None

    def reset(self) -> None:
        super().reset()
        self._init_state()

    # ------------------------------------------------------------------ #

    def _features(self) -> np.ndarray:
        """Random Fourier features of the current embedding window."""
        embedding = np.asarray(self._embedding, dtype=np.float64)
        scale = max(float(np.std(embedding)), 1e-6)
        projected = self._weights @ (embedding / scale) + self._phases
        return np.cos(projected)

    def _update(self, value: float) -> int | None:
        self._embedding.append(value)
        if len(self._embedding) < self.embedding_size:
            return None
        features = self._features()
        self._fast = (1.0 - self.fast_forgetting) * self._fast + self.fast_forgetting * features
        self._slow = (1.0 - self.slow_forgetting) * self._slow + self.slow_forgetting * features
        statistic = float(np.linalg.norm(self._fast - self._slow))
        self.last_score = statistic

        if len(self._statistics) >= self.threshold_window // 2:
            threshold = float(np.quantile(self._statistics, self.quantile))
            in_exclusion = (
                self._last_report is not None
                and self._n_seen - self._last_report < self.exclusion_zone
            )
            if statistic > threshold and not in_exclusion:
                self._last_report = self._n_seen
                self._statistics.append(statistic)
                return self._n_seen - self.embedding_size // 2
        self._statistics.append(statistic)
        return None
