"""Page-Hinkley test (Page 1954; mentioned in paper §4.1).

The Page-Hinkley test monitors the cumulative difference between the observed
values and their running mean.  When the cumulative statistic exceeds its
historical minimum by more than a threshold ``lambda``, a change in the mean
of the process is signalled.  The paper tried the test but "could not find a
configuration that outputs meaningful results" on the raw evaluation streams;
it is included here for completeness and for the ablation harness.
"""

from __future__ import annotations

from repro.competitors.base import StreamSegmenter
from repro.utils.running_stats import RunningStats


class PageHinkley(StreamSegmenter):
    """Page-Hinkley mean-shift detector.

    Parameters
    ----------
    delta:
        Magnitude of allowed fluctuation (subtracted from every deviation).
    threshold:
        Detection threshold ``lambda`` on the cumulative statistic.
    min_observations:
        Observations required before detection starts.
    two_sided:
        Monitor both upward and downward mean shifts.
    """

    name = "PageHinkley"

    def __init__(
        self,
        delta: float = 0.005,
        threshold: float = 50.0,
        min_observations: int = 30,
        two_sided: bool = True,
    ) -> None:
        super().__init__()
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_observations = int(min_observations)
        self.two_sided = bool(two_sided)
        self._init_state()

    def _init_state(self) -> None:
        self._stats = RunningStats()
        self._cumulative_up = 0.0
        self._minimum_up = 0.0
        self._cumulative_down = 0.0
        self._maximum_down = 0.0

    def reset(self) -> None:
        super().reset()
        self._init_state()

    def _update(self, value: float) -> int | None:
        self._stats.update(value)
        if self._stats.count < self.min_observations:
            return None
        deviation = value - self._stats.mean

        self._cumulative_up += deviation - self.delta
        self._minimum_up = min(self._minimum_up, self._cumulative_up)
        up_statistic = self._cumulative_up - self._minimum_up

        self._cumulative_down += deviation + self.delta
        self._maximum_down = max(self._maximum_down, self._cumulative_down)
        down_statistic = self._maximum_down - self._cumulative_down

        statistic = max(up_statistic, down_statistic) if self.two_sided else up_statistic
        self.last_score = statistic / max(self.threshold, 1e-12)

        if statistic > self.threshold:
            change_point = self._n_seen
            self._init_state()
            return change_point
        return None
