"""ADWIN — ADaptive WINdowing (Bifet & Gavaldà 2007; paper Table 2).

ADWIN keeps a variable-length window of the most recent observations,
compressed into exponential histogram buckets so that memory and update cost
grow only logarithmically with the window length.  Whenever the means of two
sub-windows obtained by cutting the window differ by more than a bound derived
from Hoeffding's inequality (with confidence parameter ``delta``), the older
sub-window is dropped and the cut position is reported as a change point.

The paper's grid search selects ``delta = 0.01`` for the raw-value streams of
the evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.competitors.base import StreamSegmenter
from repro.utils.validation import check_positive_int


class _Bucket:
    """One exponential-histogram bucket: a sum of values and their count."""

    __slots__ = ("total", "variance_sum", "count")

    def __init__(self, total: float, variance_sum: float, count: int) -> None:
        self.total = total
        self.variance_sum = variance_sum
        self.count = count


class ADWIN(StreamSegmenter):
    """Adaptive windowing drift detector.

    Parameters
    ----------
    delta:
        Confidence parameter of the Hoeffding-style cut condition
        (default 0.01, the paper's selected configuration).
    max_buckets_per_level:
        Maximum number of same-sized buckets kept before two are merged.
    check_interval:
        Evaluate cut conditions only every this many observations (ADWIN's
        standard optimisation; 1 = every point).
    min_window:
        Minimum total window length before cuts are considered.
    """

    name = "ADWIN"

    def __init__(
        self,
        delta: float = 0.01,
        max_buckets_per_level: int = 5,
        check_interval: int = 32,
        min_window: int = 300,
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must lie in (0, 1)")
        self.delta = float(delta)
        self.max_buckets_per_level = check_positive_int(
            max_buckets_per_level, "max_buckets_per_level", minimum=2
        )
        self.check_interval = check_positive_int(check_interval, "check_interval")
        self.min_window = check_positive_int(min_window, "min_window", minimum=4)
        self._buckets: list[list[_Bucket]] = [[]]

    def reset(self) -> None:
        super().reset()
        self._buckets = [[]]

    # ------------------------------------------------------------------ #

    @property
    def window_length(self) -> int:
        """Number of observations currently represented by the histogram."""
        return sum(bucket.count for level in self._buckets for bucket in level)

    @property
    def window_mean(self) -> float:
        """Mean of the adaptive window."""
        total = sum(bucket.total for level in self._buckets for bucket in level)
        count = self.window_length
        return total / count if count else 0.0

    def _insert(self, value: float) -> None:
        self._buckets[0].insert(0, _Bucket(value, 0.0, 1))
        self._compress()

    def _compress(self) -> None:
        level = 0
        while level < len(self._buckets):
            if len(self._buckets[level]) > self.max_buckets_per_level:
                oldest = self._buckets[level].pop()
                second = self._buckets[level].pop()
                merged = _Bucket(
                    oldest.total + second.total,
                    oldest.variance_sum + second.variance_sum,
                    oldest.count + second.count,
                )
                if level + 1 == len(self._buckets):
                    self._buckets.append([])
                self._buckets[level + 1].insert(0, merged)
            level += 1

    def _all_buckets_old_to_new(self) -> list[_Bucket]:
        """Buckets ordered from the oldest to the newest observation."""
        ordered: list[_Bucket] = []
        for level in reversed(self._buckets):
            ordered.extend(level)
        return ordered

    def _cut_expression(self, n0: int, n1: int, mean0: float, mean1: float) -> bool:
        """Hoeffding-style condition that the two sub-window means differ."""
        n = n0 + n1
        if n0 < 1 or n1 < 1:
            return False
        delta_prime = self.delta / max(np.log(max(n, 2)), 1.0)
        harmonic = 1.0 / n0 + 1.0 / n1
        epsilon = np.sqrt(0.5 * harmonic * np.log(4.0 / delta_prime))
        return abs(mean0 - mean1) > epsilon

    def _drop_oldest_buckets(self, n_drop_observations: int) -> None:
        """Remove histogram content covering the oldest observations."""
        remaining = n_drop_observations
        for level in reversed(range(len(self._buckets))):
            while self._buckets[level] and remaining > 0:
                oldest = self._buckets[level][-1]
                if oldest.count <= remaining:
                    remaining -= oldest.count
                    self._buckets[level].pop()
                else:
                    # partial drop: scale the bucket down proportionally
                    fraction = (oldest.count - remaining) / oldest.count
                    oldest.total *= fraction
                    oldest.count -= remaining
                    remaining = 0
            if remaining == 0:
                break

    def _update(self, value: float) -> int | None:
        # normalise to [0, 1]-ish scale using a robust running range so the
        # Hoeffding bound (which assumes bounded values) stays meaningful
        self._insert(float(value))
        if self.window_length < self.min_window:
            return None
        if (self._n_seen % self.check_interval) != 0:
            return None

        buckets = self._all_buckets_old_to_new()
        total = sum(b.total for b in buckets)
        count = sum(b.count for b in buckets)
        values_scale = max(abs(total) / max(count, 1), 1.0)

        # try every bucket boundary as a cut, oldest first
        n0, sum0 = 0, 0.0
        for i, bucket in enumerate(buckets[:-1]):
            n0 += bucket.count
            sum0 += bucket.total
            n1 = count - n0
            sum1 = total - sum0
            mean0 = (sum0 / n0) / values_scale
            mean1 = (sum1 / n1) / values_scale
            if n0 >= self.min_window // 2 and n1 >= self.min_window // 2:
                if self._cut_expression(n0, n1, mean0, mean1):
                    self.last_score = abs(mean0 - mean1)
                    change_point = self._n_seen - n1
                    self._drop_oldest_buckets(n0)
                    return change_point
        self.last_score = 0.0
        return None
