"""The eight state-of-the-art competitors of the paper's evaluation (Table 2).

Every competitor implements the :class:`~repro.competitors.base.StreamSegmenter`
interface, so ClaSS and all competitors can be driven by the same evaluation
runner and stream-engine operators.  :func:`get_competitor` and
:data:`COMPETITOR_REGISTRY` provide name-based construction with the
hyper-parameters the paper's grid search selected.
"""

from __future__ import annotations

from typing import Callable

from repro.competitors.adapters import (
    OnlinePredictor,
    PredictionErrorBinarizer,
    StandardizedErrorStream,
)
from repro.competitors.adwin import ADWIN
from repro.competitors.base import ScoreThresholdDetector, StreamSegmenter
from repro.competitors.bocd import BOCD
from repro.competitors.change_finder import SDAR, ChangeFinder
from repro.competitors.costs import COST_FUNCTIONS, discrepancy, get_cost_function
from repro.competitors.ddm import DDM
from repro.competitors.floss import FLOSS, corrected_arc_curve
from repro.competitors.hddm import HDDMA, HDDMW
from repro.competitors.newma import NEWMA
from repro.competitors.page_hinkley import PageHinkley
from repro.competitors.window_segmenter import WindowSegmenter
from repro.utils.exceptions import ConfigurationError

#: Competitor constructors keyed by the names used throughout the paper.
COMPETITOR_REGISTRY: dict[str, Callable[..., StreamSegmenter]] = {
    "FLOSS": FLOSS,
    "Window": WindowSegmenter,
    "BOCD": BOCD,
    "ChangeFinder": ChangeFinder,
    "NEWMA": NEWMA,
    "ADWIN": ADWIN,
    "DDM": DDM,
    "HDDM": HDDMA,
    "HDDM-W": HDDMW,
    "PageHinkley": PageHinkley,
}

#: The eight competitors evaluated against ClaSS in §4.3.
PAPER_COMPETITORS = (
    "FLOSS",
    "Window",
    "BOCD",
    "ChangeFinder",
    "NEWMA",
    "ADWIN",
    "DDM",
    "HDDM",
)


def get_competitor(name: str, **kwargs) -> StreamSegmenter:
    """Construct a competitor by its paper name with optional overrides."""
    if name not in COMPETITOR_REGISTRY:
        raise ConfigurationError(
            f"unknown competitor {name!r}; expected one of {sorted(COMPETITOR_REGISTRY)}"
        )
    return COMPETITOR_REGISTRY[name](**kwargs)


__all__ = [
    "StreamSegmenter",
    "ScoreThresholdDetector",
    "FLOSS",
    "WindowSegmenter",
    "BOCD",
    "ChangeFinder",
    "SDAR",
    "NEWMA",
    "ADWIN",
    "DDM",
    "HDDMA",
    "HDDMW",
    "PageHinkley",
    "OnlinePredictor",
    "PredictionErrorBinarizer",
    "StandardizedErrorStream",
    "corrected_arc_curve",
    "discrepancy",
    "get_cost_function",
    "COST_FUNCTIONS",
    "COMPETITOR_REGISTRY",
    "PAPER_COMPETITORS",
    "get_competitor",
]
