"""Segment cost functions for the discrepancy-based Window baseline (paper §4.1).

The Window competitor follows the selective review of Truong et al.: a sliding
window is split in the middle, both halves and the full window are scored with
a cost function, and the discrepancy ``cost(full) - cost(left) - cost(right)``
indicates how much better two separate models explain the data than a single
one.  The paper's grid search covers autoregressive, Gaussian, kernel, L1, L2
and Mahalanobis costs; all six are implemented here for univariate segments.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.exceptions import ConfigurationError

#: Names accepted by :func:`get_cost_function`.
COST_FUNCTIONS = ("ar", "gaussian", "kernel", "l1", "l2", "mahalanobis")

_EPS = 1e-12


def cost_l2(segment: np.ndarray) -> float:
    """Sum of squared deviations from the segment mean (piecewise-constant L2)."""
    segment = np.asarray(segment, dtype=np.float64)
    if segment.size == 0:
        return 0.0
    return float(np.sum((segment - segment.mean()) ** 2))


def cost_l1(segment: np.ndarray) -> float:
    """Sum of absolute deviations from the segment median (robust L1 cost)."""
    segment = np.asarray(segment, dtype=np.float64)
    if segment.size == 0:
        return 0.0
    return float(np.sum(np.abs(segment - np.median(segment))))


def cost_gaussian(segment: np.ndarray) -> float:
    """Negative Gaussian log-likelihood cost: ``n * log(var)`` (MLE plug-in)."""
    segment = np.asarray(segment, dtype=np.float64)
    if segment.size < 2:
        return 0.0
    variance = max(float(np.var(segment)), _EPS)
    return float(segment.size * np.log(variance))


def cost_mahalanobis(segment: np.ndarray) -> float:
    """Mahalanobis-metric cost; for univariate data the variance-scaled L2 cost."""
    segment = np.asarray(segment, dtype=np.float64)
    if segment.size < 2:
        return 0.0
    variance = max(float(np.var(segment)), _EPS)
    return float(np.sum((segment - segment.mean()) ** 2) / variance)


def cost_ar(segment: np.ndarray, order: int = 3) -> float:
    """Autoregressive residual cost: squared residuals of a least-squares AR fit.

    The AR cost with threshold 0.2 is the configuration the paper selects for
    the Window baseline (highest mean Covering in the grid search).
    """
    segment = np.asarray(segment, dtype=np.float64)
    n = segment.size
    if n <= order + 1:
        return cost_l2(segment)
    design = np.column_stack(
        [segment[order - lag - 1 : n - lag - 1] for lag in range(order)]
        + [np.ones(n - order)]
    )
    target = segment[order:]
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = target - design @ coefficients
    return float(np.sum(residuals * residuals))


def cost_kernel(segment: np.ndarray, bandwidth: float | None = None) -> float:
    """RBF kernel cost: ``n - (1/n) * sum_ij k(x_i, x_j)`` (kernel CPD style)."""
    segment = np.asarray(segment, dtype=np.float64)
    n = segment.size
    if n < 2:
        return 0.0
    if bandwidth is None:
        spread = float(np.median(np.abs(segment - np.median(segment))))
        bandwidth = max(spread, _EPS)
    differences = segment[:, None] - segment[None, :]
    gram = np.exp(-(differences * differences) / (2.0 * bandwidth * bandwidth))
    return float(n - gram.sum() / n)


_COSTS: dict[str, Callable[[np.ndarray], float]] = {
    "ar": cost_ar,
    "gaussian": cost_gaussian,
    "kernel": cost_kernel,
    "l1": cost_l1,
    "l2": cost_l2,
    "mahalanobis": cost_mahalanobis,
}


def get_cost_function(name: str) -> Callable[[np.ndarray], float]:
    """Look up a cost function by name."""
    if name not in _COSTS:
        raise ConfigurationError(
            f"unknown cost function {name!r}; expected one of {COST_FUNCTIONS}"
        )
    return _COSTS[name]


def discrepancy(segment: np.ndarray, cost: Callable[[np.ndarray], float]) -> float:
    """Normalised gain of splitting ``segment`` in the middle under ``cost``.

    Returns a value in ``[0, 1]`` (after clipping): 0 when splitting does not
    help at all, values close to 1 when the two halves are far better
    explained by separate models.
    """
    segment = np.asarray(segment, dtype=np.float64)
    n = segment.size
    if n < 4:
        return 0.0
    half = n // 2
    full_cost = cost(segment)
    split_cost = cost(segment[:half]) + cost(segment[half:])
    if full_cost <= _EPS:
        return 0.0
    gain = (full_cost - split_cost) / full_cost
    return float(np.clip(gain, 0.0, 1.0))
