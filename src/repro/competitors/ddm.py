"""DDM — Drift Detection Method (Gama et al. 2004; paper Table 2).

DDM monitors the error rate of an online learner.  For a stationary process
the error rate is expected to decrease or stay level; a significant increase
of ``p + s`` (error probability plus its standard deviation) above the best
value observed so far signals a drift.  Crossing ``p_min + warning_factor *
s_min`` raises a warning, crossing ``p_min + drift_factor * s_min`` confirms
the drift and reports a change point at the position where the warning zone
was entered.

To apply DDM to raw sensor values, the stream is first converted into a
binary prediction-error stream by
:class:`repro.competitors.adapters.PredictionErrorBinarizer` (see §4.1); the
paper controls the amount of issued drifts with the ``drift_factor``
parameter (grid-searched to 20).
"""

from __future__ import annotations

from repro.competitors.adapters import PredictionErrorBinarizer
from repro.competitors.base import StreamSegmenter
from repro.utils.validation import check_positive_int


class DDM(StreamSegmenter):
    """Drift detection method on a binarised prediction-error stream.

    Parameters
    ----------
    warning_factor:
        Multiple of the error standard deviation that triggers the warning zone.
    drift_factor:
        Multiple of the error standard deviation that confirms a drift
        (default 20, the paper's selected configuration).
    min_observations:
        Observations required before drift detection starts.
    predictor_order:
        History length of the online predictor used by the binariser.
    """

    name = "DDM"

    def __init__(
        self,
        warning_factor: float = 2.0,
        drift_factor: float = 20.0,
        min_observations: int = 30,
        predictor_order: int = 10,
    ) -> None:
        super().__init__()
        if drift_factor <= warning_factor:
            raise ValueError("drift_factor must exceed warning_factor")
        self.warning_factor = float(warning_factor)
        self.drift_factor = float(drift_factor)
        self.min_observations = check_positive_int(min_observations, "min_observations")
        self.binariser = PredictionErrorBinarizer(order=predictor_order)
        self._init_state()

    def _init_state(self) -> None:
        self._n_errors = 0
        self._n_samples = 0
        self._p_min = float("inf")
        self._s_min = float("inf")
        self._warning_at: int | None = None

    def reset(self) -> None:
        super().reset()
        self.binariser.reset()
        self._init_state()

    def _update(self, value: float) -> int | None:
        error = self.binariser.update(value)
        self._n_samples += 1
        self._n_errors += error
        if self._n_samples < self.min_observations:
            return None

        p = self._n_errors / self._n_samples
        s = (p * (1.0 - p) / self._n_samples) ** 0.5
        if p + s < self._p_min + self._s_min:
            self._p_min, self._s_min = p, s
        self.last_score = (p + s - self._p_min) / max(self._s_min, 1e-12)

        if p + s > self._p_min + self.drift_factor * self._s_min:
            change_point = self._warning_at if self._warning_at is not None else self._n_seen
            # reset the error statistics for the new concept
            self._init_state()
            self.binariser.reset()
            return change_point
        if p + s > self._p_min + self.warning_factor * self._s_min:
            if self._warning_at is None:
                self._warning_at = self._n_seen
        else:
            self._warning_at = None
        return None
