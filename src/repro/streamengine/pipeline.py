"""Pipeline assembly and execution (the engine's "job graph" and "runtime").

A pipeline is a linear chain ``source -> operator* -> sink*`` executed with
one-at-a-time delivery, mirroring the processing-time, sequential execution
environment the paper uses for its Flink throughput measurement (§4.4).
Sources may emit individual :class:`~repro.streamengine.records.Record`
elements or :class:`~repro.streamengine.records.RecordBatch` micro-batches;
batches move through the chain wholesale via each operator's
``process_batch`` and are exploded only at sinks that cannot consume them
(a ``consume_batch`` method on a sink takes precedence).  The run returns a
:class:`PipelineMetrics` object with record *and* batch counts and the
achieved throughput, which is what the Flink-operator benchmark reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.streamengine.operators import Operator
from repro.streamengine.records import Record, RecordBatch
from repro.utils.exceptions import ConfigurationError

StreamItem = Union[Record, RecordBatch]


@dataclass
class PipelineMetrics:
    """Execution statistics of one pipeline run."""

    n_source_records: int = 0
    n_source_batches: int = 0
    n_sink_records: int = 0
    runtime_seconds: float = 0.0
    operator_counts: dict = field(default_factory=dict)
    operator_batches: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Source records processed per second."""
        if self.runtime_seconds <= 0:
            return float("inf")
        return self.n_source_records / self.runtime_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average records per source batch (1.0 for a record-at-a-time run)."""
        if self.n_source_batches == 0:
            return 1.0
        return self.n_source_records / self.n_source_batches


class Pipeline:
    """A linear streaming job: one source, any number of operators and sinks."""

    def __init__(self, source: Iterable[StreamItem], name: str = "pipeline") -> None:
        self.source = source
        self.name = name
        self._operators: list[Operator] = []
        self._sinks: list = []

    def add_operator(self, operator: Operator) -> "Pipeline":
        """Append an operator to the chain (fluent API)."""
        if not isinstance(operator, Operator):
            raise ConfigurationError("operator must derive from streamengine.Operator")
        self._operators.append(operator)
        return self

    def add_sink(self, sink) -> "Pipeline":
        """Register a sink; every record leaving the last operator reaches all sinks."""
        if not hasattr(sink, "consume"):
            raise ConfigurationError("sink must provide a consume(record) method")
        self._sinks.append(sink)
        return self

    # ------------------------------------------------------------------ #

    def _deliver(self, item: StreamItem, metrics: PipelineMetrics) -> None:
        """Hand one item that cleared the whole operator chain to all sinks."""
        if isinstance(item, RecordBatch):
            metrics.n_sink_records += len(item)
            for sink in self._sinks:
                if hasattr(sink, "consume_batch"):
                    sink.consume_batch(item)
                else:
                    for record in item.records():
                        sink.consume(record)
        else:
            metrics.n_sink_records += 1
            for sink in self._sinks:
                sink.consume(item)

    def _propagate(
        self, items: Iterable[StreamItem], operator_index: int, metrics: PipelineMetrics
    ) -> None:
        """Push records/batches through operators starting at ``operator_index``."""
        if operator_index >= len(self._operators):
            for item in items:
                self._deliver(item, metrics)
            return
        operator = self._operators[operator_index]
        counts, batches = metrics.operator_counts, metrics.operator_batches
        for item in items:
            if isinstance(item, RecordBatch):
                counts[operator.name] = counts.get(operator.name, 0) + len(item)
                batches[operator.name] = batches.get(operator.name, 0) + 1
                downstream = operator.process_batch(item)
            else:
                counts[operator.name] = counts.get(operator.name, 0) + 1
                downstream = operator.process(item)
            self._propagate(downstream, operator_index + 1, metrics)

    def run(self) -> PipelineMetrics:
        """Execute the pipeline to completion and return its metrics.

        Raises
        ------
        ConfigurationError
            If the source yields anything other than a :class:`Record` or a
            :class:`RecordBatch` — surfaced immediately with the offending
            type instead of failing obscurely deeper in the operator chain.
        """
        metrics = PipelineMetrics()
        start = time.perf_counter()
        for item in self.source:
            if isinstance(item, RecordBatch):
                metrics.n_source_records += len(item)
                metrics.n_source_batches += 1
            elif isinstance(item, Record):
                metrics.n_source_records += 1
            else:
                raise ConfigurationError(
                    f"pipeline {self.name!r}: source yielded an unsupported item of "
                    f"type {type(item).__name__!r}; sources must yield Record or "
                    "RecordBatch elements"
                )
            self._propagate([item], 0, metrics)
        # flush operators in order so pending state drains through the chain
        for index, operator in enumerate(self._operators):
            self._propagate(operator.flush(), index + 1, metrics)
        metrics.runtime_seconds = time.perf_counter() - start
        return metrics
