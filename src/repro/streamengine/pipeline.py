"""Pipeline assembly and execution (the engine's "job graph" and "runtime").

A pipeline is a linear chain ``source -> operator* -> sink*`` executed with
one-at-a-time delivery, mirroring the processing-time, sequential execution
environment the paper uses for its Flink throughput measurement (§4.4).  The
run returns a :class:`PipelineMetrics` object with the record counts and the
achieved throughput, which is what the Flink-operator benchmark reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.streamengine.operators import Operator
from repro.streamengine.records import Record
from repro.utils.exceptions import ConfigurationError


@dataclass
class PipelineMetrics:
    """Execution statistics of one pipeline run."""

    n_source_records: int = 0
    n_sink_records: int = 0
    runtime_seconds: float = 0.0
    operator_counts: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Source records processed per second."""
        if self.runtime_seconds <= 0:
            return float("inf")
        return self.n_source_records / self.runtime_seconds


class Pipeline:
    """A linear streaming job: one source, any number of operators and sinks."""

    def __init__(self, source: Iterable[Record], name: str = "pipeline") -> None:
        self.source = source
        self.name = name
        self._operators: list[Operator] = []
        self._sinks: list = []

    def add_operator(self, operator: Operator) -> "Pipeline":
        """Append an operator to the chain (fluent API)."""
        if not isinstance(operator, Operator):
            raise ConfigurationError("operator must derive from streamengine.Operator")
        self._operators.append(operator)
        return self

    def add_sink(self, sink) -> "Pipeline":
        """Register a sink; every record leaving the last operator reaches all sinks."""
        if not hasattr(sink, "consume"):
            raise ConfigurationError("sink must provide a consume(record) method")
        self._sinks.append(sink)
        return self

    # ------------------------------------------------------------------ #

    def _propagate(self, records: Iterable[Record], operator_index: int, metrics: PipelineMetrics) -> None:
        """Push records through operators starting at ``operator_index``."""
        if operator_index >= len(self._operators):
            for record in records:
                metrics.n_sink_records += 1
                for sink in self._sinks:
                    sink.consume(record)
            return
        operator = self._operators[operator_index]
        for record in records:
            metrics.operator_counts[operator.name] = metrics.operator_counts.get(operator.name, 0) + 1
            self._propagate(operator.process(record), operator_index + 1, metrics)

    def run(self) -> PipelineMetrics:
        """Execute the pipeline to completion and return its metrics."""
        metrics = PipelineMetrics()
        start = time.perf_counter()
        for record in self.source:
            metrics.n_source_records += 1
            self._propagate([record], 0, metrics)
        # flush operators in order so pending state drains through the chain
        for index, operator in enumerate(self._operators):
            self._propagate(operator.flush(), index + 1, metrics)
        metrics.runtime_seconds = time.perf_counter() - start
        return metrics
