"""Stream sinks: terminal consumers of a pipeline.

The paper's Flink job outputs a stream of change points; :class:`ChangePointSink`
collects exactly that, while :class:`CollectSink` and :class:`CallbackSink`
cover generic use.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.streamengine.records import ChangePointEvent, Record, RecordBatch


class CollectSink:
    """Collect every record that reaches the end of the pipeline."""

    def __init__(self) -> None:
        self.records: list[Record] = []

    def consume(self, record: Record) -> None:
        """Store one record."""
        self.records.append(record)

    def consume_batch(self, batch: RecordBatch) -> None:
        """Store every record of a batch (batches are exploded on arrival)."""
        self.records.extend(batch.records())

    @property
    def values(self) -> list:
        """The plain values of all collected records."""
        return [record.value for record in self.records]


class ChangePointSink(CollectSink):
    """Collect only change point events and expose them as arrays."""

    def consume(self, record: Record) -> None:
        if isinstance(record.value, ChangePointEvent):
            self.records.append(record)

    def consume_batch(self, batch: RecordBatch) -> None:
        """Value batches never carry events; drop them without exploding."""
        return

    @property
    def change_points(self) -> np.ndarray:
        """Change point locations in stream time."""
        return np.asarray([r.value.change_point for r in self.records], dtype=np.int64)

    @property
    def detection_delays(self) -> np.ndarray:
        """Delay (observations) between each change point and its detection."""
        return np.asarray([r.value.detection_delay for r in self.records], dtype=np.int64)


class CallbackSink:
    """Invoke a user callback for every record (e.g. alerting, logging)."""

    def __init__(self, callback: Callable[[Record], None]) -> None:
        self.callback = callback
        self.n_consumed = 0

    def consume(self, record: Record) -> None:
        """Forward one record to the callback."""
        self.callback(record)
        self.n_consumed += 1
