"""Stream operators: the processing vertices of a pipeline.

Operators receive one record at a time and emit zero or more records
downstream — the "one-at-a-time" processing model of Flink that the paper's
window operator targets.  Besides the generic map / filter / sliding-window
operators, :class:`SegmentationOperator` wraps any object implementing the
streaming segmentation protocol (ClaSS or any competitor) and turns its
reported change points into :class:`~repro.streamengine.records.ChangePointEvent`
records, which is precisely what the paper's ClaSS Flink window operator does.
"""

from __future__ import annotations

import abc
import collections
from typing import Callable, Iterable

import numpy as np

from repro.streamengine.records import ChangePointEvent, Record


class Operator(abc.ABC):
    """Base class of all stream operators."""

    #: Name shown in pipeline summaries.
    name: str = "operator"

    @abc.abstractmethod
    def process(self, record: Record) -> Iterable[Record]:
        """Consume one record and yield downstream records."""

    def flush(self) -> Iterable[Record]:
        """Emit any pending records when the stream ends (default: nothing)."""
        return []


class MapOperator(Operator):
    """Apply a function to every record's value."""

    name = "map"

    def __init__(self, function: Callable[[float], float]) -> None:
        self.function = function

    def process(self, record: Record) -> Iterable[Record]:
        yield Record(
            timestamp=record.timestamp,
            value=self.function(record.value),
            stream=record.stream,
            metadata=record.metadata,
        )


class FilterOperator(Operator):
    """Drop records for which the predicate is False."""

    name = "filter"

    def __init__(self, predicate: Callable[[Record], bool]) -> None:
        self.predicate = predicate

    def process(self, record: Record) -> Iterable[Record]:
        if self.predicate(record):
            yield record


class SlidingWindowOperator(Operator):
    """Emit an aggregate of the last ``window_size`` values every ``slide`` records."""

    name = "sliding_window"

    def __init__(
        self,
        window_size: int,
        slide: int = 1,
        aggregate: Callable[[np.ndarray], float] = np.mean,
    ) -> None:
        self.window_size = int(window_size)
        self.slide = max(1, int(slide))
        self.aggregate = aggregate
        self._buffer: collections.deque[float] = collections.deque(maxlen=self.window_size)
        self._count = 0

    def process(self, record: Record) -> Iterable[Record]:
        self._buffer.append(float(record.value))
        self._count += 1
        if len(self._buffer) == self.window_size and self._count % self.slide == 0:
            value = float(self.aggregate(np.asarray(self._buffer)))
            yield Record(timestamp=record.timestamp, value=value, stream=record.stream)


class SegmentationOperator(Operator):
    """Wrap a streaming segmenter (ClaSS or a competitor) as a stream operator.

    Incoming value records are fed to the segmenter; whenever it reports a
    change point, a :class:`ChangePointEvent` record is emitted downstream.
    """

    name = "segmentation"

    def __init__(self, segmenter, forward_values: bool = False) -> None:
        self.segmenter = segmenter
        self.forward_values = bool(forward_values)
        self.n_processed = 0

    def process(self, record: Record) -> Iterable[Record]:
        self.n_processed += 1
        change_point = self.segmenter.update(float(record.value))
        if self.forward_values:
            yield record
        if change_point is not None:
            event = ChangePointEvent(
                change_point=int(change_point),
                detected_at=int(record.timestamp) + 1,
                stream=record.stream,
                score=float(getattr(self.segmenter, "last_score", 0.0)),
            )
            yield Record(timestamp=record.timestamp, value=event, stream=record.stream)

    def flush(self) -> Iterable[Record]:
        if hasattr(self.segmenter, "finalise"):
            self.segmenter.finalise()
        return []
