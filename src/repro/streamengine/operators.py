"""Stream operators: the processing vertices of a pipeline.

Operators receive records — one at a time, or as
:class:`~repro.streamengine.records.RecordBatch` micro-batches — and emit
zero or more records downstream.  The one-at-a-time model mirrors Flink's
processing contract; the batch path is the engine's amortised fast lane:
:meth:`Operator.process_batch` defaults to exploding the batch through
:meth:`Operator.process`, and operators with a cheaper batch implementation
override it.  :class:`SegmentationOperator` wraps any object implementing the
streaming segmentation protocol (ClaSS or any competitor), forwards whole
batches to the segmenter's chunked ingestion path, and turns its reported
change points into :class:`~repro.streamengine.records.ChangePointEvent`
records — precisely the role of the paper's ClaSS Flink window operator.
"""

from __future__ import annotations

import abc
import collections
from typing import Callable, Iterable

import numpy as np

from repro.streamengine.records import ChangePointEvent, Record, RecordBatch


class Operator(abc.ABC):
    """Base class of all stream operators."""

    #: Name shown in pipeline summaries.
    name: str = "operator"

    @abc.abstractmethod
    def process(self, record: Record) -> Iterable[Record]:
        """Consume one record and yield downstream records."""

    def process_batch(self, batch: RecordBatch) -> Iterable[Record | RecordBatch]:
        """Consume one batch and yield downstream records and/or batches.

        The default implementation explodes the batch through
        :meth:`process`, which is correct for every operator; subclasses
        override it when they can handle the batch wholesale.
        """
        for record in batch.records():
            yield from self.process(record)

    def flush(self) -> Iterable[Record]:
        """Emit any pending records when the stream ends (default: nothing)."""
        return []


class MapOperator(Operator):
    """Apply a function to every record's value."""

    name = "map"

    def __init__(self, function: Callable[[float], float]) -> None:
        self.function = function

    def process(self, record: Record) -> Iterable[Record]:
        yield Record(
            timestamp=record.timestamp,
            value=self.function(record.value),
            stream=record.stream,
            metadata=record.metadata,
        )

    def process_batch(self, batch: RecordBatch) -> Iterable[RecordBatch]:
        mapped = np.asarray(
            [self.function(float(value)) for value in batch.values], dtype=np.float64
        )
        yield RecordBatch(
            timestamps=batch.timestamps,
            values=mapped,
            stream=batch.stream,
            metadata=batch.metadata,
        )


class FilterOperator(Operator):
    """Drop records for which the predicate is False."""

    name = "filter"

    def __init__(self, predicate: Callable[[Record], bool]) -> None:
        self.predicate = predicate

    def process(self, record: Record) -> Iterable[Record]:
        if self.predicate(record):
            yield record


class SlidingWindowOperator(Operator):
    """Emit an aggregate of the last ``window_size`` values every ``slide`` records."""

    name = "sliding_window"

    def __init__(
        self,
        window_size: int,
        slide: int = 1,
        aggregate: Callable[[np.ndarray], float] = np.mean,
    ) -> None:
        self.window_size = int(window_size)
        self.slide = max(1, int(slide))
        self.aggregate = aggregate
        self._buffer: collections.deque[float] = collections.deque(maxlen=self.window_size)
        self._count = 0

    def process(self, record: Record) -> Iterable[Record]:
        self._buffer.append(float(record.value))
        self._count += 1
        if len(self._buffer) == self.window_size and self._count % self.slide == 0:
            value = float(self.aggregate(np.asarray(self._buffer)))
            yield Record(timestamp=record.timestamp, value=value, stream=record.stream)


class SegmentationOperator(Operator):
    """Wrap a streaming segmenter (ClaSS or a competitor) as a stream operator.

    Incoming value records are fed to the segmenter; whenever it reports a
    change point, a :class:`ChangePointEvent` record is emitted downstream.
    Batches are forwarded to the segmenter's chunked ``process`` path in one
    call, so the operator adds only per-batch (not per-record) overhead.
    """

    name = "segmentation"

    def __init__(self, segmenter, forward_values: bool = False) -> None:
        self.segmenter = segmenter
        self.forward_values = bool(forward_values)
        self.n_processed = 0
        self._n_emitted = 0  # change points already turned into events (batch path)

    def process(self, record: Record) -> Iterable[Record]:
        self.n_processed += 1
        change_point = self.segmenter.update(float(record.value))
        if self.forward_values:
            yield record
        if change_point is not None:
            event = ChangePointEvent(
                change_point=int(change_point),
                detected_at=int(record.timestamp) + 1,
                stream=record.stream,
                score=float(getattr(self.segmenter, "last_score", 0.0)),
            )
            yield Record(timestamp=record.timestamp, value=event, stream=record.stream)

    def process_batch(self, batch: RecordBatch) -> Iterable[Record | RecordBatch]:
        n = len(batch)
        seen_before = int(getattr(self.segmenter, "n_seen", self.n_processed))
        self.n_processed += n
        if hasattr(self.segmenter, "process"):
            self.segmenter.process(batch.values)
        else:  # minimal protocol: per-point updates
            for value in batch.values:
                self.segmenter.update(float(value))
        if self.forward_values:
            yield batch
        detections = self._new_detections(seen_before)
        self._n_emitted += len(detections)
        for change_point, detected_at, score in detections:
            index = min(max(detected_at - seen_before - 1, 0), n - 1)
            timestamp = int(batch.timestamps[index])
            event = ChangePointEvent(
                change_point=int(change_point),
                detected_at=timestamp + 1,
                stream=batch.stream,
                score=score,
            )
            yield Record(timestamp=timestamp, value=event, stream=batch.stream)

    def _new_detections(self, seen_before: int) -> list[tuple[int, int, float]]:
        """(change_point, detected_at, score) for detections after ``seen_before``."""
        segmenter = self.segmenter
        if hasattr(segmenter, "reports"):  # ClaSS: detailed reports
            return [
                (r.change_point, r.detected_at, float(getattr(r, "score", 0.0)))
                for r in segmenter.reports
                if r.detected_at > seen_before
            ]
        change_points = np.asarray(segmenter.change_points, dtype=np.int64)
        if hasattr(segmenter, "detection_times"):  # StreamSegmenter competitors
            times = np.asarray(segmenter.detection_times, dtype=np.int64)
            score = float(getattr(segmenter, "last_score", 0.0))
            return [
                (int(cp), int(t), score)
                for cp, t in zip(change_points, times)
                if int(t) > seen_before
            ]
        # minimal protocol (no detection times): emit every change point not
        # yet turned into an event, stamped at the end of the batch
        score = float(getattr(segmenter, "last_score", 0.0))
        n_seen = int(getattr(segmenter, "n_seen", seen_before))
        return [(int(cp), n_seen, score) for cp in change_points[self._n_emitted :]]

    def flush(self) -> Iterable[Record]:
        if hasattr(self.segmenter, "finalise"):
            self.segmenter.finalise()
        return []
