"""Minimal push-based stream-processing engine (the Apache Flink substitute)."""

from repro.streamengine.class_operator import (
    ClaSSPipelineResult,
    ClaSSWindowOperator,
    run_class_pipeline,
)
from repro.streamengine.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    SegmentationOperator,
    SlidingWindowOperator,
)
from repro.streamengine.pipeline import Pipeline, PipelineMetrics
from repro.streamengine.records import ChangePointEvent, Record, RecordBatch
from repro.streamengine.sinks import CallbackSink, ChangePointSink, CollectSink
from repro.streamengine.sources import ArraySource, BatchingSource, DatasetSource, PacedSource

__all__ = [
    "Record",
    "RecordBatch",
    "ChangePointEvent",
    "ArraySource",
    "BatchingSource",
    "DatasetSource",
    "PacedSource",
    "Operator",
    "MapOperator",
    "FilterOperator",
    "SlidingWindowOperator",
    "SegmentationOperator",
    "Pipeline",
    "PipelineMetrics",
    "CollectSink",
    "ChangePointSink",
    "CallbackSink",
    "ClaSSWindowOperator",
    "ClaSSPipelineResult",
    "run_class_pipeline",
]
