"""Minimal push-based stream-processing engine (the Apache Flink substitute)."""

from repro.streamengine.class_operator import (
    ClaSSChainFactory,
    ClaSSPipelineResult,
    ClaSSWindowOperator,
    run_class_pipeline,
    run_class_pipelines,
)
from repro.streamengine.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    SegmentationOperator,
    SlidingWindowOperator,
)
from repro.streamengine.pipeline import Pipeline, PipelineMetrics
from repro.streamengine.records import ChangePointEvent, Record, RecordBatch
from repro.streamengine.sharded import (
    KeyedStreamResult,
    ShardedPipeline,
    ShardedRunResult,
    shard_for_key,
)
from repro.streamengine.sinks import CallbackSink, ChangePointSink, CollectSink
from repro.streamengine.sources import ArraySource, BatchingSource, DatasetSource, PacedSource

__all__ = [
    "Record",
    "RecordBatch",
    "ChangePointEvent",
    "ArraySource",
    "BatchingSource",
    "DatasetSource",
    "PacedSource",
    "Operator",
    "MapOperator",
    "FilterOperator",
    "SlidingWindowOperator",
    "SegmentationOperator",
    "Pipeline",
    "PipelineMetrics",
    "CollectSink",
    "ChangePointSink",
    "CallbackSink",
    "ClaSSWindowOperator",
    "ClaSSPipelineResult",
    "ClaSSChainFactory",
    "run_class_pipeline",
    "run_class_pipelines",
    "ShardedPipeline",
    "ShardedRunResult",
    "KeyedStreamResult",
    "shard_for_key",
]
