"""Stream sources: adapters that turn finite data into one-at-a-time records.

A source is any iterable of :class:`~repro.streamengine.records.Record`.  The
paper's Flink evaluation loads each of the 592 series from RAM and replays it
as an independent stream at maximum speed; :class:`ArraySource` and
:class:`DatasetSource` replicate exactly that, while :class:`PacedSource`
optionally throttles replay to a target rate for latency experiments.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.streamengine.records import Record


class ArraySource:
    """Replay a numpy array as a record stream."""

    def __init__(self, values: np.ndarray, stream: str = "default") -> None:
        self.values = np.asarray(values, dtype=np.float64)
        self.stream = stream

    def __iter__(self) -> Iterator[Record]:
        for index, value in enumerate(self.values):
            yield Record(timestamp=index, value=float(value), stream=self.stream)

    def __len__(self) -> int:
        return int(self.values.shape[0])


class DatasetSource(ArraySource):
    """Replay an annotated dataset; annotations travel in the record metadata."""

    def __init__(self, dataset: TimeSeriesDataset) -> None:
        super().__init__(dataset.values, stream=dataset.name)
        self.dataset = dataset

    def __iter__(self) -> Iterator[Record]:
        change_points = set(self.dataset.change_points.tolist())
        for index, value in enumerate(self.values):
            metadata = {"is_annotated_cp": index in change_points}
            yield Record(timestamp=index, value=float(value), stream=self.stream, metadata=metadata)


class PacedSource:
    """Wrap another source and throttle it to ``rate`` records per second."""

    def __init__(self, source: Iterable[Record], rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.source = source
        self.rate = float(rate)

    def __iter__(self) -> Iterator[Record]:
        interval = 1.0 / self.rate
        next_emit = time.perf_counter()
        for record in self.source:
            now = time.perf_counter()
            if now < next_emit:
                time.sleep(next_emit - now)
            next_emit = max(next_emit + interval, time.perf_counter())
            yield record
