"""Stream sources: adapters that turn finite data into record streams.

A source is any iterable of :class:`~repro.streamengine.records.Record` or
:class:`~repro.streamengine.records.RecordBatch`.  The paper's Flink
evaluation loads each of the 592 series from RAM and replays it as an
independent stream at maximum speed; :class:`ArraySource` and
:class:`DatasetSource` replicate exactly that.  Both replay one record at a
time by default and emit :class:`RecordBatch` micro-batches when constructed
with a ``batch_size``, which feeds the engine's amortised batch path.
:class:`BatchingSource` coalesces any record stream into batches, and
:class:`PacedSource` optionally throttles replay to a target rate for latency
experiments.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Union

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.streamengine.records import Record, RecordBatch

SourceItem = Union[Record, RecordBatch]


class ArraySource:
    """Replay a numpy array as a record stream.

    With ``batch_size=None`` (default) one :class:`Record` is emitted per
    observation; with a positive ``batch_size`` the array is replayed as
    :class:`RecordBatch` runs of at most that many observations.
    """

    def __init__(
        self, values: np.ndarray, stream: str = "default", batch_size: int | None = None
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be a positive integer")
        self.values = np.asarray(values, dtype=np.float64)
        self.stream = stream
        self.batch_size = batch_size

    def __iter__(self) -> Iterator[SourceItem]:
        if self.batch_size is not None:
            yield from self.batches(self.batch_size)
            return
        for index, value in enumerate(self.values):
            yield Record(timestamp=index, value=float(value), stream=self.stream)

    def batches(self, batch_size: int) -> Iterator[RecordBatch]:
        """Replay the array as micro-batches of at most ``batch_size`` records."""
        for start in range(0, self.values.shape[0], batch_size):
            yield RecordBatch.from_values(
                self.values[start : start + batch_size],
                first_timestamp=start,
                stream=self.stream,
                metadata=self._batch_metadata(start, min(start + batch_size, len(self))),
            )

    def _batch_metadata(self, start: int, stop: int) -> dict:
        """Metadata attached to the batch covering ``[start, stop)`` (hook)."""
        return {}

    def __len__(self) -> int:
        return int(self.values.shape[0])


class DatasetSource(ArraySource):
    """Replay an annotated dataset; annotations travel in the record metadata."""

    def __init__(self, dataset: TimeSeriesDataset, batch_size: int | None = None) -> None:
        super().__init__(dataset.values, stream=dataset.name, batch_size=batch_size)
        self.dataset = dataset

    def __iter__(self) -> Iterator[SourceItem]:
        if self.batch_size is not None:
            yield from self.batches(self.batch_size)
            return
        change_points = set(self.dataset.change_points.tolist())
        for index, value in enumerate(self.values):
            metadata = {"is_annotated_cp": index in change_points}
            yield Record(timestamp=index, value=float(value), stream=self.stream, metadata=metadata)

    def _batch_metadata(self, start: int, stop: int) -> dict:
        change_points = self.dataset.change_points
        inside = change_points[(change_points >= start) & (change_points < stop)]
        return {"annotated_cps": inside.astype(np.int64)}


class BatchingSource:
    """Coalesce any record stream into :class:`RecordBatch` micro-batches.

    Useful to feed the batch path of downstream operators from a source that
    only produces individual records.  Records must carry numeric values;
    metadata of individual records is dropped (batch metadata stays empty).
    """

    def __init__(self, source: Iterable[Record], batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be a positive integer")
        self.source = source
        self.batch_size = int(batch_size)

    def __iter__(self) -> Iterator[RecordBatch]:
        pending: list[Record] = []
        stream = "default"
        for record in self.source:
            pending.append(record)
            stream = record.stream
            if len(pending) >= self.batch_size:
                yield self._flush(pending, stream)
                pending = []
        if pending:
            yield self._flush(pending, stream)

    @staticmethod
    def _flush(records: list[Record], stream: str) -> RecordBatch:
        return RecordBatch(
            timestamps=np.asarray([r.timestamp for r in records], dtype=np.int64),
            values=np.asarray([float(r.value) for r in records], dtype=np.float64),
            stream=stream,
        )


class PacedSource:
    """Wrap another source and throttle it to ``rate`` records per second.

    Batches count as ``len(batch)`` records, so the achieved record rate is
    independent of the upstream batching.
    """

    def __init__(self, source: Iterable[SourceItem], rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.source = source
        self.rate = float(rate)

    def __iter__(self) -> Iterator[SourceItem]:
        interval = 1.0 / self.rate
        next_emit = time.perf_counter()
        for item in self.source:
            now = time.perf_counter()
            if now < next_emit:
                time.sleep(next_emit - now)
            n_records = len(item) if isinstance(item, RecordBatch) else 1
            next_emit = max(next_emit + interval * n_records, time.perf_counter())
            yield item
