"""ClaSS as a window operator for the stream engine (paper §1, §4.4).

The paper ships ClaSS as an Apache Flink window operator with an average
throughput of ~1k points per second.  :class:`ClaSSWindowOperator` plays the
same role for this library's engine: it owns a ClaSS instance, consumes value
records (individually or as micro-batches routed to ClaSS's chunked
ingestion path) and emits change point events, and
:func:`run_class_pipeline` wires a dataset source, the operator and a change
point sink into a complete job — the configuration used by the Flink-operator
throughput benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.api import ClaSSConfig, create
from repro.core.class_segmenter import capped_window_size
from repro.datasets.dataset import TimeSeriesDataset
from repro.streamengine.operators import SegmentationOperator
from repro.streamengine.pipeline import Pipeline, PipelineMetrics
from repro.streamengine.sharded import ShardedPipeline, ShardedRunResult
from repro.streamengine.sinks import ChangePointSink
from repro.streamengine.sources import DatasetSource
from repro.utils.exceptions import ConfigurationError


class ClaSSWindowOperator(SegmentationOperator):
    """Segmentation operator backed by a ClaSS instance.

    The wrapped segmenter is constructed through the :mod:`repro.api`
    registry from a typed config — pass a ready
    :class:`~repro.api.ClaSSConfig` (e.g. parsed from a JSON job spec) or
    plain keyword arguments, which build one.
    """

    name = "class_window_operator"

    def __init__(self, config: ClaSSConfig | None = None, **class_kwargs) -> None:
        if config is None:
            config = ClaSSConfig(**class_kwargs)
        elif class_kwargs:
            config = config.replace(**class_kwargs)
        self.config = config
        super().__init__(create("class", config))

    @property
    def change_points(self) -> np.ndarray:
        """Change points reported so far by the wrapped ClaSS instance."""
        return self.segmenter.change_points


@dataclass
class ClaSSPipelineResult:
    """Outcome of running one dataset through the ClaSS operator pipeline."""

    dataset: str
    change_points: np.ndarray
    detection_delays: np.ndarray
    metrics: PipelineMetrics

    @property
    def throughput(self) -> float:
        """Source records per second achieved by the pipeline."""
        return self.metrics.throughput


def run_class_pipeline(
    dataset: TimeSeriesDataset,
    window_size: int = 10_000,
    scoring_interval: int = 1,
    batch_size: int | None = None,
    kernel_backend: str = "auto",
    **class_kwargs,
) -> ClaSSPipelineResult:
    """Run one dataset through a ``source -> ClaSS operator -> sink`` pipeline.

    With ``batch_size`` set, the source emits record micro-batches and the
    operator feeds them to ClaSS's chunked ingestion path — same change
    points, higher throughput.  ``kernel_backend`` selects the k-NN kernel
    backend of :mod:`repro.core.kernels` (``"auto"`` picks the fastest
    available; change points are identical for every backend).
    """
    capped_window = capped_window_size(window_size, dataset.n_timepoints)
    operator = ClaSSWindowOperator(
        window_size=capped_window,
        scoring_interval=scoring_interval,
        kernel_backend=kernel_backend,
        **class_kwargs,
    )
    sink = ChangePointSink()
    pipeline = Pipeline(
        DatasetSource(dataset, batch_size=batch_size), name=f"class::{dataset.name}"
    )
    pipeline.add_operator(operator).add_sink(sink)
    metrics = pipeline.run()
    return ClaSSPipelineResult(
        dataset=dataset.name,
        change_points=sink.change_points,
        detection_delays=sink.detection_delays,
        metrics=metrics,
    )


@dataclass(frozen=True)
class ClaSSChainFactory:
    """Picklable per-stream operator factory for the sharded multi-stream job.

    Holds the per-dataset window cap (ClaSS caps its window at half the
    series length) keyed by stream name, so the factory can be shipped to
    worker processes and still build the exact operator the single-pipeline
    path builds.
    """

    window_by_stream: dict
    scoring_interval: int = 1
    class_kwargs: dict = field(default_factory=dict)

    def __call__(self, key: str) -> ClaSSWindowOperator:
        return ClaSSWindowOperator(
            window_size=self.window_by_stream[key],
            scoring_interval=self.scoring_interval,
            **self.class_kwargs,
        )


def _change_point_sink_factory(key: str) -> ChangePointSink:
    """Fresh :class:`ChangePointSink` per stream (module-level: picklable)."""
    return ChangePointSink()


def run_class_pipelines(
    datasets: Sequence[TimeSeriesDataset],
    n_shards: int = 1,
    n_workers: int | None = None,
    window_size: int = 10_000,
    scoring_interval: int = 1,
    batch_size: int | None = None,
    kernel_backend: str = "auto",
    **class_kwargs,
) -> tuple[list[ClaSSPipelineResult], ShardedRunResult]:
    """Run many datasets as independent ClaSS streams on a sharded engine.

    The multi-stream counterpart of :func:`run_class_pipeline` and the
    engine-side version of the paper's Flink experiment: every dataset is an
    independent keyed stream with its own ClaSS operator chain, streams are
    hash-partitioned across ``n_shards`` replicas, and shards optionally run
    on ``n_workers`` worker processes.  Per-dataset results are bit-identical
    to running :func:`run_class_pipeline` on each dataset (the chains share
    nothing), and are returned in dataset order together with the sharded run
    result (aggregated metrics, per-shard timings, ordered merge).

    Dataset names are the stream keys, so they must be unique — duplicates
    would silently chain two series through one sliding window.
    ``kernel_backend`` is forwarded to every per-stream ClaSS operator (it
    must resolve on the worker processes too; ``"auto"`` degrades safely).
    """
    names = [dataset.name for dataset in datasets]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ConfigurationError(
            f"dataset names must be unique per run (stream keys); duplicated: {duplicates}"
        )
    window_by_stream = {
        dataset.name: capped_window_size(window_size, dataset.n_timepoints)
        for dataset in datasets
    }
    sharded = ShardedPipeline(
        n_shards,
        operator_factory=ClaSSChainFactory(
            window_by_stream=window_by_stream,
            scoring_interval=scoring_interval,
            class_kwargs=dict(class_kwargs, kernel_backend=kernel_backend),
        ),
        sink_factory=_change_point_sink_factory,
        name="class_multi_stream",
    )
    for dataset in datasets:
        sharded.add_source(DatasetSource(dataset, batch_size=batch_size))
    run_result = sharded.run(n_workers=n_workers)
    results = [
        ClaSSPipelineResult(
            dataset=dataset.name,
            change_points=run_result.results[dataset.name].sink.change_points,
            detection_delays=run_result.results[dataset.name].sink.detection_delays,
            metrics=run_result.results[dataset.name].metrics,
        )
        for dataset in datasets
    ]
    return results, run_result
