"""ClaSS as a window operator for the stream engine (paper §1, §4.4).

The paper ships ClaSS as an Apache Flink window operator with an average
throughput of ~1k points per second.  :class:`ClaSSWindowOperator` plays the
same role for this library's engine: it owns a ClaSS instance, consumes value
records (individually or as micro-batches routed to ClaSS's chunked
ingestion path) and emits change point events, and
:func:`run_class_pipeline` wires a dataset source, the operator and a change
point sink into a complete job — the configuration used by the Flink-operator
throughput benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.class_segmenter import ClaSS
from repro.datasets.dataset import TimeSeriesDataset
from repro.streamengine.operators import SegmentationOperator
from repro.streamengine.pipeline import Pipeline, PipelineMetrics
from repro.streamengine.sinks import ChangePointSink
from repro.streamengine.sources import DatasetSource


class ClaSSWindowOperator(SegmentationOperator):
    """Segmentation operator backed by a ClaSS instance."""

    name = "class_window_operator"

    def __init__(self, **class_kwargs) -> None:
        super().__init__(ClaSS(**class_kwargs))

    @property
    def change_points(self) -> np.ndarray:
        """Change points reported so far by the wrapped ClaSS instance."""
        return self.segmenter.change_points


@dataclass
class ClaSSPipelineResult:
    """Outcome of running one dataset through the ClaSS operator pipeline."""

    dataset: str
    change_points: np.ndarray
    detection_delays: np.ndarray
    metrics: PipelineMetrics

    @property
    def throughput(self) -> float:
        """Source records per second achieved by the pipeline."""
        return self.metrics.throughput


def run_class_pipeline(
    dataset: TimeSeriesDataset,
    window_size: int = 10_000,
    scoring_interval: int = 1,
    batch_size: int | None = None,
    **class_kwargs,
) -> ClaSSPipelineResult:
    """Run one dataset through a ``source -> ClaSS operator -> sink`` pipeline.

    With ``batch_size`` set, the source emits record micro-batches and the
    operator feeds them to ClaSS's chunked ingestion path — same change
    points, higher throughput.
    """
    capped_window = int(min(window_size, max(dataset.n_timepoints // 2, 100)))
    operator = ClaSSWindowOperator(
        window_size=capped_window,
        scoring_interval=scoring_interval,
        **class_kwargs,
    )
    sink = ChangePointSink()
    pipeline = Pipeline(
        DatasetSource(dataset, batch_size=batch_size), name=f"class::{dataset.name}"
    )
    pipeline.add_operator(operator).add_sink(sink)
    metrics = pipeline.run()
    return ClaSSPipelineResult(
        dataset=dataset.name,
        change_points=sink.change_points,
        detection_delays=sink.detection_delays,
        metrics=metrics,
    )
