"""Record and event types flowing through the stream engine.

The engine is a deliberately small, single-process substitute for the Apache
Flink deployment of the paper (§4.4): it models the integration surface that
matters for a streaming segmentation operator — one-at-a-time delivery of
timestamped records, stateful operators, sinks, and throughput accounting —
without a cluster runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Record:
    """One timestamped element of a data stream."""

    timestamp: int
    value: Any
    stream: str = "default"
    metadata: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass(frozen=True)
class ChangePointEvent:
    """Event emitted by a segmentation operator when a change point is found."""

    change_point: int
    detected_at: int
    stream: str
    score: float = 0.0

    @property
    def detection_delay(self) -> int:
        """Observations between the change point and its detection."""
        return int(self.detected_at - self.change_point)
