"""Record and event types flowing through the stream engine.

The engine is a deliberately small, single-process substitute for the Apache
Flink deployment of the paper (§4.4): it models the integration surface that
matters for a streaming segmentation operator — delivery of timestamped
records (one at a time, or coalesced into :class:`RecordBatch` micro-batches
for amortised ingestion), stateful operators, sinks, and throughput
accounting — without a cluster runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np


@dataclass(frozen=True)
class Record:
    """One timestamped element of a data stream."""

    timestamp: int
    value: Any
    stream: str = "default"
    metadata: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass(frozen=True)
class RecordBatch:
    """A contiguous run of value records moved through the engine as one unit.

    Batches carry parallel ``timestamps`` / ``values`` arrays instead of one
    Python object per observation, which is what lets the segmentation
    operators hand whole chunks to the chunked ingestion path of the
    segmenters.  ``metadata`` is shared by all records of the batch.
    """

    timestamps: np.ndarray
    values: np.ndarray
    stream: str = "default"
    metadata: dict = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if self.timestamps.shape[0] != self.values.shape[0]:
            raise ValueError("timestamps and values must have equal length")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def records(self) -> Iterator[Record]:
        """Explode the batch into individual records.

        Metadata is shared, except the ``annotated_cps`` position array
        (attached by annotated dataset sources), which is translated back
        into the per-record ``is_annotated_cp`` flag so exploded records keep
        the record-at-a-time metadata contract.
        """
        annotated = self.metadata.get("annotated_cps")
        flagged = set(np.asarray(annotated).tolist()) if annotated is not None else None
        for timestamp, value in zip(self.timestamps.tolist(), self.values.tolist()):
            timestamp = int(timestamp)
            metadata = self.metadata
            if flagged is not None:
                metadata = dict(metadata, is_annotated_cp=timestamp in flagged)
            yield Record(
                timestamp=timestamp, value=value, stream=self.stream, metadata=metadata
            )

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        first_timestamp: int = 0,
        stream: str = "default",
        metadata: dict | None = None,
    ) -> "RecordBatch":
        """Build a batch from consecutive values starting at ``first_timestamp``."""
        values = np.asarray(values, dtype=np.float64)
        timestamps = np.arange(first_timestamp, first_timestamp + values.shape[0], dtype=np.int64)
        return cls(timestamps=timestamps, values=values, stream=stream, metadata=metadata or {})


@dataclass(frozen=True)
class ChangePointEvent:
    """Event emitted by a segmentation operator when a change point is found."""

    change_point: int
    detected_at: int
    stream: str
    score: float = 0.0

    @property
    def detection_delay(self) -> int:
        """Observations between the change point and its detection."""
        return int(self.detected_at - self.change_point)
