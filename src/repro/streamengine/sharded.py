"""Sharded, shared-nothing multi-stream execution layer (paper §4.4, scaled out).

The paper's Flink deployment replays each of the 592 benchmark series as an
independent stream through its own ClaSS window operator.  This module
provides the engine-side scale-out for that workload: a
:class:`ShardedPipeline` hash-partitions *keyed* streams across ``n_shards``
independent pipeline replicas.  Every distinct stream key owns a full
``source -> operator* -> sink`` chain (built by per-key factories, reusing
the :class:`~repro.streamengine.records.RecordBatch` routing of the base
engine), chains are assigned to shards by a process-stable hash of their key
(CRC-32, deliberately not the per-process-salted builtin ``hash``), and each
shard executes its chains with zero shared state — so shards can run in this
process or on a pool of worker processes with bit-identical results.

The run returns a :class:`ShardedRunResult` holding per-key metrics and
sinks, an aggregated :class:`~repro.streamengine.pipeline.PipelineMetrics`,
and an *ordered merge* of all sink outputs: records merged across shards and
sorted by ``(stream, timestamp)``, which is identical for every shard count
(including one).
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.streamengine.pipeline import Pipeline, PipelineMetrics
from repro.streamengine.records import Record, RecordBatch
from repro.streamengine.sinks import CollectSink
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_picklable


def shard_for_key(key: str, n_shards: int) -> int:
    """Deterministic, process-stable shard index of a stream key.

    Uses CRC-32 instead of the builtin ``hash`` so the partitioning is
    identical across worker processes and interpreter restarts (builtin
    string hashing is salted per process unless ``PYTHONHASHSEED`` is
    pinned).
    """
    return zlib.crc32(str(key).encode("utf-8")) % n_shards


@dataclass
class KeyedStreamResult:
    """Outcome of one stream key's chain within a sharded run."""

    key: str
    shard: int
    metrics: PipelineMetrics
    sink: object


@dataclass
class ShardedRunResult:
    """All per-key results of one sharded execution, with aggregation helpers."""

    n_shards: int
    results: dict[str, KeyedStreamResult] = field(default_factory=dict)
    wall_seconds: float = 0.0
    shard_seconds: dict[int, float] = field(default_factory=dict)

    @property
    def keys(self) -> list[str]:
        """Stream keys in registration order."""
        return list(self.results)

    @property
    def aggregate(self) -> PipelineMetrics:
        """Pipeline metrics summed over every chain, timed by the whole run.

        ``throughput`` therefore reports end-to-end records per wall-clock
        second — the number a capacity plan needs — while the per-chain
        metrics keep the per-stream view.
        """
        total = PipelineMetrics(runtime_seconds=self.wall_seconds)
        for result in self.results.values():
            total.n_source_records += result.metrics.n_source_records
            total.n_source_batches += result.metrics.n_source_batches
            total.n_sink_records += result.metrics.n_sink_records
            for name, count in result.metrics.operator_counts.items():
                total.operator_counts[name] = total.operator_counts.get(name, 0) + count
            for name, count in result.metrics.operator_batches.items():
                total.operator_batches[name] = total.operator_batches.get(name, 0) + count
        return total

    def merged_records(self) -> list[Record]:
        """Ordered merge of every sink's records across all shards.

        Records are sorted by ``(stream, timestamp)``, so the merged output
        is deterministic and independent of the shard count.  Only sinks
        exposing ``records`` (the :class:`~repro.streamengine.sinks.CollectSink`
        family) contribute.
        """
        merged: list[Record] = []
        for result in self.results.values():
            merged.extend(getattr(result.sink, "records", []))
        merged.sort(key=lambda record: (record.stream, record.timestamp))
        return merged


def _run_chain(
    key: str,
    shard: int,
    sources: list,
    operator_factory: Callable,
    sink_factory: Callable,
) -> KeyedStreamResult:
    """Build and run one stream key's full chain (worker-safe, shared-nothing)."""
    operators = operator_factory(key)
    if not isinstance(operators, (list, tuple)):
        operators = [operators]
    sink = sink_factory(key)
    pipeline = Pipeline(_chain_sources(sources), name=f"shard{shard}::{key}")
    for operator in operators:
        pipeline.add_operator(operator)
    pipeline.add_sink(sink)
    metrics = pipeline.run()
    return KeyedStreamResult(key=key, shard=shard, metrics=metrics, sink=sink)


def _chain_sources(sources: list) -> Iterable:
    """Replay several sources of the same stream key back to back."""
    for source in sources:
        yield from source


def _run_shard(
    shard: int,
    jobs: list[tuple[str, list]],
    operator_factory: Callable,
    sink_factory: Callable,
) -> tuple[int, float, list[KeyedStreamResult]]:
    """Worker entry point: run every chain assigned to one shard, in order."""
    start = time.perf_counter()
    results = [
        _run_chain(key, shard, sources, operator_factory, sink_factory)
        for key, sources in jobs
    ]
    return shard, time.perf_counter() - start, results


class ShardedPipeline:
    """Hash-partitioned, shared-nothing execution of many keyed streams.

    Parameters
    ----------
    n_shards:
        Number of independent pipeline replicas.  Must be a positive integer
        (rejected up front, like the CLI rejects a non-positive
        ``--chunk-size``).
    operator_factory:
        ``key -> Operator | [Operator, ...]`` building a fresh operator chain
        per stream key.  Must be picklable for ``run(n_workers > 1)``.
    sink_factory:
        ``key -> sink`` building a fresh sink per stream key (default: a
        :class:`~repro.streamengine.sinks.CollectSink`).
    name:
        Display name used in per-chain pipeline names.
    """

    def __init__(
        self,
        n_shards: int,
        operator_factory: Callable,
        sink_factory: Callable | None = None,
        name: str = "sharded",
    ) -> None:
        if not isinstance(n_shards, int) or isinstance(n_shards, bool) or n_shards < 1:
            raise ConfigurationError("n_shards must be a positive integer")
        self.n_shards = n_shards
        self.operator_factory = operator_factory
        self.sink_factory = sink_factory if sink_factory is not None else _default_sink_factory
        self.name = name
        #: (key, source) pairs in registration order.
        self._sources: list[tuple[str, object]] = []
        #: Interleaved multi-stream record iterables, routed item-by-item.
        self._interleaved: list[Iterable] = []

    # ------------------------------------------------------------------ #

    def add_source(self, source, key: str | None = None) -> "ShardedPipeline":
        """Register one keyed source (fluent API).

        The stream key defaults to the source's ``stream`` attribute (all the
        engine's sources carry one); pass ``key`` explicitly for plain
        iterables.
        """
        if key is None:
            key = getattr(source, "stream", None)
        if key is None:
            raise ConfigurationError(
                "source has no 'stream' attribute; pass key= to route it to a shard"
            )
        self._sources.append((str(key), source))
        return self

    def add_records(self, items: Iterable) -> "ShardedPipeline":
        """Register an interleaved multi-stream iterable, routed record by record.

        Each :class:`Record` / :class:`RecordBatch` is routed to the chain of
        its own ``stream`` key; relative order *within* a key is preserved
        (the usual keyed-stream guarantee), which is why the routing is
        deterministic for every shard count.
        """
        self._interleaved.append(items)
        return self

    def shard_of(self, key: str) -> int:
        """Shard index a stream key is assigned to."""
        return shard_for_key(key, self.n_shards)

    # ------------------------------------------------------------------ #

    def _keyed_jobs(self) -> dict[str, list]:
        """Group registered sources (and routed records) per stream key."""
        jobs: dict[str, list] = {}
        for key, source in self._sources:
            jobs.setdefault(key, []).append(source)
        for items in self._interleaved:
            buckets: dict[str, list] = {}
            for item in items:
                if not isinstance(item, (Record, RecordBatch)):
                    raise ConfigurationError(
                        f"sharded pipeline {self.name!r}: interleaved stream yielded an "
                        f"unsupported item of type {type(item).__name__!r}; expected "
                        "Record or RecordBatch elements"
                    )
                buckets.setdefault(item.stream, []).append(item)
            for key, bucket in buckets.items():
                jobs.setdefault(key, []).append(bucket)
        if not jobs:
            raise ConfigurationError("sharded pipeline has no sources; call add_source first")
        return jobs

    def _shard_assignments(self, jobs: dict[str, list]) -> dict[int, list[tuple[str, list]]]:
        """Assign every key's chain to its shard, keys in registration order."""
        assignments: dict[int, list[tuple[str, list]]] = {}
        for key, sources in jobs.items():
            assignments.setdefault(self.shard_of(key), []).append((key, sources))
        return assignments

    def run(self, n_workers: int | None = None) -> ShardedRunResult:
        """Execute every chain, shard by shard, and return the merged result.

        With ``n_workers`` greater than one, shards run on a process pool
        (shared-nothing: chains, operators and sinks are built from the
        factories inside the workers and shipped back with their final
        state); otherwise shards run in-process, in shard order.  Results are
        keyed by stream and bit-identical either way.
        """
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError("n_workers must be a positive integer")
        jobs = self._keyed_jobs()
        assignments = self._shard_assignments(jobs)
        result = ShardedRunResult(n_shards=self.n_shards)

        wall_start = time.perf_counter()
        if n_workers is None or n_workers == 1 or len(assignments) == 1:
            shard_outcomes = [
                _run_shard(shard, assignments[shard], self.operator_factory, self.sink_factory)
                for shard in sorted(assignments)
            ]
        else:
            self._check_picklable(assignments)
            with ProcessPoolExecutor(max_workers=min(n_workers, len(assignments))) as pool:
                shard_outcomes = list(
                    pool.map(
                        _run_shard,
                        sorted(assignments),
                        [assignments[shard] for shard in sorted(assignments)],
                        [self.operator_factory] * len(assignments),
                        [self.sink_factory] * len(assignments),
                    )
                )
        by_key: dict[str, KeyedStreamResult] = {}
        for shard, seconds, chain_results in shard_outcomes:
            result.shard_seconds[shard] = seconds
            for chain_result in chain_results:
                by_key[chain_result.key] = chain_result
        # expose results in key registration order regardless of shard layout
        result.results = {key: by_key[key] for key in jobs}
        result.wall_seconds = time.perf_counter() - wall_start
        return result

    def _check_picklable(self, assignments: dict[int, list[tuple[str, list]]]) -> None:
        """Reject factories/sources that cannot reach the worker processes."""
        check_picklable(self.operator_factory, "operator_factory")
        check_picklable(self.sink_factory, "sink_factory")
        for shard_jobs in assignments.values():
            for key, sources in shard_jobs:
                check_picklable(
                    sources,
                    f"sources of stream {key!r}",
                    remedy="materialise the stream (e.g. ArraySource) or run with n_workers=1",
                )


def _default_sink_factory(key: str) -> CollectSink:
    """Fresh :class:`CollectSink` per stream key (module-level: picklable)."""
    return CollectSink()
