"""Typed events emitted by the unified detector API.

Every detector behind :mod:`repro.api` reports its lifecycle through three
event types instead of (or alongside) the historical ``int | None``
return-code path:

* :class:`WarmupEvent` — the detector finished warming up (for ClaSS: the
  subsequence width has been learned and the streaming k-NN is live) and can
  report change points from here on,
* :class:`ScoreEvent` — a periodic observation of the detector's current
  detection score (the best split score of the latest ClaSP, or a
  competitor's ``last_score``),
* :class:`ChangePointEvent` — one confirmed change point, together with the
  position at which it was detected and, where the method provides them, the
  classification score and significance p-value.

Two further event types report dirty-data handling when a non-default
:class:`repro.core.quality.DataPolicy` is active: :class:`DataQualityEvent`
(one maximal run of non-finite rows was imputed or skipped, with counters)
and :class:`GapEvent` (a run exceeded the policy's ``max_gap`` and was
dropped, optionally resetting warm-up).

Events are frozen dataclasses with a stable ``kind`` discriminator and a
lossless JSON mapping (:meth:`SegmenterEvent.to_dict` /
:func:`event_from_dict`), so an event stream can be shipped across process
boundaries, written as JSON lines by the CLI, or replayed for audit.

The stream-engine's record-level :class:`repro.streamengine.records.ChangePointEvent`
predates this module and stays unchanged; the two types serve different
layers (engine records vs. public API events).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class SegmenterEvent:
    """Base class of all detector events.

    Attributes
    ----------
    at:
        Absolute stream position (number of observations seen) at which the
        event was emitted.

    Example
    -------
    >>> from repro.api import WarmupEvent
    >>> WarmupEvent(at=100).to_dict()
    {'kind': 'warmup', 'at': 100, 'subsequence_width': None}
    """

    #: Discriminator used by the JSON mapping; unique per event class.
    kind: ClassVar[str] = "event"

    at: int

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-safe dictionary, including the ``kind`` discriminator."""
        payload: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload


@dataclass(frozen=True)
class WarmupEvent(SegmenterEvent):
    """The detector finished warming up and can report change points.

    ``at`` is the stream position at which warm-up completed;
    ``subsequence_width`` carries the learned width for ClaSS-family
    detectors and stays None for methods without a width concept.

    Example
    -------
    >>> WarmupEvent(at=10_000, subsequence_width=128).kind
    'warmup'
    """

    kind: ClassVar[str] = "warmup"

    subsequence_width: int | None = None


@dataclass(frozen=True)
class ScoreEvent(SegmenterEvent):
    """Periodic observation of the detector's current detection score.

    ``at`` is the stream position of the observation; ``score`` the best
    split score of the latest ClaSP (or a competitor's ``last_score``).

    Example
    -------
    >>> ScoreEvent(at=2_500, score=0.81).to_dict()
    {'kind': 'score', 'at': 2500, 'score': 0.81}
    """

    kind: ClassVar[str] = "score"

    score: float = 0.0


@dataclass(frozen=True)
class ChangePointEvent(SegmenterEvent):
    """One confirmed change point.

    ``at`` is the detection position; ``change_point`` the (earlier) stream
    position of the state change itself.  ``score`` and ``p_value`` are None
    for methods that do not produce them.

    Example
    -------
    >>> event = ChangePointEvent(at=5_200, change_point=5_000, score=0.9)
    >>> event.detection_delay
    200
    """

    kind: ClassVar[str] = "change_point"

    change_point: int = 0
    score: float | None = None
    p_value: float | None = None

    @property
    def detection_delay(self) -> int:
        """Observations that elapsed between the change point and its report."""
        return int(self.at - self.change_point)


@dataclass(frozen=True)
class GapEvent(SegmenterEvent):
    """A dirty-data run exceeded the policy's ``max_gap`` and was dropped.

    ``at`` is the sanitized-stream position at which the gap closed (the
    detector's ``n_seen`` — dropped rows are not counted); ``gap`` is the
    number of raw rows the run spanned; ``reset`` records whether the
    policy's ``reset_on_gap`` re-entered detector warm-up.

    Example
    -------
    >>> GapEvent(at=4_000, gap=120, reset=True).to_dict()
    {'kind': 'gap', 'at': 4000, 'gap': 120, 'reset': True}
    """

    kind: ClassVar[str] = "gap"

    gap: int = 0
    reset: bool = False


@dataclass(frozen=True)
class DataQualityEvent(SegmenterEvent):
    """One maximal dirty run was repaired or dropped by the data policy.

    ``at`` is the sanitized-stream position right after the run was
    realised; exactly one of ``imputed``/``skipped`` is non-zero and counts
    the run's raw rows (``clipped`` is reserved for value-clipping policies
    and stays 0 today).  ``n_nan``/``n_inf`` split the run's rows by the
    non-finite kind that dirtied them.

    Example
    -------
    >>> DataQualityEvent(at=250, imputed=3, n_nan=3).imputed
    3
    """

    kind: ClassVar[str] = "data_quality"

    imputed: int = 0
    skipped: int = 0
    clipped: int = 0
    n_nan: int = 0
    n_inf: int = 0


#: Event classes by their ``kind`` discriminator (the JSON dispatch table).
EVENT_KINDS: dict[str, type[SegmenterEvent]] = {
    cls.kind: cls
    for cls in (WarmupEvent, ScoreEvent, ChangePointEvent, GapEvent, DataQualityEvent)
}


def event_from_dict(payload: dict[str, Any]) -> SegmenterEvent:
    """Rebuild a typed event from its :meth:`SegmenterEvent.to_dict` mapping.

    Parameters
    ----------
    payload:
        A mapping with a ``kind`` discriminator plus that event class's
        fields, exactly as produced by ``to_dict``.

    Returns
    -------
    The frozen event instance of the class ``kind`` names.

    Raises
    ------
    ConfigurationError
        When the payload is not a mapping, names an unknown ``kind``, or
        carries fields the event class does not have.

    Example
    -------
    >>> event_from_dict({"kind": "score", "at": 10, "score": 0.5})
    ScoreEvent(at=10, score=0.5)
    """
    try:
        kind = payload["kind"]
    except (TypeError, KeyError) as error:
        raise ConfigurationError("event payload must be a mapping with a 'kind' entry") from error
    if kind not in EVENT_KINDS:
        raise ConfigurationError(
            f"unknown event kind {kind!r}; expected one of {sorted(EVENT_KINDS)}"
        )
    cls = EVENT_KINDS[kind]
    names = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names - {"kind"})
    if unknown:
        raise ConfigurationError(f"unknown {kind} event fields: {unknown}")
    return cls(**{name: value for name, value in payload.items() if name in names})
