"""Protocol adapters: detectors that are not natively streaming.

:class:`BatchClaSPSegmenter` puts the paper's batch baseline (§2.2) behind
the unified :class:`~repro.api.protocol.Segmenter` protocol: observations
are buffered as they arrive and the quadratic batch segmentation runs once
on :meth:`~BatchClaSPSegmenter.finalize`.  This gives evaluation harnesses
and pipelines one code path for streaming *and* offline methods — the
registry key is ``"clasp"`` — at the cost of detection latency equal to the
stream length, which is exactly the trade-off the paper's ClaSS/ClaSP
runtime discussion quantifies.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.api.config import ClaSPConfig
from repro.api.events import ChangePointEvent, SegmenterEvent, WarmupEvent
from repro.utils.exceptions import ConfigurationError, NotEnoughDataError, ValidationError


class BatchClaSPSegmenter:
    """Streaming facade over batch ClaSP: buffer the stream, segment on finalize.

    Parameters
    ----------
    config:
        A :class:`~repro.api.config.ClaSPConfig`; keyword arguments build one
        when omitted.
    ``**kwargs``:
        Individual :class:`~repro.api.config.ClaSPConfig` fields, applied on
        top of ``config`` (or of the defaults).

    Raises
    ------
    ConfigurationError
        When ``config`` is not a ``ClaSPConfig`` or a field value is
        rejected by its ``validate``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.api.adapters import BatchClaSPSegmenter
    >>> segmenter = BatchClaSPSegmenter(n_change_points=1)
    >>> segmenter.process(np.zeros(100)).size  # batch methods defer to finalize
    0
    """

    name = "ClaSP"

    def __init__(self, config: ClaSPConfig | None = None, **kwargs) -> None:
        if config is None:
            config = ClaSPConfig(**kwargs)
        elif kwargs:
            config = config.replace(**kwargs)
        if not isinstance(config, ClaSPConfig):
            raise ConfigurationError(
                f"BatchClaSPSegmenter expects a ClaSPConfig, got {type(config).__name__}"
            )
        self.config = config.validate()
        self._chunks: list[np.ndarray] = []
        self._n_seen = 0
        self._segmentation = None
        self._finalized = False

    # ------------------------------------------------------------------ #

    @property
    def n_seen(self) -> int:
        """Number of observations buffered so far."""
        return self._n_seen

    @property
    def change_points(self) -> np.ndarray:
        """Change points of the batch segmentation (empty before finalize)."""
        if self._segmentation is None:
            return np.asarray([], dtype=np.int64)
        return self._segmentation.change_points

    @property
    def detection_times(self) -> np.ndarray:
        """Every batch detection happens at the end of the stream."""
        return np.full(self.change_points.shape[0], self._n_seen, dtype=np.int64)

    @property
    def segmentation(self):
        """The full :class:`~repro.core.clasp_batch.BatchSegmentation` (after finalize)."""
        return self._segmentation

    @property
    def current_score(self) -> float | None:
        """Best split score of the batch segmentation, None before finalize."""
        if self._segmentation is None or not self._segmentation.scores:
            return None
        return float(max(self._segmentation.scores.values()))

    # ------------------------------------------------------------------ #

    def update(self, value: float) -> None:
        """Buffer one observation; batch segmentation never reports online."""
        self.process(np.asarray([float(value)], dtype=np.float64))
        return None

    def process(self, values: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Buffer a batch of observations; return the change points found so far."""
        if self._finalized:
            raise ConfigurationError(
                "BatchClaSPSegmenter was finalized; build a fresh instance to re-segment"
            )
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size:
            self._chunks.append(values.copy())
            self._n_seen += int(values.shape[0])
        return self.change_points

    def finalize(self) -> np.ndarray:
        """Run the batch segmentation on everything buffered; return the change points."""
        if self._finalized:
            return self.change_points
        self._finalized = True
        values = self._buffered()
        if values.shape[0]:
            from repro.core.clasp_batch import ClaSP

            try:
                self._segmentation = ClaSP(**self.config.as_kwargs()).fit_predict(values)
            except (ConfigurationError, NotEnoughDataError, ValidationError, ValueError):
                self._segmentation = None  # stream too short / degenerate: no change points
        return self.change_points

    #: British-spelling alias, matching ClaSS.
    finalise = finalize

    def events(self) -> list[SegmenterEvent]:
        """Warm-up plus one change-point event per detection (all at finalize)."""
        if self._segmentation is None:
            return []
        events: list[SegmenterEvent] = [
            WarmupEvent(at=self._n_seen, subsequence_width=self._segmentation.subsequence_width)
        ]
        scores = self._segmentation.scores
        for change_point in self.change_points.tolist():
            events.append(
                ChangePointEvent(
                    at=self._n_seen,
                    change_point=int(change_point),
                    score=scores.get(int(change_point)),
                )
            )
        return events

    # ------------------------------------------------------------------ #

    def save_state(self) -> dict:
        """Serialise the buffer and any completed segmentation."""
        from repro.api.checkpoint import state_payload

        state = {
            "values": self._buffered(),
            "n_seen": self._n_seen,
            "finalized": self._finalized,
            "segmentation": copy.deepcopy(self._segmentation),
        }
        return state_payload(self, state, config=self.config.to_dict())

    def load_state(self, payload: dict) -> None:
        """Restore a :meth:`save_state` payload (config included)."""
        from repro.api.checkpoint import checked_state

        # validate everything BEFORE mutating: a rejected payload must leave
        # the live adapter untouched
        state = checked_state(self, payload)
        self.config = ClaSPConfig.from_dict(payload.get("config", {})).validate()
        values = np.asarray(state["values"], dtype=np.float64)
        self._chunks = [values.copy()] if values.size else []
        self._n_seen = int(state["n_seen"])
        self._finalized = bool(state["finalized"])
        self._segmentation = copy.deepcopy(state["segmentation"])

    def _buffered(self) -> np.ndarray:
        """The full buffered stream as one contiguous array."""
        if not self._chunks:
            return np.asarray([], dtype=np.float64)
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        return self._chunks[0]
