"""The unified detector protocol every segmenter implements.

:class:`Segmenter` is the structural contract shared by ClaSS,
MultivariateClaSS, the batch-ClaSP adapter and all competitor wrappers.  It
extends the minimal streaming surface the evaluation runner always relied on
(``update`` / ``process`` / ``change_points``) with the three capabilities a
long-lived stream deployment needs:

* ``events()`` — the typed event history (:mod:`repro.api.events`)
  alongside the historical return-code path,
* ``finalize()`` — flush end-of-stream state (e.g. a ClaSS stream shorter
  than its warm-up window, or the batch-ClaSP adapter's deferred
  segmentation),
* ``save_state()`` / ``load_state()`` — durable checkpointing with a
  bit-identical resume guarantee (see :mod:`repro.api.checkpoint`).

The protocol is ``runtime_checkable``, so ``isinstance(obj, Segmenter)``
verifies that an object offers the full surface (method presence, not
signatures — the usual protocol caveat).
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.api.events import SegmenterEvent


@runtime_checkable
class Segmenter(Protocol):
    """Structural type of every detector constructed by :func:`repro.api.create`.

    ``isinstance(obj, Segmenter)`` checks member presence at runtime (the
    protocol is ``runtime_checkable``); :func:`ensure_segmenter` raises a
    descriptive ``TypeError`` instead of returning False.

    Example
    -------
    >>> from repro import api
    >>> isinstance(api.create("class"), api.Segmenter)
    True
    """

    @property
    def n_seen(self) -> int:
        """Total number of stream observations processed."""
        ...

    @property
    def change_points(self) -> np.ndarray:
        """Absolute time points of every reported change point so far."""
        ...

    def update(self, value) -> int | None:
        """Ingest one observation; return a change point if one is reported."""
        ...

    def process(self, values: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Stream a finite batch of values through the chunked ingestion path."""
        ...

    def events(self) -> list[SegmenterEvent]:
        """Typed event history (warm-up and change points), ordered by position."""
        ...

    def finalize(self) -> np.ndarray:
        """Flush end-of-stream state; return all change points."""
        ...

    def save_state(self) -> dict:
        """Serialise the full runtime state as a picklable checkpoint payload."""
        ...

    def load_state(self, payload: dict) -> None:
        """Restore a :meth:`save_state` payload; resuming is bit-identical."""
        ...


def ensure_segmenter(obj, context: str = "detector") -> "Segmenter":
    """Assert that ``obj`` satisfies the protocol; return it for chaining.

    Parameters
    ----------
    obj:
        The candidate detector instance.
    context:
        Label naming the call site in the error message.

    Raises
    ------
    TypeError
        When ``obj`` misses protocol members; the message lists them.

    Example
    -------
    >>> from repro import api
    >>> from repro.api.protocol import ensure_segmenter
    >>> ensure_segmenter(api.create("class")).n_seen
    0
    """
    if not isinstance(obj, Segmenter):
        missing = [
            name
            for name in (
                "update",
                "process",
                "events",
                "finalize",
                "save_state",
                "load_state",
                "change_points",
                "n_seen",
            )
            if not hasattr(obj, name)
        ]
        raise TypeError(f"{context} {type(obj).__name__!r} misses protocol members: {missing}")
    return obj


def iter_chunks(values: np.ndarray, chunk_size: int) -> Iterable[np.ndarray]:
    """Cut an array into contiguous runs of at most ``chunk_size`` rows."""
    for start in range(0, values.shape[0], chunk_size):
        yield values[start : start + chunk_size]
