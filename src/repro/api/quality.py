"""Sanitizing detector wrapper: applies a :class:`DataPolicy` to any segmenter.

:class:`SanitizingSegmenter` implements the :class:`repro.api.Segmenter`
protocol around an inner detector.  Raw chunks pass through the vectorised
:class:`repro.core.quality.Sanitizer` pre-pass; the cleaned values are fed to
the inner detector and every realised dirty run becomes a typed
:class:`~repro.api.events.DataQualityEvent` or
:class:`~repro.api.events.GapEvent` in the wrapper's merged, append-only
event log — interleaved chronologically with the inner detector's own
warm-up/score/change-point events, so :func:`repro.api.stream`, the service
and the stream store publish quality events through the exact same channel
as detections.

Determinism: the sanitizer realises dirty runs as a pure function of the raw
input (chunk boundaries never matter), the inner detector is chunk-invariant
by contract, and event positions use the inner detector's ``n_seen`` — so
the same dirty input under the same policy yields bit-identical change
points, events and checkpoints for every chunk size, kernel backend and
checkpoint/resume split.

Checkpoints: :meth:`SanitizingSegmenter.save_state` embeds the inner
payload unchanged and adds a top-level ``"quality"`` envelope (policy,
sanitizer carry-over state, the merged event log), which is what lets
:func:`repro.api.restore` rebuild the wrapper transparently.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.events import DataQualityEvent, GapEvent, SegmenterEvent, event_from_dict
from repro.core.quality import DataPolicy, RunRecord, Sanitizer, coerce_data_policy
from repro.utils.exceptions import ConfigurationError


class SanitizingSegmenter:
    """Dirty-data policy wrapper implementing the Segmenter protocol.

    Parameters
    ----------
    segmenter:
        The inner detector (any :class:`repro.api.Segmenter`); its
        chunk-invariance carries over to the sanitized stream.
    policy:
        The :class:`repro.api.DataPolicy` to apply (also accepted as a
        ``to_dict`` mapping); must have a non-reject ``nan_policy``.

    Returns
    -------
    SanitizingSegmenter
        A protocol-complete segmenter; unknown attributes delegate to the
        inner detector (``config``, ``reports``, ...).

    Raises
    ------
    ConfigurationError
        When the policy is None, rejects nothing (``nan_policy="reject"``)
        or fails validation.

    Example
    -------
    >>> import numpy as np
    >>> from repro import api
    >>> inner = api.create("page-hinkley")
    >>> wrapped = api.SanitizingSegmenter(inner, api.DataPolicy(nan_policy="skip"))
    >>> wrapped.process(np.array([1.0, np.nan, 2.0]))
    array([], dtype=int64)
    >>> [event.kind for event in wrapped.events()]
    ['data_quality']
    """

    def __init__(self, segmenter: Any, policy: DataPolicy | dict) -> None:
        coerced = coerce_data_policy(policy)
        if coerced is None or not coerced.sanitizes:
            raise ConfigurationError(
                "SanitizingSegmenter requires a policy with a non-reject "
                "nan_policy; the default reject behaviour needs no wrapper"
            )
        self.inner = segmenter
        self.policy = coerced
        self._sanitizer = Sanitizer(coerced)
        self._events: list[SegmenterEvent] = []
        self._inner_cursor = 0

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #

    @property
    def n_seen(self) -> int:
        """Observations the inner detector processed (sanitized stream)."""
        return int(self.inner.n_seen)

    @property
    def n_seen_raw(self) -> int:
        """Raw observations fed to the wrapper, dirty rows included."""
        return int(self._sanitizer.n_raw)

    @property
    def change_points(self) -> np.ndarray:
        """Absolute sanitized-stream positions of every reported change point."""
        return self.inner.change_points

    def update(self, value: float) -> int | None:
        """Ingest one raw observation; return the change point if one fired.

        Parameters
        ----------
        value:
            One raw observation (may be NaN/inf — the policy decides).

        Returns
        -------
        int or None
            The absolute change point detected by this observation, if any.

        Example
        -------
        >>> from repro import api
        >>> wrapped = api.create("page-hinkley", data_policy={"nan_policy": "skip"})
        >>> wrapped.update(float("nan")) is None
        True
        """
        detected = self.process(np.asarray([value], dtype=np.float64))
        return int(detected[-1]) if len(detected) else None

    def process(self, values: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Sanitize one raw chunk, feed the clean parts, realise quality events.

        Parameters
        ----------
        values:
            Raw observations (1-d, or 2-d for multivariate detectors).
        chunk_size:
            Forwarded to the inner detector's ``process`` when given.

        Returns
        -------
        numpy.ndarray
            Change points newly reported during this call (absolute
            sanitized-stream positions).

        Example
        -------
        >>> import numpy as np
        >>> from repro import api
        >>> wrapped = api.create("page-hinkley", data_policy={"nan_policy": "hold-last"})
        >>> wrapped.process(np.array([1.0, np.nan, 1.0])).size
        0
        """
        before = len(self.inner.change_points)
        for part in self._sanitizer.feed(values):
            self._feed_part(part.values, chunk_size)
            if part.record is not None:
                self._realise_record(part.record)
        after = np.asarray(self.inner.change_points)
        return after[before:].astype(np.int64, copy=False)

    def events(self) -> list:
        """Merged append-only event log: inner events + quality events.

        Returns
        -------
        list
            Typed events in emission order; like the inner detectors' logs
            it only ever grows, so stream consumers can slice new entries.

        Example
        -------
        >>> from repro import api
        >>> api.create("page-hinkley", data_policy={"nan_policy": "skip"}).events()
        []
        """
        self._sync_inner_events()
        return list(self._events)

    def finalize(self) -> np.ndarray:
        """Flush the sanitizer (realise a trailing dirty run) and the inner detector.

        Returns
        -------
        numpy.ndarray
            All change points reported so far.

        Example
        -------
        >>> from repro import api
        >>> api.create("page-hinkley", data_policy={"nan_policy": "skip"}).finalize()
        array([], dtype=int64)
        """
        for part in self._sanitizer.flush():
            self._feed_part(part.values, None)
            if part.record is not None:
                self._realise_record(part.record)
        result = self.inner.finalize()
        self._sync_inner_events()
        return result

    def finalise(self) -> np.ndarray:
        """Alias of :meth:`finalize` (returns the same change points).

        Example
        -------
        >>> from repro import api
        >>> api.create("page-hinkley", data_policy={"nan_policy": "skip"}).finalise()
        array([], dtype=int64)
        """
        return self.finalize()

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def save_state(self) -> dict:
        """Inner checkpoint payload plus the wrapper's ``"quality"`` envelope.

        Returns
        -------
        dict
            The inner detector's payload with a top-level ``quality`` key
            (policy, sanitizer state, merged event log, inner-event cursor);
            :func:`repro.api.restore` uses it to rebuild the wrapper.

        Example
        -------
        >>> from repro import api
        >>> payload = api.create("page-hinkley", data_policy={"nan_policy": "skip"}).save_state()
        >>> payload["quality"]["policy"]["nan_policy"]
        'skip'
        """
        self._sync_inner_events()
        payload = dict(self.inner.save_state())
        config = dict(payload.get("config", {}))
        config["data_policy"] = self.policy.to_dict()
        payload["config"] = config
        payload["quality"] = {
            "policy": self.policy.to_dict(),
            "sanitizer": self._sanitizer.state_dict(),
            "events": [event.to_dict() for event in self._events],
            "inner_cursor": self._inner_cursor,
        }
        return payload

    def load_state(self, payload: dict) -> None:
        """Restore a :meth:`save_state` payload (wrapper and inner state).

        Parameters
        ----------
        payload:
            A payload produced by :meth:`save_state` (must carry the
            ``quality`` envelope).

        Raises
        ------
        ConfigurationError
            When the payload has no ``quality`` envelope or its policy does
            not sanitize.

        Example
        -------
        >>> from repro import api
        >>> wrapped = api.create("page-hinkley", data_policy={"nan_policy": "skip"})
        >>> wrapped.load_state(wrapped.save_state())
        """
        quality = payload.get("quality")
        if not isinstance(quality, dict):
            raise ConfigurationError(
                "checkpoint payload carries no quality envelope; use the inner "
                "detector's load_state for unwrapped payloads"
            )
        policy = DataPolicy.from_dict(quality.get("policy", {}))
        if not policy.sanitizes:
            raise ConfigurationError("quality envelope policy must sanitize")
        sanitizer = Sanitizer(policy)
        sanitizer.load_state_dict(quality.get("sanitizer", {}))
        events = [event_from_dict(entry) for entry in quality.get("events", [])]
        # validate everything above BEFORE mutating, like the inner detectors
        self.inner.load_state(payload)
        self.policy = policy
        self._sanitizer = sanitizer
        self._events = events
        self._inner_cursor = int(quality.get("inner_cursor", 0))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def quality_counters(self) -> dict[str, int]:
        """Cumulative sanitizer counters (raw/clean/imputed/skipped/gaps).

        Returns
        -------
        dict
            ``n_raw``, ``n_clean``, ``n_imputed``, ``n_skipped``,
            ``n_gaps``, ``n_clipped`` and ``n_pending`` (rows of a dirty
            run still awaiting its right edge).

        Example
        -------
        >>> from repro import api
        >>> api.create("page-hinkley", data_policy={"nan_policy": "skip"}).quality_counters()["n_raw"]
        0
        """
        return self._sanitizer.counters()

    def __getattr__(self, name: str) -> Any:
        # transparent delegation for inner-specific attributes (config,
        # reports, warmup_end, ...); only reached for names not set above
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.inner, name)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _feed_part(self, values: np.ndarray | None, chunk_size: int | None) -> None:
        if values is None or values.shape[0] == 0:
            return
        if chunk_size is None:
            self.inner.process(values)
        else:
            self.inner.process(values, chunk_size=chunk_size)
        self._sync_inner_events()

    def _sync_inner_events(self) -> None:
        inner_events = self.inner.events()
        fresh = inner_events[self._inner_cursor :]
        if fresh:
            self._events.extend(fresh)
            self._inner_cursor = len(inner_events)

    def _realise_record(self, record: RunRecord) -> None:
        at = int(self.inner.n_seen)
        if record.kind == "gap":
            self._events.append(GapEvent(at=at, gap=record.length, reset=record.reset))
            if record.reset and hasattr(self.inner, "reset_warmup"):
                self.inner.reset_warmup()
        else:
            imputed = record.length if record.kind == "imputed" else 0
            skipped = record.length if record.kind == "skipped" else 0
            self._events.append(
                DataQualityEvent(
                    at=at,
                    imputed=imputed,
                    skipped=skipped,
                    n_nan=record.n_nan,
                    n_inf=record.n_inf,
                )
            )
