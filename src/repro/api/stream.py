"""Event-stream driver: feed a detector and yield typed events as they happen.

:func:`stream` is the generator counterpart of the historical
``update() -> int | None`` return-code path: it pushes a finite array of
observations through any :class:`~repro.api.protocol.Segmenter` in chunks
and yields :mod:`repro.api.events` objects the moment the detector's state
produces them — a :class:`~repro.api.events.WarmupEvent` when the detector
becomes ready, one :class:`~repro.api.events.ChangePointEvent` per confirmed
detection, and (opt-in) a :class:`~repro.api.events.ScoreEvent` per chunk
with the current detection score.

The generator only *observes* the detector through the protocol's
``events()`` history, so chunked delivery is behaviour-identical to the
detector's own ingestion contract and the caller keeps full access to the
live segmenter between events.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.api.events import ScoreEvent, SegmenterEvent
from repro.api.protocol import iter_chunks
from repro.utils.exceptions import ConfigurationError

#: Default observations per ``process`` call (matches the ingestion default).
DEFAULT_STREAM_CHUNK_SIZE = 1_024


def stream(
    segmenter,
    values: np.ndarray,
    chunk_size: int | None = None,
    include_scores: bool = False,
    finalize: bool = False,
    data_policy=None,
) -> Iterator[SegmenterEvent]:
    """Feed ``values`` to ``segmenter`` chunk-wise; yield typed events in order.

    Parameters
    ----------
    segmenter:
        Any detector implementing the :class:`~repro.api.protocol.Segmenter`
        protocol (the registry only builds such detectors).
    values:
        1-d array of observations, a ``(n, channels)`` array for
        multivariate detectors, or a stored-stream handle (anything with an
        ``iter_chunks(chunk_size)`` method, e.g.
        :class:`repro.storage.StoredStream`) — stored streams are read
        chunk-by-chunk through their memory-mapped segments, so datasets far
        larger than RAM stream at constant resident memory.
    chunk_size:
        Observations handed to ``process`` per call (default 1024).  Events
        are yielded after the chunk containing them — detection results are
        identical for every chunk size.  For stored streams, chunks are
        additionally clipped at segment-file boundaries (also
        behaviour-identical, by the same chunk-invariance contract).
    include_scores:
        Also yield one :class:`~repro.api.events.ScoreEvent` after every
        chunk once the detector exposes a current score.
    finalize:
        Call ``finalize()`` after the last chunk and yield any events it
        produces (e.g. the batch-ClaSP adapter segments only on finalize).
    data_policy:
        Optional dirty-data policy (:class:`~repro.api.DataPolicy` or its
        mapping form).  A sanitizing policy wraps ``segmenter`` in a
        :class:`repro.api.quality.SanitizingSegmenter` for this stream, so
        NaN/inf runs are repaired per the policy and reported as
        :class:`~repro.api.events.DataQualityEvent` /
        :class:`~repro.api.events.GapEvent` alongside the detector's own
        events.  ``None`` (default) streams into ``segmenter`` unchanged —
        detectors built with a policy-carrying config are already wrapped.

    Yields
    ------
    :class:`~repro.api.events.SegmenterEvent` instances in stream order, as
    soon as the chunk containing them has been processed.

    Raises
    ------
    ConfigurationError
        When ``values`` is not 1-d/2-d or ``chunk_size`` is not positive.

    Example
    -------
    >>> import numpy as np
    >>> from repro import api
    >>> segmenter = api.create("class", {"window_size": 500})
    >>> events = list(api.stream(segmenter, np.sin(np.arange(600) / 9.0)))
    >>> [event.kind for event in events]
    ['warmup']
    """
    if chunk_size is None:
        chunk_size = DEFAULT_STREAM_CHUNK_SIZE
    elif chunk_size < 1:
        raise ConfigurationError("chunk_size must be a positive integer")
    if data_policy is not None:
        from repro.api.quality import SanitizingSegmenter
        from repro.core.quality import coerce_data_policy

        policy = coerce_data_policy(data_policy)
        if policy is not None and policy.sanitizes:
            segmenter = SanitizingSegmenter(segmenter, policy)
    if hasattr(values, "iter_chunks"):  # stored-stream handle: out-of-core path
        chunks = values.iter_chunks(chunk_size)
    else:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim not in (1, 2):
            raise ConfigurationError(
                f"stream expects a 1-d or 2-d array, got shape {values.shape}"
            )
        chunks = iter_chunks(values, chunk_size)

    n_emitted = len(segmenter.events())
    for chunk in chunks:
        segmenter.process(np.asarray(chunk, dtype=np.float64))
        history = segmenter.events()
        yield from history[n_emitted:]
        n_emitted = len(history)
        if include_scores:
            score = getattr(segmenter, "current_score", None)
            if score is not None:
                yield ScoreEvent(at=int(segmenter.n_seen), score=float(score))
    if finalize:
        segmenter.finalize()
        history = segmenter.events()
        yield from history[n_emitted:]
