"""repro.api — the unified detector API.

One protocol, typed configs, a string-keyed registry, typed event streams
and durable checkpoints for every segmenter in the library::

    from repro import api

    config = api.ClaSSConfig(window_size=4_000, scoring_interval=5)
    segmenter = api.create("class", config)

    for event in api.stream(segmenter, values, chunk_size=512):
        print(event.to_dict())

    api.save_checkpoint(segmenter, "state.ckpt")     # durable mid-stream state
    resumed = api.load_checkpoint("state.ckpt")      # bit-identical resume

The registry keys (``api.available()``) cover ClaSS, MultivariateClaSS, the
batch-ClaSP adapter and all competitors of the paper's evaluation; the
evaluation grid, the sharded stream engine and the CLI construct their
detectors exclusively through :func:`create`.

This surface is covered by the CI api-surface gate
(``scripts/check_api_surface.py`` against ``api_surface.txt``): additions
are deliberate, silent removals fail the build.
"""

from repro.api.adapters import BatchClaSPSegmenter
from repro.api.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    restore,
    save_checkpoint,
)
from repro.api.config import (
    ADWINConfig,
    BOCDConfig,
    ChangeFinderConfig,
    ClaSPConfig,
    ClaSSConfig,
    CompetitorConfig,
    DDMConfig,
    FLOSSConfig,
    HDDMConfig,
    HDDMWConfig,
    MultivariateClaSSConfig,
    NEWMAConfig,
    PageHinkleyConfig,
    SegmenterConfig,
    WindowConfig,
)
from repro.api.events import (
    EVENT_KINDS,
    ChangePointEvent,
    DataQualityEvent,
    GapEvent,
    ScoreEvent,
    SegmenterEvent,
    WarmupEvent,
    event_from_dict,
)
from repro.api.protocol import Segmenter, ensure_segmenter
from repro.api.quality import SanitizingSegmenter
from repro.api.registry import (
    DetectorSpec,
    available,
    config_class,
    create,
    key_for_config,
    normalise_key,
    register,
    spec,
)
from repro.api.stream import stream
from repro.core.quality import DataPolicy

__all__ = [
    # protocol
    "Segmenter",
    "ensure_segmenter",
    # events
    "SegmenterEvent",
    "WarmupEvent",
    "ScoreEvent",
    "ChangePointEvent",
    "GapEvent",
    "DataQualityEvent",
    "EVENT_KINDS",
    "event_from_dict",
    "stream",
    # data quality
    "DataPolicy",
    "SanitizingSegmenter",
    # configs
    "SegmenterConfig",
    "ClaSSConfig",
    "MultivariateClaSSConfig",
    "ClaSPConfig",
    "CompetitorConfig",
    "FLOSSConfig",
    "WindowConfig",
    "BOCDConfig",
    "ChangeFinderConfig",
    "NEWMAConfig",
    "ADWINConfig",
    "DDMConfig",
    "HDDMConfig",
    "HDDMWConfig",
    "PageHinkleyConfig",
    # registry
    "DetectorSpec",
    "register",
    "create",
    "available",
    "spec",
    "config_class",
    "key_for_config",
    "normalise_key",
    # adapters
    "BatchClaSPSegmenter",
    # checkpointing
    "CHECKPOINT_FORMAT",
    "save_checkpoint",
    "load_checkpoint",
    "restore",
]
