"""String-keyed detector registry: one construction path for every layer.

``create("class", config)`` is the single way the evaluation grid, the
stream engine shards and the CLI build detectors.  Each registered detector
is described by a :class:`DetectorSpec` tying a stable string key to its
typed config class and a builder; configs are validated before construction,
so malformed JSON job specs fail fast and identically everywhere.

Keys are normalised (case-insensitive, ``_``/space become ``-``) and the
paper spellings used throughout the evaluation (``"ClaSS"``, ``"HDDM"``,
``"ChangeFinder"``, ...) resolve to the same specs, so existing call sites
migrate without renaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.api.config import (
    ADWINConfig,
    BOCDConfig,
    ChangeFinderConfig,
    ClaSPConfig,
    ClaSSConfig,
    DDMConfig,
    FLOSSConfig,
    HDDMConfig,
    HDDMWConfig,
    MultivariateClaSSConfig,
    NEWMAConfig,
    PageHinkleyConfig,
    SegmenterConfig,
    WindowConfig,
)
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class DetectorSpec:
    """One registered detector: key, config type, builder and a summary line.

    ``key`` is the canonical registry key, ``config_cls`` the typed config
    class validated before construction, ``builder`` the callable turning a
    validated config into a live detector, and ``summary`` a one-line
    description shown by the CLI and the generated docs.

    Example
    -------
    >>> from repro import api
    >>> api.spec("class").config_cls.__name__
    'ClaSSConfig'
    """

    key: str
    config_cls: type[SegmenterConfig]
    builder: Callable[[SegmenterConfig], object]
    summary: str


_REGISTRY: dict[str, DetectorSpec] = {}

#: Historical spellings accepted by :func:`create` (normalised form -> key).
_ALIASES = {
    "changefinder": "change-finder",
    "pagehinkley": "page-hinkley",
    "multivariateclass": "multivariate-class",
    "mclass": "multivariate-class",
    "hddm-a": "hddm",
}


def normalise_key(key: str) -> str:
    """Canonical form of a registry key (lower-case, dash-separated).

    Returns the canonical key with historical aliases resolved
    (``"HDDM-A"`` and ``"hddm_a"`` both map to ``"hddm"``); raises
    :class:`~repro.utils.exceptions.ConfigurationError` when ``key`` is not
    a string.

    Example
    -------
    >>> normalise_key("ChangeFinder")
    'change-finder'
    """
    if not isinstance(key, str):
        raise ConfigurationError(f"detector key must be a string, got {type(key).__name__}")
    normalised = key.strip().lower().replace("_", "-").replace(" ", "-")
    return _ALIASES.get(normalised, normalised)


def register(
    key: str,
    config_cls: type[SegmenterConfig],
    builder: Callable[[SegmenterConfig], object] | None = None,
    summary: str = "",
) -> DetectorSpec:
    """Register a detector under ``key`` (the extension point for user detectors).

    ``builder`` defaults to the config's own :meth:`~repro.api.config.SegmenterConfig.build`;
    re-registering an existing key replaces the spec (latest wins), which is
    how downstream code can shadow a built-in with a tuned variant.

    Parameters
    ----------
    key:
        Registry key the detector is reachable under (normalised first).
    config_cls:
        The :class:`~repro.api.config.SegmenterConfig` subclass describing
        the detector's parameters.
    builder:
        Optional callable turning a validated config into the detector.
    summary:
        One-line description shown by the CLI and the generated docs.

    Returns
    -------
    The registered :class:`DetectorSpec`.

    Raises
    ------
    ConfigurationError
        When the key is empty (after normalisation) or ``config_cls`` is
        not a ``SegmenterConfig`` subclass.

    Example
    -------
    >>> from repro.api import ClaSSConfig, register
    >>> register("my-class", ClaSSConfig, summary="tuned variant").key
    'my-class'
    """
    canonical = normalise_key(key)
    if not canonical:
        raise ConfigurationError("detector key must not be empty")
    if not (isinstance(config_cls, type) and issubclass(config_cls, SegmenterConfig)):
        raise ConfigurationError("config_cls must be a SegmenterConfig subclass")
    spec = DetectorSpec(
        key=canonical,
        config_cls=config_cls,
        builder=builder if builder is not None else (lambda config: config.build()),
        summary=summary,
    )
    _REGISTRY[canonical] = spec
    return spec


def available() -> tuple[str, ...]:
    """All registered detector keys, as a sorted tuple (the return value).

    Example
    -------
    >>> from repro import api
    >>> "class" in api.available()
    True
    """
    return tuple(sorted(_REGISTRY))


def spec(key: str) -> DetectorSpec:
    """Return the :class:`DetectorSpec` registered under ``key``.

    Raises :class:`~repro.utils.exceptions.ConfigurationError` for keys no
    detector is registered under.

    Example
    -------
    >>> from repro import api
    >>> api.spec("floss").key
    'floss'
    """
    canonical = normalise_key(key)
    if canonical not in _REGISTRY:
        raise ConfigurationError(
            f"unknown detector {key!r}; expected one of {list(available())}"
        )
    return _REGISTRY[canonical]


def config_class(key: str) -> type[SegmenterConfig]:
    """Return the typed config class of the detector registered under ``key``.

    Example
    -------
    >>> from repro import api
    >>> api.config_class("bocd").__name__
    'BOCDConfig'
    """
    return spec(key).config_cls


def create(key: str, config: SegmenterConfig | dict | None = None, **overrides):
    """Build a ready-to-stream detector from its registry key.

    Parameters
    ----------
    key:
        Registry key (``"class"``, ``"floss"``, ...); paper spellings and
        ``_``/case variants are accepted.
    config:
        A typed config instance, a :meth:`~repro.api.config.SegmenterConfig.to_dict`
        mapping, or None to start from the detector's defaults.
    ``**overrides``:
        Individual config fields replacing the corresponding entries of
        ``config`` (e.g. ``create("class", window_size=2_000)``).

    Returns
    -------
    The ready-to-stream detector (the spec's builder output); the effective
    config is validated before the detector is constructed.  When the config
    carries a sanitizing ``data_policy`` the detector is wrapped in a
    :class:`repro.api.quality.SanitizingSegmenter` applying it.

    Raises
    ------
    ConfigurationError
        For unknown keys, config instances of the wrong type, unknown
        config fields, or field values the config's ``validate`` rejects.

    Example
    -------
    >>> from repro import api
    >>> segmenter = api.create("class", {"window_size": 500})
    >>> segmenter.n_seen
    0
    """
    detector_spec = spec(key)
    if config is None:
        config_cls = detector_spec.config_cls
        effective = config_cls(**overrides) if overrides else config_cls()
    else:
        if isinstance(config, dict):
            config = detector_spec.config_cls.from_dict(config)
        if not isinstance(config, detector_spec.config_cls):
            raise ConfigurationError(
                f"detector {detector_spec.key!r} expects a {detector_spec.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        effective = config.replace(**overrides) if overrides else config
    effective.validate()
    segmenter = detector_spec.builder(effective)
    policy = effective.data_policy
    if policy is not None and policy.sanitizes:
        from repro.api.quality import SanitizingSegmenter

        segmenter = SanitizingSegmenter(segmenter, policy)
    return segmenter


def key_for_config(config: SegmenterConfig) -> str:
    """Return the registry key a config instance belongs to.

    Resolved through the config class's ``detector`` attribute; raises
    :class:`~repro.utils.exceptions.ConfigurationError` when the config does
    not describe a registered detector.

    Example
    -------
    >>> from repro.api import ClaSSConfig, key_for_config
    >>> key_for_config(ClaSSConfig())
    'class'
    """
    key = getattr(type(config), "detector", "")
    if not key or normalise_key(key) not in _REGISTRY:
        raise ConfigurationError(
            f"config {type(config).__name__!r} does not describe a registered detector"
        )
    return normalise_key(key)


# --------------------------------------------------------------------------- #
# built-in detectors: ClaSS, its multivariate ensemble, the batch-ClaSP
# adapter, and the paper's competitors (Table 2) plus the two extras the
# competitor registry always carried (HDDM-W, Page-Hinkley).
# --------------------------------------------------------------------------- #

register("class", ClaSSConfig, summary="ClaSS streaming segmentation (paper §3)")
register(
    "multivariate-class",
    MultivariateClaSSConfig,
    summary="per-channel ClaSS ensemble with online change point fusion (§6)",
)
register("clasp", ClaSPConfig, summary="batch ClaSP behind the streaming protocol (§2.2)")
register("floss", FLOSSConfig, summary="FLOSS corrected arc curve (Table 2)")
register("window", WindowConfig, summary="sliding two-window discrepancy (Table 2)")
register("bocd", BOCDConfig, summary="Bayesian online change point detection (Table 2)")
register("change-finder", ChangeFinderConfig, summary="two-stage SDAR outlier scoring (Table 2)")
register("newma", NEWMAConfig, summary="no-prior-knowledge EWMA (Table 2)")
register("adwin", ADWINConfig, summary="adaptive windowing (Table 2)")
register("ddm", DDMConfig, summary="drift detection method (Table 2)")
register("hddm", HDDMConfig, summary="Hoeffding-bound drift detection, averages (Table 2)")
register("hddm-w", HDDMWConfig, summary="Hoeffding-bound drift detection, EWMA variant")
register("page-hinkley", PageHinkleyConfig, summary="Page-Hinkley cumulative deviation test")
