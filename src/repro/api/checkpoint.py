"""Durable detector checkpoints with a bit-identical resume guarantee.

Every segmenter behind :mod:`repro.api` serialises its full runtime state —
for ClaSS that is the :class:`~repro.core.streaming_knn.StreamingKNN` ring
buffers and threshold caches, the warm-up prefix, the report history and the
significance-test RNG; for the multivariate ensemble additionally the fusion
state — into a plain picklable payload:

* ``segmenter.save_state()`` returns the payload,
* ``segmenter.load_state(payload)`` restores it into a compatible instance,
* :func:`restore` rebuilds a detector from a payload alone (via the
  registry), and :func:`save_checkpoint` / :func:`load_checkpoint` are the
  on-disk convenience pair used by the CLI's ``--checkpoint`` / ``--resume``.

The contract, pinned by the test-suite for ClaSS, MultivariateClaSS and all
eight competitors: checkpoint mid-stream, restore (in the same or another
process), feed the remaining observations — the resumed run reports exactly
the change points, scores and p-values of the uninterrupted run.

Checkpoint files are written atomically (tmp + fsync + rename) with a CRC-32
integrity frame (:func:`write_payload_file` / :func:`read_payload_file`), so
a crash mid-write never leaves a half-checkpoint behind and silent on-disk
corruption surfaces as a typed
:class:`~repro.utils.exceptions.CorruptCheckpointError` instead of garbage
state — the service's durability spool rides on the same framing.  The body
is a pickle: load checkpoints only from trusted locations (the standard
pickle caveat applies).
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path
from typing import Any

from repro.api.config import SegmenterConfig
from repro.api.registry import create, key_for_config, normalise_key
from repro.utils.exceptions import ConfigurationError, CorruptCheckpointError

#: Format marker embedded in every checkpoint payload.
CHECKPOINT_FORMAT = "repro.checkpoint/1"

#: Magic prefix of CRC-framed checkpoint files (:func:`write_payload_file`).
FRAME_MAGIC = b"RCKP1\n"


def write_payload_file(path: str | Path, payload: Any, *, fsync: bool = True) -> Path:
    """Atomically persist a picklable payload with an integrity frame.

    The file is written as ``magic + crc32(body) + body`` to a sibling
    temporary file, flushed (and fsynced when ``fsync`` is true), then moved
    into place with :func:`os.replace` — a reader never observes a partial
    checkpoint, and any later corruption is caught by the CRC on load.
    """
    path = Path(path)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    frame = FRAME_MAGIC + zlib.crc32(body).to_bytes(4, "big") + body
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(frame)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        directory = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory)
        finally:
            os.close(directory)
    return path


def read_payload_file(path: str | Path) -> Any:
    """Load a payload written by :func:`write_payload_file`, verifying its CRC.

    Raises
    ------
    CorruptCheckpointError
        When the frame is truncated, the magic is wrong, the CRC does not
        match the body, or the body does not unpickle.
    """
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < len(FRAME_MAGIC) + 4 or not raw.startswith(FRAME_MAGIC):
        raise CorruptCheckpointError(f"{path} is not a framed checkpoint file")
    stored = int.from_bytes(raw[len(FRAME_MAGIC) : len(FRAME_MAGIC) + 4], "big")
    body = raw[len(FRAME_MAGIC) + 4 :]
    if zlib.crc32(body) != stored:
        raise CorruptCheckpointError(f"{path} failed its CRC integrity check")
    try:
        return pickle.loads(body)
    except Exception as error:
        raise CorruptCheckpointError(f"{path} does not unpickle: {error}") from error


def detector_key_for(segmenter) -> str:
    """Registry key of a live segmenter instance.

    Detectors constructed from a typed config expose it as ``config``;
    competitor wrappers are resolved through their paper ``name`` (the
    registry accepts those spellings as aliases).
    """
    config = getattr(segmenter, "config", None)
    if isinstance(config, SegmenterConfig):
        return key_for_config(config)
    name = getattr(type(segmenter), "name", None)
    if isinstance(name, str) and name:
        return normalise_key(name)
    raise ConfigurationError(
        f"cannot determine the registry key of {type(segmenter).__name__!r}"
    )


def state_payload(segmenter, state: dict, config: dict | None = None) -> dict[str, Any]:
    """Wrap a segmenter's serialised state in the versioned checkpoint envelope."""
    payload: dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "detector": detector_key_for(segmenter),
        "state": state,
    }
    if config is not None:
        payload["config"] = config
    return payload


def checked_state(segmenter, payload: dict) -> dict:
    """Validate a checkpoint payload against the receiving segmenter; return its state."""
    if not isinstance(payload, dict) or "state" not in payload:
        raise ConfigurationError("checkpoint payload must be a mapping with a 'state' entry")
    fmt = payload.get("format")
    if fmt != CHECKPOINT_FORMAT:
        raise ConfigurationError(
            f"unsupported checkpoint format {fmt!r}; expected {CHECKPOINT_FORMAT!r}"
        )
    expected = detector_key_for(segmenter)
    actual = payload.get("detector")
    if actual != expected:
        raise ConfigurationError(
            f"checkpoint belongs to detector {actual!r}, cannot restore into {expected!r}"
        )
    return payload["state"]


def restore(payload: dict):
    """Rebuild a ready-to-resume detector from a checkpoint payload alone.

    The detector class is resolved through the registry (``payload["detector"]``),
    constructed, and handed the payload via ``load_state`` — detectors that
    embed their config rebuild themselves from it, so the restored instance
    is configured exactly like the checkpointed one.  Payloads written by a
    :class:`repro.api.quality.SanitizingSegmenter` carry a top-level
    ``"quality"`` envelope; the wrapper (policy, sanitizer carry-over state
    and merged event log) is rebuilt around the restored detector.

    Returns the resumed detector; raises
    :class:`~repro.utils.exceptions.ConfigurationError` when the payload is
    not a checkpoint envelope or names an unknown detector.

    Example
    -------
    >>> from repro import api
    >>> segmenter = api.create("class", {"window_size": 500})
    >>> resumed = api.restore(segmenter.save_state())
    >>> resumed.n_seen
    0
    """
    if not isinstance(payload, dict) or "detector" not in payload:
        raise ConfigurationError("checkpoint payload must be a mapping with a 'detector' entry")
    segmenter = create(payload["detector"])
    quality = payload.get("quality")
    if isinstance(quality, dict):
        from repro.api.quality import SanitizingSegmenter
        from repro.core.quality import DataPolicy

        segmenter = SanitizingSegmenter(
            segmenter, DataPolicy.from_dict(quality.get("policy", {}))
        )
    segmenter.load_state(payload)
    return segmenter


def save_checkpoint(segmenter, path: str | Path) -> Path:
    """Write ``segmenter.save_state()`` to ``path`` (pickle); return the path.

    Example
    -------
    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro import api
    >>> segmenter = api.create("class", {"window_size": 500})
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     api.save_checkpoint(segmenter, Path(tmp) / "ckpt.pkl").name
    'ckpt.pkl'
    """
    path = Path(path)
    payload = segmenter.save_state()
    return write_payload_file(path, payload)


def load_checkpoint(path: str | Path):
    """Rebuild a detector from a checkpoint file written by :func:`save_checkpoint`.

    ``path`` is the pickle file location; returns the resumed detector
    (see :func:`restore` — resuming is bit-identical).

    Example
    -------
    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro import api
    >>> segmenter = api.create("class", {"window_size": 500})
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     saved = api.save_checkpoint(segmenter, Path(tmp) / "ckpt.pkl")
    ...     api.load_checkpoint(saved).n_seen
    0
    """
    path = Path(path)
    if path.read_bytes()[: len(FRAME_MAGIC)] == FRAME_MAGIC:
        payload = read_payload_file(path)
    else:  # legacy raw-pickle checkpoint written before the CRC framing
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    return restore(payload)
