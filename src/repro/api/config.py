"""Frozen, declarative detector configurations (the "typed config" layer).

Every detector the registry can build is described by a frozen dataclass:

* construction parameters live in one hashable, picklable value object that
  can be logged, diffed, shipped to worker processes and embedded in
  checkpoints,
* validation lives in :meth:`SegmenterConfig.validate` — *not* in detector
  ``__init__`` bodies — so a config can be rejected before any detector
  state is allocated (e.g. when a shard spec arrives over the wire),
* :meth:`SegmenterConfig.to_dict` / :meth:`SegmenterConfig.from_dict` (and
  the ``to_json`` / ``from_json`` convenience pair) round-trip losslessly,
  which is what lets shards be constructed from JSON job specs and detectors
  be rebuilt from checkpoint payloads,
* :meth:`SegmenterConfig.build` constructs the ready-to-stream detector —
  the single construction path used by :func:`repro.api.create`.

The config classes deliberately mirror the keyword arguments of the
underlying detector constructors one-to-one, so ``SomeDetector(**config.as_kwargs())``
and ``config.build()`` are equivalent.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.core.cross_val import CROSS_VAL_IMPLEMENTATIONS
from repro.core.kernels import KERNEL_BACKENDS
from repro.core.quality import DataPolicy, coerce_data_policy
from repro.core.scoring import SCORE_FUNCTIONS
from repro.core.significance import DEFAULT_SAMPLE_SIZE, DEFAULT_SIGNIFICANCE_LEVEL
from repro.core.similarity import SIMILARITY_MEASURES
from repro.core.streaming_knn import KNN_MODES
from repro.core.window_size import WSS_METHODS
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int, check_probability


def _check_unit_interval(value: float, name: str) -> None:
    """Reject a score/threshold outside ``[0, 1]``.

    Deliberately not :func:`~repro.utils.validation.check_probability`: the
    historical detector ``__init__`` contract raises ConfigurationError with
    this exact message for ``score_threshold`` (pinned by the test-suite),
    while check_probability raises ValidationError.
    """
    if not 0.0 <= float(value) <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1]")


def _check_significance(significance_level: float, sample_size: int | None) -> None:
    """Shared checks of the significance-test parameters (moved out of __init__)."""
    if not 0.0 < float(significance_level) < 1.0:
        raise ConfigurationError("significance_level must lie strictly between 0 and 1")
    if sample_size is not None and int(sample_size) < 10:
        raise ConfigurationError("sample_size must be at least 10 (or None for variable)")


@dataclass(frozen=True)
class SegmenterConfig:
    """Base class of all detector configurations.

    Subclasses are frozen dataclasses whose fields mirror the keyword
    arguments of the detector they describe; ``detector`` is the registry key
    the config belongs to.  The base class carries the shared machinery:
    lossless ``to_dict``/``from_dict`` (and JSON) round-trips, field-checked
    :meth:`replace`, :meth:`validate` and the :meth:`build` construction hook,
    plus the shared keyword-only ``data_policy`` field — an optional
    :class:`repro.core.quality.DataPolicy` (also accepted as a mapping)
    that :func:`repro.api.create` turns into a sanitizing wrapper around
    the built detector.  ``data_policy=None`` (default) keeps the seed
    reject-everything behaviour and serialises to nothing.

    Example
    -------
    >>> from repro.api import ClaSSConfig
    >>> config = ClaSSConfig(window_size=500)
    >>> ClaSSConfig.from_dict(config.to_dict()) == config
    True
    """

    #: Registry key of the detector this config describes.
    detector: ClassVar[str] = ""

    #: Optional dirty-data policy shared by every detector config.  None (the
    #: default) keeps the seed reject-everything behaviour; a non-reject
    #: policy makes :func:`repro.api.create` wrap the detector in a
    #: :class:`repro.api.quality.SanitizingSegmenter`.
    data_policy: DataPolicy | None = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        # accept a mapping (HTTP specs, checkpoints) and validate eagerly
        object.__setattr__(self, "data_policy", coerce_data_policy(self.data_policy))

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dictionary of every field (nested configs become dicts).

        ``data_policy`` is omitted while None so default-config documents
        stay byte-identical to the seed serialisation.
        """
        payload: dict[str, Any] = {}
        for config_field in dataclasses.fields(self):
            value = getattr(self, config_field.name)
            if config_field.name == "data_policy":
                if value is None:
                    continue
                value = value.to_dict()
            elif isinstance(value, SegmenterConfig):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            payload[config_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SegmenterConfig":
        """Rebuild a config from :meth:`to_dict` output; unknown keys are rejected."""
        if not isinstance(payload, dict):
            raise ConfigurationError(f"{cls.__name__}.from_dict expects a mapping")
        fields_by_name = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - set(fields_by_name))
        if unknown:
            raise ConfigurationError(f"unknown {cls.__name__} fields: {unknown}")
        kwargs: dict[str, Any] = {}
        for name, value in payload.items():
            if name == "class_config" and isinstance(value, dict):
                value = ClaSSConfig.from_dict(value)
            elif name == "data_policy" and isinstance(value, dict):
                value = DataPolicy.from_dict(value)
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the config as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "SegmenterConfig":
        """Rebuild a config from its :meth:`to_json` document."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid {cls.__name__} JSON: {error}") from error
        return cls.from_dict(payload)

    def replace(self, **overrides: Any) -> "SegmenterConfig":
        """A copy of the config with the given fields replaced."""
        unknown = sorted(set(overrides) - {f.name for f in dataclasses.fields(self)})
        if unknown:
            raise ConfigurationError(f"unknown {type(self).__name__} fields: {unknown}")
        return dataclasses.replace(self, **overrides)

    def as_kwargs(self) -> dict[str, Any]:
        """Constructor keyword arguments of the underlying detector.

        ``data_policy`` is excluded: it is applied by the registry as a
        wrapper around the built detector, not a constructor argument.
        """
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "data_policy"
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def validate(self) -> "SegmenterConfig":
        """Check the configuration; return self so calls chain."""
        return self

    def build(self):
        """Construct the ready-to-stream detector this config describes."""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class ClaSSConfig(SegmenterConfig):
    """Configuration of :class:`repro.ClaSS` (paper §3; one field per argument).

    Parameters
    ----------
    window_size:
        Points retained in the sliding window the stream is scored over
        (paper ``w``; minimum 20).
    subsequence_width:
        Pattern width for the k-NN subsequences; ``None`` auto-estimates it
        from the warm-up prefix with ``wss_method`` (minimum 3 when set, and
        at most a quarter of ``window_size``).
    k_neighbours:
        Neighbours per subsequence in the streaming k-NN (paper ``k``).
    score:
        Cross-validation score name from ``SCORE_FUNCTIONS`` (e.g.
        ``"macro_f1"``).
    similarity:
        Subsequence similarity measure from ``SIMILARITY_MEASURES``
        (e.g. ``"pearson"``).
    significance_level:
        Change points are only reported when the permutation test's p-value
        falls below this level (strictly between 0 and 1).
    sample_size:
        Observations drawn per permutation-test sample (minimum 10), or
        ``None`` for variable-size samples.
    wss_method:
        Window-size selection method from ``WSS_METHODS`` used when
        ``subsequence_width`` is ``None`` (e.g. ``"suss"``).
    scoring_interval:
        Run the ClaSP scoring pass every this many observations (1 = every
        point, the paper's setting).
    excl_factor:
        Exclusion-zone factor: ``excl_factor * subsequence_width`` points at
        each region edge are never split candidates.
    score_threshold:
        Minimum best-split score in ``[0, 1]`` for a change-point report.
    relearn_width:
        Re-estimate the subsequence width after each detected change point.
    cross_val_implementation:
        Cross-validation kernel from ``CROSS_VAL_IMPLEMENTATIONS``
        (``"fast"`` is the incremental zero-copy path).
    knn_mode:
        Streaming k-NN update mode from ``KNN_MODES`` (``"streaming"`` or
        the batched ``"fft"`` path).
    kernel_backend:
        Distance-kernel backend from ``KERNEL_BACKENDS`` (``"auto"`` picks
        the fastest available, e.g. the JIT backend when installed).
    random_state:
        Seed of the permutation test's generator (``None`` = nondeterministic).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when any field is out of range or names an
        unknown score/similarity/backend.

    Example
    -------
    >>> from repro.api import ClaSSConfig
    >>> ClaSSConfig(window_size=500, scoring_interval=10).validate().detector
    'class'
    """

    detector: ClassVar[str] = "class"

    window_size: int = 10_000
    subsequence_width: int | None = None
    k_neighbours: int = 3
    score: str = "macro_f1"
    similarity: str = "pearson"
    significance_level: float = DEFAULT_SIGNIFICANCE_LEVEL
    sample_size: int | None = DEFAULT_SAMPLE_SIZE
    wss_method: str = "suss"
    scoring_interval: int = 1
    excl_factor: int = 5
    score_threshold: float = 0.75
    relearn_width: bool = False
    cross_val_implementation: str = "fast"
    knn_mode: str = "streaming"
    kernel_backend: str = "auto"
    random_state: int | None = 2357

    def validate(self) -> "ClaSSConfig":
        check_positive_int(self.window_size, "window_size", minimum=20)
        if self.subsequence_width is not None:
            check_positive_int(self.subsequence_width, "subsequence_width", minimum=3)
            if self.subsequence_width > self.window_size // 4:
                raise ConfigurationError(
                    "subsequence_width must be at most a quarter of the window size"
                )
        check_positive_int(self.k_neighbours, "k_neighbours")
        if self.score not in SCORE_FUNCTIONS:
            raise ConfigurationError(
                f"unknown score {self.score!r}; expected one of {sorted(SCORE_FUNCTIONS)}"
            )
        if self.similarity not in SIMILARITY_MEASURES:
            raise ConfigurationError(
                f"unknown similarity {self.similarity!r}; expected one of {SIMILARITY_MEASURES}"
            )
        if self.wss_method not in WSS_METHODS:
            raise ConfigurationError(
                f"unknown wss_method {self.wss_method!r}; expected one of {sorted(WSS_METHODS)}"
            )
        check_positive_int(self.scoring_interval, "scoring_interval")
        check_positive_int(self.excl_factor, "excl_factor")
        _check_unit_interval(self.score_threshold, "score_threshold")
        if self.cross_val_implementation not in CROSS_VAL_IMPLEMENTATIONS:
            raise ConfigurationError(
                f"unknown cross_val_implementation {self.cross_val_implementation!r}"
            )
        if self.knn_mode not in KNN_MODES:
            raise ConfigurationError(
                f"unknown mode {self.knn_mode!r}; expected one of {KNN_MODES}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )
        _check_significance(self.significance_level, self.sample_size)
        return self

    def build(self):
        from repro.core.class_segmenter import ClaSS

        return ClaSS(**self.as_kwargs())


@dataclass(frozen=True)
class MultivariateClaSSConfig(SegmenterConfig):
    """Configuration of :class:`repro.MultivariateClaSS` (per-channel ensemble).

    Parameters
    ----------
    n_channels:
        Number of input channels; each gets its own univariate ClaSS.
    min_votes:
        Weighted votes required to report a fused change point (must be
        satisfiable by the active ``channel_weights``).
    fusion_tolerance:
        Per-channel detections within this many points of each other are
        fused into one change point (non-negative).
    channel_weights:
        Optional per-channel vote weights (one non-negative entry per
        channel); ``None`` weights every channel 1.
    class_config:
        The :class:`ClaSSConfig` every per-channel detector is built from.
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when the ensemble parameters are inconsistent
        (e.g. ``min_votes`` unreachable) or the nested config is invalid.

    Example
    -------
    >>> from repro.api import ClaSSConfig, MultivariateClaSSConfig
    >>> config = MultivariateClaSSConfig(
    ...     n_channels=3, min_votes=2, class_config=ClaSSConfig(window_size=500)
    ... )
    >>> config.validate().detector
    'multivariate-class'
    """

    detector: ClassVar[str] = "multivariate-class"

    n_channels: int = 2
    min_votes: float = 2
    fusion_tolerance: int = 500
    channel_weights: tuple[float, ...] | None = None
    class_config: ClaSSConfig = field(default_factory=ClaSSConfig)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.channel_weights is not None and not isinstance(self.channel_weights, tuple):
            object.__setattr__(self, "channel_weights", tuple(self.channel_weights))

    def validate(self) -> "MultivariateClaSSConfig":
        if self.class_config.data_policy is not None:
            raise ConfigurationError(
                "data_policy belongs on the multivariate config itself, not the "
                "nested class_config"
            )
        if int(self.n_channels) < 1:
            raise ConfigurationError("n_channels must be at least 1")
        if self.fusion_tolerance < 0:
            raise ConfigurationError("fusion_tolerance must be non-negative")
        weights = self.channel_weights
        if weights is not None:
            if len(weights) != self.n_channels:
                raise ConfigurationError("channel_weights must have one entry per channel")
            if any(w < 0 for w in weights):
                raise ConfigurationError("channel_weights must be non-negative")
        else:
            weights = (1.0,) * self.n_channels
        active_weight = sum(w for w in weights if w > 0)
        if not 0 < float(self.min_votes) <= max(active_weight, 1e-12):
            raise ConfigurationError(
                f"min_votes={self.min_votes} cannot be satisfied by the active channel weights"
            )
        self.class_config.validate()
        return self

    def build(self):
        from repro.core.multivariate import MultivariateClaSS

        return MultivariateClaSS(
            n_channels=self.n_channels,
            min_votes=self.min_votes,
            fusion_tolerance=self.fusion_tolerance,
            channel_weights=None if self.channel_weights is None else list(self.channel_weights),
            **self.class_config.as_kwargs(),
        )


@dataclass(frozen=True)
class ClaSPConfig(SegmenterConfig):
    """Configuration of the batch-ClaSP streaming adapter (paper §2.2).

    The adapter buffers the stream and runs the batch segmentation on
    :meth:`~repro.api.adapters.BatchClaSPSegmenter.finalize`; the fields
    mirror :class:`repro.ClaSP`.

    Parameters
    ----------
    subsequence_width:
        Pattern width (minimum 3), or ``None`` to auto-estimate it with
        ``wss_method``.
    k_neighbours:
        Neighbours per subsequence in the k-NN.
    score:
        Cross-validation score name from ``SCORE_FUNCTIONS``.
    n_change_points:
        Stop after this many change points, or ``None`` for
        threshold-driven recursion.
    significance_level:
        Permutation-test significance level (strictly between 0 and 1).
    sample_size:
        Observations per permutation-test sample (minimum 10) or ``None``.
    wss_method:
        Window-size selection method from ``WSS_METHODS``.
    similarity:
        Subsequence similarity measure from ``SIMILARITY_MEASURES``.
    score_threshold:
        Minimum split score in ``[0, 1]`` to keep recursing.
    knn_backend:
        ``"streaming"`` (ring-buffer k-NN) or ``"bruteforce"``.
    cross_val_implementation:
        Cross-validation kernel from ``CROSS_VAL_IMPLEMENTATIONS``.
    random_state:
        Seed of the permutation test's generator (``None`` = nondeterministic).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when any field is out of range or names an
        unknown score/similarity/backend.

    Example
    -------
    >>> from repro.api import ClaSPConfig
    >>> ClaSPConfig(n_change_points=2).validate().detector
    'clasp'
    """

    detector: ClassVar[str] = "clasp"

    subsequence_width: int | None = None
    k_neighbours: int = 3
    score: str = "macro_f1"
    n_change_points: int | None = None
    significance_level: float = 1e-15
    sample_size: int | None = 1_000
    wss_method: str = "suss"
    similarity: str = "pearson"
    score_threshold: float = 0.75
    knn_backend: str = "streaming"
    cross_val_implementation: str = "fast"
    random_state: int | None = 2357

    def validate(self) -> "ClaSPConfig":
        if self.subsequence_width is not None:
            check_positive_int(self.subsequence_width, "subsequence_width", minimum=3)
        check_positive_int(self.k_neighbours, "k_neighbours")
        if self.score not in SCORE_FUNCTIONS:
            raise ConfigurationError(
                f"unknown score {self.score!r}; expected one of {sorted(SCORE_FUNCTIONS)}"
            )
        if self.n_change_points is not None:
            check_positive_int(self.n_change_points, "n_change_points")
        if self.similarity not in SIMILARITY_MEASURES:
            raise ConfigurationError(
                f"unknown similarity {self.similarity!r}; expected one of {SIMILARITY_MEASURES}"
            )
        if self.wss_method not in WSS_METHODS:
            raise ConfigurationError(
                f"unknown wss_method {self.wss_method!r}; expected one of {sorted(WSS_METHODS)}"
            )
        _check_unit_interval(self.score_threshold, "score_threshold")
        if self.knn_backend not in ("streaming", "bruteforce"):
            raise ConfigurationError("knn_backend must be 'streaming' or 'bruteforce'")
        if self.cross_val_implementation not in CROSS_VAL_IMPLEMENTATIONS:
            raise ConfigurationError(
                f"unknown cross_val_implementation {self.cross_val_implementation!r}"
            )
        _check_significance(self.significance_level, self.sample_size)
        return self

    def build(self):
        from repro.api.adapters import BatchClaSPSegmenter

        return BatchClaSPSegmenter(config=self)


@dataclass(frozen=True)
class CompetitorConfig(SegmenterConfig):
    """Base class of the eight competitor configurations (paper Table 2).

    ``competitor`` is the :data:`repro.competitors.COMPETITOR_REGISTRY` name
    the fields are forwarded to; :meth:`build` constructs the competitor
    through that registry.  Like every config it inherits the optional
    ``data_policy`` dirty-data field (never forwarded to the competitor —
    the registry wraps the built detector instead).

    Example
    -------
    >>> from repro.api import FLOSSConfig
    >>> FLOSSConfig().competitor
    'FLOSS'
    """

    #: Name in the competitor registry (paper spelling).
    competitor: ClassVar[str] = ""

    def build(self):
        from repro.competitors import get_competitor

        return get_competitor(self.competitor, **self.as_kwargs())


@dataclass(frozen=True)
class FLOSSConfig(CompetitorConfig):
    """Configuration of FLOSS (corrected arc curve over a streaming 1-NN).

    Parameters
    ----------
    window_size:
        Points retained in the sliding window (minimum 20).
    subsequence_width:
        Matrix-profile subsequence width (minimum 3).
    threshold:
        Report a boundary when the corrected arc curve dips below this.
    exclusion_zone:
        Points around a detection excluded from re-detection
        (non-negative; ``None`` derives it from the width).
    stride:
        Evaluate the arc curve every ``stride`` points.
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when any field is out of range.

    Example
    -------
    >>> from repro.api import FLOSSConfig
    >>> FLOSSConfig(window_size=1000, subsequence_width=50).validate().detector
    'floss'
    """

    detector: ClassVar[str] = "floss"
    competitor: ClassVar[str] = "FLOSS"

    window_size: int = 10_000
    subsequence_width: int = 100
    threshold: float = 0.45
    exclusion_zone: int | None = None
    stride: int = 1

    def validate(self) -> "FLOSSConfig":
        check_positive_int(self.window_size, "window_size", minimum=20)
        check_positive_int(self.subsequence_width, "subsequence_width", minimum=3)
        check_positive_int(self.stride, "stride")
        if self.exclusion_zone is not None and int(self.exclusion_zone) < 0:
            raise ConfigurationError("exclusion_zone must be non-negative")
        return self


@dataclass(frozen=True)
class WindowConfig(CompetitorConfig):
    """Configuration of the Window segmenter (sliding two-window discrepancy).

    Parameters
    ----------
    window_size:
        Length of each of the two adjacent comparison windows (minimum 8).
    cost:
        Discrepancy cost name from ``COST_FUNCTIONS`` (e.g. ``"ar"``).
    threshold:
        Report a change point when the normalised cost gain exceeds this.
    exclusion_zone:
        Points around a detection excluded from re-detection
        (non-negative; ``None`` derives it from the window).
    stride:
        Evaluate the discrepancy every ``stride`` points.
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when any field is out of range or ``cost``
        is unknown.

    Example
    -------
    >>> from repro.api import WindowConfig
    >>> WindowConfig(window_size=300, cost="ar").validate().detector
    'window'
    """

    detector: ClassVar[str] = "window"
    competitor: ClassVar[str] = "Window"

    window_size: int = 500
    cost: str = "ar"
    threshold: float = 0.2
    exclusion_zone: int | None = None
    stride: int = 1

    def validate(self) -> "WindowConfig":
        check_positive_int(self.window_size, "window_size", minimum=8)
        check_positive_int(self.stride, "stride")
        from repro.competitors.costs import COST_FUNCTIONS

        if self.cost not in COST_FUNCTIONS:
            raise ConfigurationError(
                f"unknown cost {self.cost!r}; expected one of {sorted(COST_FUNCTIONS)}"
            )
        if self.exclusion_zone is not None and int(self.exclusion_zone) < 0:
            raise ConfigurationError("exclusion_zone must be non-negative")
        return self


@dataclass(frozen=True)
class BOCDConfig(CompetitorConfig):
    """Configuration of Bayesian Online Change Point Detection.

    Parameters
    ----------
    hazard:
        Constant hazard rate: the prior probability in ``(0, 1)`` of a
        change at any step (1/expected run length).
    run_length_drop:
        Report a change point when the most probable run length drops by at
        least this many steps.
    max_run_length:
        Truncate the run-length posterior at this length (minimum 10).
    mu0:
        Prior mean of the Normal-Inverse-Gamma observation model.
    kappa0:
        Prior pseudo-count of the mean (confidence in ``mu0``).
    alpha0:
        Prior shape of the variance.
    beta0:
        Prior scale of the variance.
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when ``hazard`` leaves ``(0, 1)`` or a
        run-length bound is not a positive integer.

    Example
    -------
    >>> from repro.api import BOCDConfig
    >>> BOCDConfig(hazard=1 / 100).validate().detector
    'bocd'
    """

    detector: ClassVar[str] = "bocd"
    competitor: ClassVar[str] = "BOCD"

    hazard: float = 1.0 / 250.0
    run_length_drop: int = 150
    max_run_length: int = 2_000
    mu0: float = 0.0
    kappa0: float = 1.0
    alpha0: float = 1.0
    beta0: float = 1.0

    def validate(self) -> "BOCDConfig":
        if not 0.0 < self.hazard < 1.0:
            raise ConfigurationError("hazard must lie in (0, 1)")
        check_positive_int(self.run_length_drop, "run_length_drop")
        check_positive_int(self.max_run_length, "max_run_length", minimum=10)
        return self


@dataclass(frozen=True)
class ChangeFinderConfig(CompetitorConfig):
    """Configuration of ChangeFinder (two-stage SDAR outlier scoring).

    Parameters
    ----------
    order:
        Order of the SDAR autoregressive models.
    discount:
        SDAR forgetting factor in ``(0, 1)`` (smaller = longer memory).
    smoothing:
        Width of the moving-average smoothing of the outlier scores.
    threshold:
        Report a change point when the second-stage score exceeds this.
    exclusion_zone:
        Points around a detection excluded from re-detection (non-negative).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when any field is out of range.

    Example
    -------
    >>> from repro.api import ChangeFinderConfig
    >>> ChangeFinderConfig(order=3, discount=0.02).validate().detector
    'change-finder'
    """

    detector: ClassVar[str] = "change-finder"
    competitor: ClassVar[str] = "ChangeFinder"

    order: int = 5
    discount: float = 0.01
    smoothing: int = 7
    threshold: float = 5.0
    exclusion_zone: int = 200

    def validate(self) -> "ChangeFinderConfig":
        check_positive_int(self.order, "order")
        if not 0.0 < self.discount < 1.0:
            raise ConfigurationError("discount must lie in (0, 1)")
        check_positive_int(self.smoothing, "smoothing")
        if int(self.exclusion_zone) < 0:
            raise ConfigurationError("exclusion_zone must be non-negative")
        return self


@dataclass(frozen=True)
class NEWMAConfig(CompetitorConfig):
    """Configuration of NEWMA (no-prior-knowledge EWMA with random features).

    Parameters
    ----------
    fast_forgetting:
        Forgetting factor of the fast EWMA (must exceed ``slow_forgetting``
        and be at most 1).
    slow_forgetting:
        Forgetting factor of the slow EWMA (strictly positive).
    embedding_size:
        Time-delay embedding dimension each observation is lifted to.
    n_features:
        Number of random Fourier features of the embedding.
    quantile:
        Adaptive-threshold quantile in ``[0, 1]`` over the recent statistic.
    threshold_window:
        Number of recent statistics the adaptive threshold is computed over.
    exclusion_zone:
        Points around a detection excluded from re-detection (non-negative).
    random_state:
        Seed of the random-feature generator (``None`` = nondeterministic).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when the forgetting factors are not ordered
        ``0 < slow < fast <= 1`` or any size is out of range.

    Example
    -------
    >>> from repro.api import NEWMAConfig
    >>> NEWMAConfig(fast_forgetting=0.1, slow_forgetting=0.02).validate().detector
    'newma'
    """

    detector: ClassVar[str] = "newma"
    competitor: ClassVar[str] = "NEWMA"

    fast_forgetting: float = 0.05
    slow_forgetting: float = 0.01
    embedding_size: int = 20
    n_features: int = 50
    quantile: float = 1.0
    threshold_window: int = 500
    exclusion_zone: int = 200
    random_state: int | None = 42

    def validate(self) -> "NEWMAConfig":
        if not 0.0 < self.slow_forgetting < self.fast_forgetting <= 1.0:
            raise ConfigurationError("require 0 < slow_forgetting < fast_forgetting <= 1")
        check_positive_int(self.embedding_size, "embedding_size")
        check_positive_int(self.n_features, "n_features")
        check_probability(self.quantile, "quantile")
        check_positive_int(self.threshold_window, "threshold_window")
        if int(self.exclusion_zone) < 0:
            raise ConfigurationError("exclusion_zone must be non-negative")
        return self


@dataclass(frozen=True)
class ADWINConfig(CompetitorConfig):
    """Configuration of ADWIN (adaptive windowing drift detection).

    Parameters
    ----------
    delta:
        Confidence parameter in ``(0, 1)`` of the Hoeffding cut test
        (smaller = fewer, more confident detections).
    max_buckets_per_level:
        Bucket capacity per exponential-histogram level (minimum 2).
    check_interval:
        Run the cut test every this many observations.
    min_window:
        Minimum window length before cuts are considered (minimum 4).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when ``delta`` leaves ``(0, 1)`` or a size
        is out of range.

    Example
    -------
    >>> from repro.api import ADWINConfig
    >>> ADWINConfig(delta=0.002).validate().detector
    'adwin'
    """

    detector: ClassVar[str] = "adwin"
    competitor: ClassVar[str] = "ADWIN"

    delta: float = 0.01
    max_buckets_per_level: int = 5
    check_interval: int = 32
    min_window: int = 300

    def validate(self) -> "ADWINConfig":
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError("delta must lie in (0, 1)")
        check_positive_int(self.max_buckets_per_level, "max_buckets_per_level", minimum=2)
        check_positive_int(self.check_interval, "check_interval")
        check_positive_int(self.min_window, "min_window", minimum=4)
        return self


@dataclass(frozen=True)
class DDMConfig(CompetitorConfig):
    """Configuration of DDM (drift detection over a binarised error stream).

    Parameters
    ----------
    warning_factor:
        Standard deviations above the running minimum error that raise the
        warning state.
    drift_factor:
        Standard deviations that report a drift (must exceed
        ``warning_factor``).
    min_observations:
        Observations required before the error statistics are trusted.
    predictor_order:
        Order of the autoregressive predictor whose mistakes form the
        binary error stream.
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when ``drift_factor`` does not exceed
        ``warning_factor`` or a count is not a positive integer.

    Example
    -------
    >>> from repro.api import DDMConfig
    >>> DDMConfig(warning_factor=2.0, drift_factor=3.0).validate().detector
    'ddm'
    """

    detector: ClassVar[str] = "ddm"
    competitor: ClassVar[str] = "DDM"

    warning_factor: float = 2.0
    drift_factor: float = 20.0
    min_observations: int = 30
    predictor_order: int = 10

    def validate(self) -> "DDMConfig":
        if self.drift_factor <= self.warning_factor:
            raise ConfigurationError("drift_factor must exceed warning_factor")
        check_positive_int(self.min_observations, "min_observations")
        check_positive_int(self.predictor_order, "predictor_order")
        return self


@dataclass(frozen=True)
class HDDMConfig(CompetitorConfig):
    """Configuration of HDDM-A (Hoeffding-bound drift detection, averages).

    Parameters
    ----------
    drift_confidence:
        Hoeffding-bound confidence that reports a drift (must be below
        ``warning_confidence``).
    warning_confidence:
        Confidence that raises the warning state (in ``(0, 1)``).
    predictor_order:
        Order of the autoregressive predictor producing the error stream.
    value_range:
        Assumed range of the monitored values in the Hoeffding bound.
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when the confidences are not ordered
        ``0 < drift < warning < 1``.

    Example
    -------
    >>> from repro.api import HDDMConfig
    >>> HDDMConfig(drift_confidence=1e-5).validate().detector
    'hddm'
    """

    detector: ClassVar[str] = "hddm"
    competitor: ClassVar[str] = "HDDM"

    drift_confidence: float = 1e-6
    warning_confidence: float = 1e-3
    predictor_order: int = 10
    value_range: float = 6.0

    def validate(self) -> "HDDMConfig":
        if not 0.0 < self.drift_confidence < self.warning_confidence < 1.0:
            raise ConfigurationError("require 0 < drift_confidence < warning_confidence < 1")
        check_positive_int(self.predictor_order, "predictor_order")
        return self


@dataclass(frozen=True)
class HDDMWConfig(HDDMConfig):
    """Configuration of HDDM-W (the EWMA-weighted variant).

    Inherits the :class:`HDDMConfig` fields — ``drift_confidence``,
    ``warning_confidence``, ``predictor_order`` and ``value_range`` — and
    adds the EWMA weight.

    Parameters
    ----------
    ``lambda_``:
        EWMA weight in ``(0, 1)`` of the most recent error (trailing
        underscore because the bare keyword is reserved).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when ``lambda_`` leaves ``(0, 1)`` or an
        inherited confidence is out of order.

    Example
    -------
    >>> from repro.api import HDDMWConfig
    >>> HDDMWConfig(lambda_=0.1).validate().detector
    'hddm-w'
    """

    detector: ClassVar[str] = "hddm-w"
    competitor: ClassVar[str] = "HDDM-W"

    lambda_: float = 0.05

    def validate(self) -> "HDDMWConfig":
        super().validate()
        if not 0.0 < self.lambda_ < 1.0:
            raise ConfigurationError("lambda_ must lie in (0, 1)")
        return self


@dataclass(frozen=True)
class PageHinkleyConfig(CompetitorConfig):
    """Configuration of the Page-Hinkley cumulative-deviation test.

    Parameters
    ----------
    delta:
        Magnitude tolerance subtracted from each deviation before it is
        accumulated.
    threshold:
        Report a change point when the cumulative deviation exceeds this
        (strictly positive).
    min_observations:
        Observations required before the test may fire.
    two_sided:
        Track deviations in both directions (``False`` = increases only).
    data_policy:
        Optional dirty-data policy (:class:`repro.api.DataPolicy` or
        ``None``); a non-reject policy makes :func:`repro.api.create` wrap
        the detector in a sanitizing pre-pass.

    Raises
    ------
    ConfigurationError
        From :meth:`validate`, when ``threshold`` is not positive or
        ``min_observations`` is not a positive integer.

    Example
    -------
    >>> from repro.api import PageHinkleyConfig
    >>> PageHinkleyConfig(threshold=30.0).validate().detector
    'page-hinkley'
    """

    detector: ClassVar[str] = "page-hinkley"
    competitor: ClassVar[str] = "PageHinkley"

    delta: float = 0.005
    threshold: float = 50.0
    min_observations: int = 30
    two_sided: bool = True

    def validate(self) -> "PageHinkleyConfig":
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        check_positive_int(self.min_observations, "min_observations")
        return self
