"""Shared-nothing process-pool execution of the evaluation grid (§4.3-4.4 at scale).

The paper streams ClaSS and eight competitors over whole benchmark
collections; every method x dataset cell is an independent job (a fresh
segmenter, one series, one score), which makes the grid embarrassingly
parallel.  :func:`evaluate_methods` fans those cells out over a pool of
worker processes:

* each cell becomes a picklable :class:`GridTask` built from the factory
  registry of :mod:`repro.evaluation.runner` (the built-in factories are
  plain dataclasses, so they cross the process boundary unchanged),
* tasks are dispatched in contiguous chunks to amortise the per-submission
  pickling overhead,
* results are re-ordered by task index, so the returned
  :class:`~repro.evaluation.runner.ExperimentResult` lists its records in
  exactly the order the sequential path produces them, and the records
  themselves are bit-identical to a sequential run (wall-clock fields aside,
  which are measured per cell *inside* the worker so the Figures 6-7
  runtime/throughput numbers stay honest),
* per-worker wall-clock and throughput accounting is aggregated into a
  :class:`GridExecutionStats` attached to the result.

``n_workers <= 1`` falls back to the sequential runner, which keeps the
function a drop-in replacement for :func:`~repro.evaluation.runner.run_experiment`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.datasets.dataset import TimeSeriesDataset
from repro.evaluation.runner import (
    EvaluationRecord,
    ExperimentResult,
    MethodFactory,
    run_experiment,
    run_method_on_dataset,
)
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_picklable


@dataclass(frozen=True)
class GridTask:
    """One picklable method x dataset cell of the evaluation grid."""

    index: int
    method: str
    factory: MethodFactory
    dataset: TimeSeriesDataset


@dataclass
class WorkerStats:
    """Wall-clock and throughput accounting of one worker process."""

    worker: int
    n_tasks: int = 0
    busy_seconds: float = 0.0
    n_timepoints: int = 0

    @property
    def throughput(self) -> float:
        """Observations streamed per busy second by this worker."""
        if self.busy_seconds <= 0:
            return float("inf")
        return self.n_timepoints / self.busy_seconds


@dataclass
class GridExecutionStats:
    """Aggregated accounting of one parallel grid execution."""

    n_workers: int
    n_tasks: int
    wall_seconds: float
    workers: list[WorkerStats] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        """Total time spent streaming across all workers."""
        return sum(worker.busy_seconds for worker in self.workers)

    @property
    def speedup(self) -> float:
        """Aggregate busy time over wall time — the achieved parallel speedup."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.busy_seconds / self.wall_seconds

    def as_rows(self) -> list[dict]:
        """Per-worker rows for the report writers."""
        return [
            {
                "worker": stats.worker,
                "tasks": stats.n_tasks,
                "busy_s": round(stats.busy_seconds, 3),
                "points_per_s": round(stats.throughput, 1),
            }
            for stats in self.workers
        ]


def build_grid_tasks(
    methods: dict[str, MethodFactory], datasets: Sequence[TimeSeriesDataset]
) -> list[GridTask]:
    """Enumerate the grid dataset-major, mirroring the sequential runner order."""
    tasks: list[GridTask] = []
    for dataset in datasets:
        for method_name, factory in methods.items():
            tasks.append(GridTask(len(tasks), method_name, factory, dataset))
    return tasks


def _check_picklable(methods: dict[str, MethodFactory]) -> None:
    """Reject factories that cannot cross the process boundary, by name."""
    for method_name, factory in methods.items():
        check_picklable(
            factory,
            f"method factory {method_name!r}",
            remedy="run with n_workers=1 (see repro.evaluation.runner.CompetitorFactory)",
        )


def _run_task_chunk(tasks: list[GridTask]) -> list[tuple[int, int, float, EvaluationRecord]]:
    """Worker entry point: stream one chunk of grid cells, tagging each result.

    Returns ``(task_index, worker_pid, busy_seconds, record)`` tuples; the
    index restores deterministic ordering in the parent and the pid/time pair
    feeds the per-worker accounting.
    """
    pid = os.getpid()
    results: list[tuple[int, int, float, EvaluationRecord]] = []
    for task in tasks:
        start = time.perf_counter()
        record = run_method_on_dataset(task.method, task.factory, task.dataset)
        results.append((task.index, pid, time.perf_counter() - start, record))
    return results


def _chunk_tasks(
    tasks: list[GridTask], n_workers: int, chunksize: int | None
) -> list[list[GridTask]]:
    """Cut the task list into contiguous dispatch chunks.

    The default chunk size targets about four chunks per worker: large enough
    to amortise submission overhead, small enough to rebalance when cell
    runtimes are skewed (ClaSS cells dominate competitor cells).
    """
    if chunksize is None:
        chunksize = max(1, len(tasks) // (n_workers * 4))
    else:
        if chunksize < 1:
            raise ConfigurationError("chunksize must be a positive integer")
    return [tasks[start : start + chunksize] for start in range(0, len(tasks), chunksize)]


def evaluate_methods(
    methods: dict[str, MethodFactory],
    datasets: Sequence[TimeSeriesDataset],
    n_workers: int | None = None,
    chunksize: int | None = None,
    verbose: bool = False,
) -> ExperimentResult:
    """Evaluate every method on every dataset, optionally on a process pool.

    Parameters
    ----------
    methods:
        Method name -> factory mapping (see
        :func:`~repro.evaluation.runner.default_method_factories`).  For
        parallel runs every factory must be picklable.
    datasets:
        The annotated series to stream.
    n_workers:
        Worker processes.  ``None`` or ``1`` runs sequentially (identical to
        :func:`~repro.evaluation.runner.run_experiment`); values below one are
        rejected.
    chunksize:
        Tasks dispatched per pool submission (default: grid size divided by
        four times the worker count).
    verbose:
        Print one line per completed record (sequential path only).

    Returns
    -------
    ExperimentResult
        Records in dataset-major order — the exact order and content of the
        sequential path — with :attr:`~repro.evaluation.runner.ExperimentResult.grid_stats`
        populated for parallel runs.
    """
    if not methods:
        raise ConfigurationError("at least one method factory is required")
    if n_workers is not None and n_workers < 1:
        raise ConfigurationError("n_workers must be a positive integer")
    if n_workers is None or n_workers == 1:
        return run_experiment(methods, datasets, verbose=verbose)

    _check_picklable(methods)
    tasks = build_grid_tasks(methods, datasets)
    chunks = _chunk_tasks(tasks, n_workers, chunksize)

    indexed: dict[int, EvaluationRecord] = {}
    workers: dict[int, WorkerStats] = {}
    wall_start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for chunk_results in pool.map(_run_task_chunk, chunks):
            for index, pid, busy_seconds, record in chunk_results:
                indexed[index] = record
                stats = workers.setdefault(pid, WorkerStats(worker=pid))
                stats.n_tasks += 1
                stats.busy_seconds += busy_seconds
                stats.n_timepoints += record.n_timepoints
    wall_seconds = time.perf_counter() - wall_start

    result = ExperimentResult([indexed[index] for index in range(len(tasks))])
    result.grid_stats = GridExecutionStats(
        n_workers=n_workers,
        n_tasks=len(tasks),
        wall_seconds=wall_seconds,
        workers=[workers[pid] for pid in sorted(workers)],
    )
    return result
