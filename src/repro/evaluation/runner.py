"""Streaming experiment runner (paper §4.1, §4.3).

The runner simulates the streaming setting exactly as the paper does: every
series is replayed one observation at a time into a freshly constructed
segmenter, the reported change points are collected, and the segmentation is
scored with Covering against the annotations.  Wall-clock time and throughput
are recorded alongside so the same run feeds the accuracy tables (Table 3,
Figure 5) and the runtime/throughput figures (Figures 6-7).

Because methods need per-dataset configuration (ClaSS caps its window at the
series length, FLOSS takes the annotated subsequence width, Window uses ten
times that width), methods are supplied as *factories*: callables receiving
the dataset and returning a ready-to-stream segmenter.
:func:`default_method_factories` builds the paper-configured factories for
ClaSS and all eight competitors.

All built-in factories are plain picklable objects (not closures), so every
method x dataset cell of the grid can be shipped to a worker process by the
process-pool executor in :mod:`repro.evaluation.parallel`;
:func:`run_experiment` accepts ``n_workers`` and delegates to it.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.api import ClaSSConfig, FLOSSConfig, WindowConfig, create
from repro.core.class_segmenter import ClaSS, capped_window_size
from repro.datasets.dataset import TimeSeriesDataset
from repro.evaluation.covering import covering_score
from repro.evaluation.metrics import change_point_f1
from repro.utils.exceptions import ConfigurationError


class SupportsStreaming(Protocol):
    """Structural type shared by ClaSS and every competitor."""

    def update(self, value: float) -> int | None:  # pragma: no cover - protocol
        ...

    @property
    def change_points(self) -> np.ndarray:  # pragma: no cover - protocol
        ...


#: A method factory builds a fresh segmenter configured for one dataset.
MethodFactory = Callable[[TimeSeriesDataset], SupportsStreaming]


@dataclass
class EvaluationRecord:
    """Outcome of streaming one method over one dataset."""

    method: str
    dataset: str
    collection: str
    n_timepoints: int
    n_true_change_points: int
    n_predicted_change_points: int
    covering: float
    f1: float
    runtime_seconds: float
    throughput: float
    predicted_change_points: np.ndarray
    detection_times: np.ndarray

    def as_row(self) -> dict:
        """Flat dictionary representation used by the report writers."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "collection": self.collection,
            "n_timepoints": self.n_timepoints,
            "n_true_cps": self.n_true_change_points,
            "n_pred_cps": self.n_predicted_change_points,
            "covering": round(self.covering, 4),
            "f1": round(self.f1, 4),
            "runtime_s": round(self.runtime_seconds, 4),
            "throughput": round(self.throughput, 1),
        }


@dataclass
class ExperimentResult:
    """All records of one experiment, with aggregation helpers."""

    records: list[EvaluationRecord] = field(default_factory=list)
    #: Per-worker accounting of a parallel grid run (None for sequential runs);
    #: a :class:`repro.evaluation.parallel.GridExecutionStats` when set.
    grid_stats: object | None = None

    @property
    def methods(self) -> list[str]:
        """Method names in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.method not in seen:
                seen.append(record.method)
        return seen

    @property
    def datasets(self) -> list[str]:
        """Dataset names in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.dataset not in seen:
                seen.append(record.dataset)
        return seen

    def filter(
        self, collection: str | None = None, method: str | None = None
    ) -> "ExperimentResult":
        """Sub-result restricted to one collection and/or one method."""
        records = [
            r
            for r in self.records
            if (collection is None or r.collection == collection)
            and (method is None or r.method == method)
        ]
        return ExperimentResult(records)

    def score_matrix(self, metric: str = "covering") -> tuple[np.ndarray, list[str], list[str]]:
        """Datasets x methods matrix of a metric, plus the row/column labels."""
        methods = self.methods
        datasets = self.datasets
        matrix = np.full((len(datasets), len(methods)), np.nan)
        for record in self.records:
            row = datasets.index(record.dataset)
            col = methods.index(record.method)
            matrix[row, col] = getattr(record, metric)
        return matrix, datasets, methods

    def summary_by_method(self, metric: str = "covering") -> dict[str, dict[str, float]]:
        """Mean / median / std of a metric per method (Table 3 style)."""
        summary: dict[str, dict[str, float]] = {}
        for method in self.methods:
            values = np.array([getattr(r, metric) for r in self.records if r.method == method])
            summary[method] = {
                "mean": float(np.mean(values)),
                "median": float(np.median(values)),
                "std": float(np.std(values)),
                "n": int(values.shape[0]),
            }
        return summary

    def total_runtime_by_method(self) -> dict[str, float]:
        """Total wall-clock seconds spent per method (Figure 6 top-left)."""
        totals: dict[str, float] = {}
        for record in self.records:
            totals[record.method] = totals.get(record.method, 0.0) + record.runtime_seconds
        return totals

    def mean_throughput_by_method(self) -> dict[str, float]:
        """Average points/second per method (Figure 6 bottom-left)."""
        result: dict[str, float] = {}
        for method in self.methods:
            values = [r.throughput for r in self.records if r.method == method]
            result[method] = float(np.mean(values)) if values else 0.0
        return result


def stream_dataset(
    segmenter: SupportsStreaming,
    dataset: TimeSeriesDataset,
    chunk_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Replay ``dataset`` through ``segmenter`` via the chunked ingestion path.

    Segmenters exposing the batch contract (``process(values, chunk_size=...)``,
    i.e. ClaSS and every competitor) receive the series in chunks — which is
    behaviour-identical to point-wise streaming but substantially faster;
    anything else is fed one observation at a time.  Returns the predicted
    change points, the detection times and the elapsed wall-clock seconds.
    """
    values = dataset.values
    start = time.perf_counter()
    if hasattr(segmenter, "process"):
        if chunk_size is None:
            segmenter.process(values)
        else:
            segmenter.process(values, chunk_size=chunk_size)
    else:
        for value in values:
            segmenter.update(float(value))
    if hasattr(segmenter, "finalise"):
        segmenter.finalise()
    elapsed = time.perf_counter() - start
    change_points = np.asarray(segmenter.change_points, dtype=np.int64)
    if hasattr(segmenter, "detection_times"):
        detection_times = np.asarray(segmenter.detection_times, dtype=np.int64)
    elif hasattr(segmenter, "reports"):
        detection_times = np.asarray(
            [report.detected_at for report in segmenter.reports], dtype=np.int64
        )
    else:
        detection_times = change_points.copy()
    if detection_times.shape[0] != change_points.shape[0]:
        detection_times = detection_times[: change_points.shape[0]]
    return change_points, detection_times, elapsed


def run_method_on_dataset(
    method_name: str,
    factory: MethodFactory,
    dataset: TimeSeriesDataset,
) -> EvaluationRecord:
    """Build, stream and score one method on one dataset."""
    segmenter = factory(dataset)
    predicted, detection_times, elapsed = stream_dataset(segmenter, dataset)
    covering = covering_score(dataset.change_points, predicted, dataset.n_timepoints)
    f1 = change_point_f1(
        dataset.change_points, predicted, dataset.n_timepoints, margin_fraction=0.02
    )
    throughput = dataset.n_timepoints / elapsed if elapsed > 0 else float("inf")
    return EvaluationRecord(
        method=method_name,
        dataset=dataset.name,
        collection=dataset.collection,
        n_timepoints=dataset.n_timepoints,
        n_true_change_points=int(dataset.change_points.shape[0]),
        n_predicted_change_points=int(predicted.shape[0]),
        covering=covering,
        f1=f1,
        runtime_seconds=elapsed,
        throughput=throughput,
        predicted_change_points=predicted,
        detection_times=detection_times,
    )


def run_experiment(
    methods: dict[str, MethodFactory],
    datasets: Sequence[TimeSeriesDataset],
    verbose: bool = False,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Stream every dataset through every method and collect all records.

    With ``n_workers`` greater than one, the method x dataset grid is fanned
    out over a shared-nothing process pool (see
    :func:`repro.evaluation.parallel.evaluate_methods`); the records are
    identical to the sequential path and arrive in the same order.
    """
    if not methods:
        raise ConfigurationError("at least one method factory is required")
    if n_workers is not None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be a positive integer")
        if n_workers > 1:
            from repro.evaluation.parallel import evaluate_methods

            return evaluate_methods(methods, datasets, n_workers=n_workers, verbose=verbose)
    result = ExperimentResult()
    for dataset in datasets:
        for method_name, factory in methods.items():
            record = run_method_on_dataset(method_name, factory, dataset)
            result.records.append(record)
            if verbose:  # pragma: no cover - console output
                print(
                    f"  {method_name:14s} {dataset.name:24s} covering={record.covering:.3f} "
                    f"({record.runtime_seconds:.2f}s)"
                )
    return result


# --------------------------------------------------------------------------- #
# paper-configured method factories
# --------------------------------------------------------------------------- #


def _dataset_width(dataset: TimeSeriesDataset, fallback: int = 50) -> int:
    """Annotated subsequence width of a dataset, with a sensible fallback."""
    width = dataset.subsequence_width_hint
    if width is None:
        width = fallback
    return max(10, min(int(width), dataset.n_timepoints // 8))


@dataclass(frozen=True)
class ClaSSFactory:
    """Picklable factory producing paper-configured ClaSS instances per dataset.

    The per-dataset policy (``window_size`` capped at half of the series
    length so the subsequence width can always be learned before the stream
    ends, optionally the annotated width) is resolved into a
    :class:`repro.api.ClaSSConfig`, and construction goes through the
    registry — the single construction path of the unified API.
    """

    window_size: int = 10_000
    scoring_interval: int = 1
    use_annotated_width: bool = False
    kernel_backend: str = "auto"
    class_kwargs: dict = field(default_factory=dict)

    def config_for(self, dataset: TimeSeriesDataset) -> ClaSSConfig:
        """The effective, dataset-specific config this factory builds from."""
        capped_window = capped_window_size(self.window_size, dataset.n_timepoints)
        width = _dataset_width(dataset) if self.use_annotated_width else None
        if width is not None:
            width = min(width, capped_window // 4)
        return ClaSSConfig(
            window_size=capped_window,
            subsequence_width=width,
            scoring_interval=self.scoring_interval,
            kernel_backend=self.kernel_backend,
            **self.class_kwargs,
        )

    def __call__(self, dataset: TimeSeriesDataset) -> ClaSS:
        return create("class", self.config_for(dataset))


@dataclass(frozen=True)
class FLOSSFactory:
    """Picklable factory producing paper-configured FLOSS instances per dataset."""

    window_size: int = 10_000
    stride: int = 1

    def config_for(self, dataset: TimeSeriesDataset) -> FLOSSConfig:
        """The effective, dataset-specific config this factory builds from."""
        width = _dataset_width(dataset)
        return FLOSSConfig(
            window_size=int(min(self.window_size, max(dataset.n_timepoints // 2, 4 * width + 10))),
            subsequence_width=width,
            stride=self.stride,
        )

    def __call__(self, dataset: TimeSeriesDataset):
        return create("floss", self.config_for(dataset))


@dataclass(frozen=True)
class WindowFactory:
    """Picklable factory producing Window segmenters sized from the annotation."""

    def config_for(self, dataset: TimeSeriesDataset) -> WindowConfig:
        """The effective, dataset-specific config this factory builds from."""
        width = _dataset_width(dataset)
        return WindowConfig(window_size=min(10 * width, max(dataset.n_timepoints // 4, 40)))

    def __call__(self, dataset: TimeSeriesDataset):
        return create("window", self.config_for(dataset))


@dataclass(frozen=True)
class CompetitorFactory:
    """Picklable factory building one registered detector with fixed kwargs.

    ``competitor`` is a :mod:`repro.api` registry key; the paper spellings
    (``"BOCD"``, ``"ChangeFinder"``, ...) are accepted aliases.
    """

    competitor: str
    kwargs: dict = field(default_factory=dict)

    def __call__(self, dataset: TimeSeriesDataset):
        return create(self.competitor, **self.kwargs)


def class_factory(
    window_size: int = 10_000,
    scoring_interval: int = 1,
    use_annotated_width: bool = False,
    **kwargs,
) -> MethodFactory:
    """Deprecated alias for constructing a :class:`ClaSSFactory`.

    Build the factory dataclass directly (or go through
    ``repro.api.create("class", config)`` for a fixed configuration); this
    wrapper predates the typed-config registry and will be removed.
    """
    warnings.warn(
        "class_factory is deprecated; construct ClaSSFactory(...) directly or use "
        "repro.api.create('class', ClaSSConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return ClaSSFactory(
        window_size=window_size,
        scoring_interval=scoring_interval,
        use_annotated_width=use_annotated_width,
        class_kwargs=dict(kwargs),
    )


def default_method_factories(
    window_size: int = 10_000,
    scoring_interval: int = 1,
    floss_stride: int = 1,
    include: Sequence[str] | None = None,
    class_kwargs: dict | None = None,
    kernel_backend: str = "auto",
) -> dict[str, MethodFactory]:
    """Paper-configured factories for ClaSS and the eight competitors.

    Every returned factory is picklable, so the dictionary can be handed to
    the parallel grid executor as-is.

    Parameters
    ----------
    window_size:
        Sliding window size for ClaSS and FLOSS (paper: 10k).
    scoring_interval, floss_stride:
        Optional strides for the two expensive profile-based methods so the
        pure-Python evaluation stays tractable on large suites.
    include:
        Optional subset of method names.
    class_kwargs:
        Extra keyword arguments forwarded to ClaSS.
    kernel_backend:
        Kernel backend for the ClaSS k-NN hot paths (scores are identical
        for every backend; ``"auto"`` picks the fastest available).
    """
    class_kwargs = dict(class_kwargs or {})

    factories: dict[str, MethodFactory] = {
        "ClaSS": ClaSSFactory(
            window_size=window_size,
            scoring_interval=scoring_interval,
            kernel_backend=kernel_backend,
            class_kwargs=class_kwargs,
        ),
        "FLOSS": FLOSSFactory(window_size=window_size, stride=floss_stride),
        "Window": WindowFactory(),
        "BOCD": CompetitorFactory("BOCD"),
        "ChangeFinder": CompetitorFactory("ChangeFinder"),
        "NEWMA": CompetitorFactory("NEWMA"),
        "ADWIN": CompetitorFactory("ADWIN"),
        "DDM": CompetitorFactory("DDM"),
        "HDDM": CompetitorFactory("HDDM"),
    }
    if include is not None:
        factories = {name: factories[name] for name in include}
    return factories
