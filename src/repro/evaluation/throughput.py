"""Throughput and update-latency measurement helpers (paper §4.4).

The paper reports two runtime views: the total wall-clock time spent per
method across all series versus segmentation quality (Figure 6 top left), and
the standalone data throughput in observations per second (Figure 6 bottom
left), plus the throughput/accuracy trade-off across sliding window sizes
(Figure 6 right).  The helpers here measure per-update latencies and
aggregate throughput for any object implementing the streaming ``update``
protocol, independent of the evaluation runner.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np


@dataclass
class ThroughputReport:
    """Throughput statistics of one streaming run."""

    method: str
    n_points: int
    total_seconds: float
    mean_points_per_second: float
    peak_points_per_second: float
    mean_update_latency: float
    p95_update_latency: float

    def as_row(self) -> dict:
        """Flat dictionary for the report writers."""
        return {
            "method": self.method,
            "n_points": self.n_points,
            "total_s": round(self.total_seconds, 3),
            "points_per_s": round(self.mean_points_per_second, 1),
            "peak_points_per_s": round(self.peak_points_per_second, 1),
            "mean_latency_ms": round(self.mean_update_latency * 1e3, 4),
            "p95_latency_ms": round(self.p95_update_latency * 1e3, 4),
        }


def measure_throughput(
    segmenter,
    values: np.ndarray,
    method_name: str | None = None,
    chunk_size: int = 500,
) -> ThroughputReport:
    """Stream ``values`` through ``segmenter`` and measure throughput.

    Peak throughput is the best rate observed over any single chunk of
    ``chunk_size`` consecutive observations (the paper reports ClaSS's peak
    rate separately because its scoring cost drops right after a change point
    is emitted).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    chunk_rates: list[float] = []
    latencies = np.empty(n, dtype=np.float64)

    total_start = time.perf_counter()
    position = 0
    while position < n:
        chunk = values[position : position + chunk_size]
        chunk_start = time.perf_counter()
        for offset, value in enumerate(chunk):
            update_start = time.perf_counter()
            segmenter.update(float(value))
            latencies[position + offset] = time.perf_counter() - update_start
        chunk_elapsed = time.perf_counter() - chunk_start
        if chunk_elapsed > 0:
            chunk_rates.append(chunk.shape[0] / chunk_elapsed)
        position += chunk.shape[0]
    total_elapsed = time.perf_counter() - total_start

    return ThroughputReport(
        method=method_name or type(segmenter).__name__,
        n_points=n,
        total_seconds=total_elapsed,
        mean_points_per_second=n / total_elapsed if total_elapsed > 0 else float("inf"),
        peak_points_per_second=float(max(chunk_rates)) if chunk_rates else float("inf"),
        mean_update_latency=float(latencies.mean()) if n else 0.0,
        p95_update_latency=float(np.percentile(latencies, 95)) if n else 0.0,
    )


def measure_batch_throughput(
    segmenter,
    values: np.ndarray,
    chunk_size: int = 1_024,
    method_name: str | None = None,
) -> ThroughputReport:
    """Stream ``values`` through ``segmenter.process`` in chunks and measure throughput.

    The chunked counterpart of :func:`measure_throughput`: one ``process``
    call per ``chunk_size`` observations, so the measured rate includes the
    amortisation the batch ingestion path provides.  Latency statistics are
    per-chunk latencies divided by the chunk length (the per-point cost a
    downstream consumer observes once the chunk has arrived).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    chunk_rates: list[float] = []
    per_point_latencies: list[float] = []

    total_start = time.perf_counter()
    position = 0
    while position < n:
        chunk = values[position : position + chunk_size]
        chunk_start = time.perf_counter()
        segmenter.process(chunk, chunk_size=chunk_size)
        chunk_elapsed = time.perf_counter() - chunk_start
        if chunk_elapsed > 0:
            chunk_rates.append(chunk.shape[0] / chunk_elapsed)
        per_point_latencies.extend([chunk_elapsed / chunk.shape[0]] * chunk.shape[0])
        position += chunk.shape[0]
    total_elapsed = time.perf_counter() - total_start

    latencies = np.asarray(per_point_latencies, dtype=np.float64)
    return ThroughputReport(
        method=method_name or f"{type(segmenter).__name__} (chunk={chunk_size})",
        n_points=n,
        total_seconds=total_elapsed,
        mean_points_per_second=n / total_elapsed if total_elapsed > 0 else float("inf"),
        peak_points_per_second=float(max(chunk_rates)) if chunk_rates else float("inf"),
        mean_update_latency=float(latencies.mean()) if n else 0.0,
        p95_update_latency=float(np.percentile(latencies, 95)) if n else 0.0,
    )


def measure_scoring_latency(
    segmenter,
    values: np.ndarray,
    n_passes: int = 30,
    chunk_size: int = 1_024,
) -> float:
    """Mean seconds per forced ClaSP scoring pass after streaming ``values`` in.

    Streams ``values`` through ``segmenter.process`` (filling the sliding
    window and the k-NN tables), then times ``n_passes`` calls of
    ``segmenter.score_now()`` — the pure per-pass scoring cost a
    ``scoring_interval=1`` deployment pays on every observation, isolated
    from the k-NN update.  Used by ``benchmarks/bench_scoring_path.py`` to
    compare the ``cross_val_implementation`` scoring paths on identical
    streaming state.

    The timed passes mutate the segmenter: a pass that reports a change
    point shrinks the scored region, so later passes would measure a smaller
    problem (and the segmenter keeps the forced detections).  Pass
    change-free data — e.g. stationary noise — to measure a fixed region
    size; a warning is emitted if a change point fires mid-measurement.
    """
    values = np.asarray(values, dtype=np.float64)
    segmenter.process(values, chunk_size=chunk_size)
    reports_before = len(segmenter.reports)
    segmenter.score_now()  # warm the pass (lazy allocations, caches)
    start = time.perf_counter()
    for _ in range(n_passes):
        segmenter.score_now()
    elapsed = time.perf_counter() - start
    if len(segmenter.reports) != reports_before:
        warnings.warn(
            "a change point fired during the timed scoring passes; the scored "
            "region shrank mid-measurement, so the mean latency does not "
            "reflect a fixed region size (use change-free data)",
            RuntimeWarning,
            stacklevel=2,
        )
    return elapsed / n_passes


def measure_update_scaling(
    factory,
    window_sizes: list[int],
    values: np.ndarray,
    warmup: int = 200,
    measured_updates: int = 300,
) -> dict[int, float]:
    """Mean per-update latency of a method for several sliding window sizes.

    ``factory`` receives a window size and returns a fresh segmenter.  Used by
    the Table 2 complexity benchmark to show how per-point update cost grows
    with ``d`` for each method.
    """
    values = np.asarray(values, dtype=np.float64)
    results: dict[int, float] = {}
    for window_size in window_sizes:
        segmenter = factory(window_size)
        n_warm = min(warmup + window_size, values.shape[0] - measured_updates)
        for value in values[:n_warm]:
            segmenter.update(float(value))
        start = time.perf_counter()
        for value in values[n_warm : n_warm + measured_updates]:
            segmenter.update(float(value))
        elapsed = time.perf_counter() - start
        results[window_size] = elapsed / measured_updates
    return results
