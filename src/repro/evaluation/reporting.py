"""Plain-text and markdown report writers for the benchmark harness.

Every benchmark prints the rows / series of the paper table or figure it
reproduces; these helpers keep that output consistent and readable without
pulling in a plotting or dataframe dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(columns or rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dictionaries as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = "| " + " | ".join(map(str, columns)) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = "\n".join(
        "| " + " | ".join(render(row.get(column, "")) for column in columns) + " |" for row in rows
    )
    return "\n".join([header, separator, body])


def format_ranking(ordering: Iterable[tuple[str, float]], critical_difference: float) -> str:
    """Render a critical-difference ordering like the textual part of Figure 5."""
    lines = [f"critical difference (Nemenyi, alpha=0.05): {critical_difference:.3f}"]
    for position, (name, rank) in enumerate(ordering, start=1):
        lines.append(f"  {position}. {name:14s} mean rank {rank:.2f}")
    return "\n".join(lines)


def format_summary(summary: Mapping[str, Mapping[str, float]], metric: str = "covering") -> str:
    """Render a per-method mean/median/std summary (Table 3 style)."""
    rows = [
        {
            "method": method,
            "mean %": 100.0 * stats["mean"],
            "median %": 100.0 * stats["median"],
            "std %": 100.0 * stats["std"],
            "n": stats["n"],
        }
        for method, stats in sorted(summary.items(), key=lambda kv: -kv[1]["mean"])
    ]
    return format_table(rows, title=f"summary of {metric}", float_format="{:.1f}")
