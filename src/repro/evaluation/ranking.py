"""Rank aggregation and critical-difference statistics (paper §4.1, Figure 5).

The paper aggregates per-series Covering scores into mean ranks per method,
tests for overall differences with the Friedman test, and reports which
methods differ significantly using a Nemenyi two-tailed test at alpha = 0.05,
visualised as a critical difference (CD) diagram.  This module computes all of
those quantities numerically (the diagram itself is a plot; the benchmark
harness prints the rank ordering, the CD value and the groups of methods that
are not significantly different, which is the diagram's information content).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.exceptions import ValidationError

#: Critical values of the studentised range statistic q_alpha (alpha = 0.05)
#: divided by sqrt(2), indexed by the number of compared methods (2..12).
#: These are the standard constants used for Nemenyi CD diagrams (Demšar 2006).
_NEMENYI_Q_005 = {
    2: 1.959964,
    3: 2.343701,
    4: 2.569032,
    5: 2.727774,
    6: 2.849705,
    7: 2.948319,
    8: 3.030879,
    9: 3.101730,
    10: 3.163684,
    11: 3.218654,
    12: 3.268004,
}


def rank_scores(score_matrix: np.ndarray, higher_is_better: bool = True) -> np.ndarray:
    """Per-dataset ranks of every method (1 = best), averaging ties.

    Parameters
    ----------
    score_matrix:
        Array of shape ``(n_datasets, n_methods)``.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.ndim != 2:
        raise ValidationError("score_matrix must be 2-dimensional (datasets x methods)")
    oriented = -scores if higher_is_better else scores
    return np.apply_along_axis(stats.rankdata, 1, oriented)


def mean_ranks(score_matrix: np.ndarray, higher_is_better: bool = True) -> np.ndarray:
    """Mean rank per method across all datasets (lower = better)."""
    return rank_scores(score_matrix, higher_is_better).mean(axis=0)


def friedman_test(score_matrix: np.ndarray) -> tuple[float, float]:
    """Friedman chi-square statistic and p-value over the methods' scores."""
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.shape[1] < 3:
        raise ValidationError("the Friedman test needs at least three methods")
    statistic, p_value = stats.friedmanchisquare(*[scores[:, j] for j in range(scores.shape[1])])
    return float(statistic), float(p_value)


def nemenyi_critical_difference(n_methods: int, n_datasets: int, alpha: float = 0.05) -> float:
    """Critical difference of mean ranks for the two-tailed Nemenyi test."""
    if alpha != 0.05:
        raise ValidationError("only alpha = 0.05 critical values are tabulated")
    if n_methods < 2:
        raise ValidationError("need at least two methods")
    q = _NEMENYI_Q_005.get(n_methods)
    if q is None:
        # asymptotic approximation via the studentised range distribution
        q = stats.studentized_range.ppf(1 - alpha, n_methods, np.inf) / np.sqrt(2.0)
    return float(q * np.sqrt(n_methods * (n_methods + 1) / (6.0 * n_datasets)))


@dataclass
class CriticalDifferenceResult:
    """All numbers behind a critical-difference diagram."""

    method_names: list[str]
    mean_ranks: np.ndarray
    critical_difference: float
    friedman_statistic: float
    friedman_p_value: float
    cliques: list[list[str]]

    def ordering(self) -> list[tuple[str, float]]:
        """Methods sorted from best (lowest mean rank) to worst."""
        order = np.argsort(self.mean_ranks)
        return [(self.method_names[i], float(self.mean_ranks[i])) for i in order]

    def is_significantly_better(self, method_a: str, method_b: str) -> bool:
        """True when ``method_a``'s mean rank beats ``method_b``'s by more than the CD."""
        rank_a = self.mean_ranks[self.method_names.index(method_a)]
        rank_b = self.mean_ranks[self.method_names.index(method_b)]
        return bool(rank_b - rank_a > self.critical_difference)


def critical_difference_analysis(
    score_matrix: np.ndarray,
    method_names: list[str],
    higher_is_better: bool = True,
    alpha: float = 0.05,
) -> CriticalDifferenceResult:
    """Full CD-diagram analysis: mean ranks, Friedman test, CD, and cliques.

    Cliques are maximal groups of methods whose mean ranks all lie within one
    critical difference of each other — the "bars" of a CD diagram.
    """
    scores = np.asarray(score_matrix, dtype=np.float64)
    if scores.shape[1] != len(method_names):
        raise ValidationError("method_names must match the number of score columns")
    ranks = mean_ranks(scores, higher_is_better)
    cd = nemenyi_critical_difference(len(method_names), scores.shape[0], alpha)
    statistic, p_value = friedman_test(scores)

    order = np.argsort(ranks)
    cliques: list[list[str]] = []
    for start in range(len(order)):
        group = [method_names[order[start]]]
        for other in range(start + 1, len(order)):
            if ranks[order[other]] - ranks[order[start]] <= cd:
                group.append(method_names[order[other]])
        if len(group) > 1 and not any(set(group) <= set(existing) for existing in cliques):
            cliques.append(group)

    return CriticalDifferenceResult(
        method_names=list(method_names),
        mean_ranks=ranks,
        critical_difference=cd,
        friedman_statistic=statistic,
        friedman_p_value=p_value,
        cliques=cliques,
    )


def pairwise_wins(
    score_matrix: np.ndarray, method_names: list[str], higher_is_better: bool = True
) -> dict[tuple[str, str], tuple[int, int, int]]:
    """Win/tie/loss counts for every ordered method pair (paper §4.3)."""
    scores = np.asarray(score_matrix, dtype=np.float64)
    results: dict[tuple[str, str], tuple[int, int, int]] = {}
    for i, name_a in enumerate(method_names):
        for j, name_b in enumerate(method_names):
            if i == j:
                continue
            diff = scores[:, i] - scores[:, j]
            if not higher_is_better:
                diff = -diff
            wins = int(np.sum(diff > 1e-12))
            ties = int(np.sum(np.abs(diff) <= 1e-12))
            losses = int(np.sum(diff < -1e-12))
            results[(name_a, name_b)] = (wins, ties, losses)
    return results


def wins_and_ties_per_method(
    score_matrix: np.ndarray, method_names: list[str], higher_is_better: bool = True
) -> dict[str, int]:
    """Number of datasets where each method achieves the (possibly tied) best score."""
    scores = np.asarray(score_matrix, dtype=np.float64)
    best = scores.max(axis=1) if higher_is_better else scores.min(axis=1)
    counts = {}
    for j, name in enumerate(method_names):
        counts[name] = int(np.sum(np.abs(scores[:, j] - best) <= 1e-12))
    return counts
