"""Covering segmentation metric (paper §4.1, Eqn. 6; van den Burg & Williams).

The Covering score measures how well a predicted segmentation overlaps an
annotated one: every ground-truth segment contributes its best Jaccard overlap
with any predicted segment, weighted by its length.  It is a soft metric that
handles different numbers of segments (including the empty prediction, which
still scores the overlap of the single implicit segment).

All functions accept change points as arrays of offsets; the first change
point at 0 and the series end are implicit, following Definition 4.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.exceptions import ValidationError


def change_points_to_segments(
    change_points: Iterable[int], n_timepoints: int
) -> list[tuple[int, int]]:
    """Convert change point offsets into half-open (start, end) segments.

    Out-of-range and duplicate change points are dropped; the remainder is
    sorted, so predictions from any segmenter can be passed verbatim.
    """
    n_timepoints = int(n_timepoints)
    if n_timepoints < 1:
        raise ValidationError("n_timepoints must be positive")
    inside = sorted({int(cp) for cp in change_points if 0 < int(cp) < n_timepoints})
    boundaries = [0, *inside, n_timepoints]
    return [(boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)]


def interval_jaccard(a: tuple[int, int], b: tuple[int, int]) -> float:
    """Jaccard index of two half-open integer intervals."""
    intersection = max(0, min(a[1], b[1]) - max(a[0], b[0]))
    union = max(a[1], b[1]) - min(a[0], b[0])
    if union <= 0:
        return 0.0
    return intersection / union


def covering_score(
    true_change_points: Sequence[int] | np.ndarray,
    predicted_change_points: Sequence[int] | np.ndarray,
    n_timepoints: int,
) -> float:
    """Covering of the ground-truth segmentation by the predicted one (Eqn. 6).

    Returns a value in ``[0, 1]``; 1.0 means every annotated segment is
    exactly recovered by some predicted segment.
    """
    true_segments = change_points_to_segments(true_change_points, n_timepoints)
    predicted_segments = change_points_to_segments(predicted_change_points, n_timepoints)

    total = 0.0
    for segment in true_segments:
        weight = (segment[1] - segment[0]) / n_timepoints
        best = max(interval_jaccard(segment, candidate) for candidate in predicted_segments)
        total += weight * best
    return float(total)


def covering_matrix(
    true_change_points: Sequence[int],
    predicted_change_points: Sequence[int],
    n_timepoints: int,
) -> np.ndarray:
    """Full Jaccard matrix between true and predicted segments (for inspection)."""
    true_segments = change_points_to_segments(true_change_points, n_timepoints)
    predicted_segments = change_points_to_segments(predicted_change_points, n_timepoints)
    matrix = np.zeros((len(true_segments), len(predicted_segments)))
    for i, t in enumerate(true_segments):
        for j, p in enumerate(predicted_segments):
            matrix[i, j] = interval_jaccard(t, p)
    return matrix
