"""Additional segmentation quality metrics beyond Covering.

The paper's quantitative analysis is based on Covering; the use cases of §4.5
additionally discuss detection delay ("early streaming time series
segmentation").  This module provides the margin-based change point F1 score
common in the CPD literature, detection-delay statistics, and simple
prediction/annotation counting helpers used by the reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class ChangePointMatch:
    """Matching of predicted to annotated change points under a margin."""

    true_positives: int
    false_positives: int
    false_negatives: int
    matched_pairs: list[tuple[int, int]]

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def match_change_points(
    true_change_points: Sequence[int],
    predicted_change_points: Sequence[int],
    margin: int,
) -> ChangePointMatch:
    """Greedy one-to-one matching of predictions to annotations within ``margin``."""
    true_list = sorted(int(cp) for cp in true_change_points)
    predicted_list = sorted(int(cp) for cp in predicted_change_points)
    unmatched_true = set(range(len(true_list)))
    pairs: list[tuple[int, int]] = []
    for predicted in predicted_list:
        best_index, best_distance = None, margin + 1
        for index in unmatched_true:
            distance = abs(true_list[index] - predicted)
            if distance <= margin and distance < best_distance:
                best_index, best_distance = index, distance
        if best_index is not None:
            unmatched_true.remove(best_index)
            pairs.append((true_list[best_index], predicted))
    true_positives = len(pairs)
    return ChangePointMatch(
        true_positives=true_positives,
        false_positives=len(predicted_list) - true_positives,
        false_negatives=len(true_list) - true_positives,
        matched_pairs=pairs,
    )


def change_point_f1(
    true_change_points: Sequence[int],
    predicted_change_points: Sequence[int],
    n_timepoints: int,
    margin_fraction: float = 0.01,
) -> float:
    """Margin-based change point F1 (margin = ``margin_fraction`` of the length)."""
    margin = max(int(margin_fraction * n_timepoints), 1)
    return match_change_points(true_change_points, predicted_change_points, margin).f1


def detection_delays(
    true_change_points: Sequence[int],
    predicted_change_points: Sequence[int],
    detection_times: Sequence[int],
    margin: int,
) -> list[int]:
    """Delay between each matched annotated change point and its report time.

    Used by the early-segmentation use case (Figure 9): for every annotated
    change point matched by a prediction within ``margin``, the delay is the
    difference between the time the prediction was *reported* (not its
    location) and the annotated change point.
    """
    predicted = list(predicted_change_points)
    times = list(detection_times)
    delays: list[int] = []
    for true_cp in true_change_points:
        best_delay: int | None = None
        for cp, detected_at in zip(predicted, times):
            if abs(int(cp) - int(true_cp)) <= margin:
                delay = int(detected_at) - int(true_cp)
                if best_delay is None or delay < best_delay:
                    best_delay = delay
        if best_delay is not None:
            delays.append(best_delay)
    return delays


def mean_absolute_error_of_matched_cps(
    true_change_points: Sequence[int],
    predicted_change_points: Sequence[int],
    margin: int,
) -> float:
    """Mean location error over matched change points (NaN if none matched)."""
    match = match_change_points(true_change_points, predicted_change_points, margin)
    if not match.matched_pairs:
        return float("nan")
    errors = [abs(t - p) for t, p in match.matched_pairs]
    return float(np.mean(errors))
