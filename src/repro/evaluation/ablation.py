"""Ablation study harness for ClaSS's design choices (paper §4.2).

The paper varies seven groups of design choices on a 20% sample of the
benchmark series while fixing the remaining parameters to their defaults:

(a) sliding window size, (b) window size selection method, (c) similarity
measure, (d) number of neighbours k, (e) classification score,
(f) significance level and (g) resampling sample size.

:func:`run_ablation` sweeps any ClaSS constructor parameter over a list of
values, evaluates every configuration on the supplied datasets, and returns
per-value Covering statistics so the ablation benchmark can print the same
comparisons the paper reports (mean, standard deviation, wins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.evaluation.runner import ClaSSFactory, run_experiment

#: The design-choice grids evaluated in §4.2 (values scaled to the simulated,
#: laptop-sized streams where the paper's grid would not fit, e.g. the window
#: sizes; the structure of each sweep is unchanged).
PAPER_ABLATION_GRID: dict[str, list] = {
    "window_size": [1_000, 2_500, 5_000, 10_000, 20_000],
    "wss_method": ["suss", "fft", "acf", "mwf"],
    "similarity": ["pearson", "euclidean", "cid"],
    "k_neighbours": [1, 3, 5, 7],
    "score": ["macro_f1", "accuracy"],
    "significance_level": [1e-10, 1e-30, 1e-50, 1e-100],
    "sample_size": [None, 100, 1_000, 10_000],
}


@dataclass
class AblationEntry:
    """Covering statistics of one parameter value."""

    parameter: str
    value: object
    mean_covering: float
    std_covering: float
    wins: int
    per_dataset: dict[str, float]


def ablation_sample(
    datasets: list[TimeSeriesDataset], fraction: float = 0.2, seed: int = 7
) -> list[TimeSeriesDataset]:
    """Random sample of the benchmark datasets (the paper uses 20%, 21 of 107)."""
    rng = np.random.default_rng(seed)
    n_sample = max(1, int(round(fraction * len(datasets))))
    indices = rng.choice(len(datasets), size=n_sample, replace=False)
    return [datasets[i] for i in sorted(indices)]


def run_ablation(
    parameter: str,
    values: list,
    datasets: list[TimeSeriesDataset],
    base_kwargs: dict | None = None,
    window_size: int = 10_000,
    scoring_interval: int = 1,
) -> list[AblationEntry]:
    """Sweep one ClaSS parameter over ``values`` and score every configuration.

    ``parameter`` may be any ClaSS constructor argument or ``"window_size"``
    (which is routed to the factory's window cap instead).
    """
    base_kwargs = dict(base_kwargs or {})
    coverings: dict[object, dict[str, float]] = {}

    for value in values:
        kwargs = dict(base_kwargs)
        factory_window = window_size
        if parameter == "window_size":
            factory_window = int(value)
        else:
            kwargs[parameter] = value
        factories = {
            "ClaSS": ClaSSFactory(
                window_size=factory_window,
                scoring_interval=scoring_interval,
                class_kwargs=kwargs,
            )
        }
        result = run_experiment(factories, datasets)
        coverings[value] = {r.dataset: r.covering for r in result.records}

    entries: list[AblationEntry] = []
    dataset_names = [d.name for d in datasets]
    for value in values:
        per_dataset = coverings[value]
        scores = np.array([per_dataset[name] for name in dataset_names])
        wins = 0
        for name in dataset_names:
            best = max(coverings[other][name] for other in values)
            if abs(per_dataset[name] - best) <= 1e-12:
                wins += 1
        entries.append(
            AblationEntry(
                parameter=parameter,
                value=value,
                mean_covering=float(scores.mean()),
                std_covering=float(scores.std()),
                wins=wins,
                per_dataset=per_dataset,
            )
        )
    return entries


def ablation_rows(entries: list[AblationEntry]) -> list[dict]:
    """Flatten ablation entries into printable rows."""
    return [
        {
            "parameter": entry.parameter,
            "value": str(entry.value),
            "mean covering %": 100.0 * entry.mean_covering,
            "std %": 100.0 * entry.std_covering,
            "wins": entry.wins,
        }
        for entry in entries
    ]
