"""Evaluation framework: Covering, ranks, CD statistics, runner and reports."""

from repro.evaluation.ablation import (
    PAPER_ABLATION_GRID,
    AblationEntry,
    ablation_rows,
    ablation_sample,
    run_ablation,
)
from repro.evaluation.covering import (
    change_points_to_segments,
    covering_matrix,
    covering_score,
    interval_jaccard,
)
from repro.evaluation.metrics import (
    ChangePointMatch,
    change_point_f1,
    detection_delays,
    match_change_points,
    mean_absolute_error_of_matched_cps,
)
from repro.evaluation.ranking import (
    CriticalDifferenceResult,
    critical_difference_analysis,
    friedman_test,
    mean_ranks,
    nemenyi_critical_difference,
    pairwise_wins,
    rank_scores,
    wins_and_ties_per_method,
)
from repro.evaluation.reporting import (
    format_markdown_table,
    format_ranking,
    format_summary,
    format_table,
)
from repro.evaluation.runner import (
    EvaluationRecord,
    ExperimentResult,
    class_factory,
    default_method_factories,
    run_experiment,
    run_method_on_dataset,
    stream_dataset,
)
from repro.evaluation.throughput import (
    ThroughputReport,
    measure_batch_throughput,
    measure_throughput,
    measure_update_scaling,
)

__all__ = [
    "covering_score",
    "covering_matrix",
    "interval_jaccard",
    "change_points_to_segments",
    "change_point_f1",
    "match_change_points",
    "detection_delays",
    "mean_absolute_error_of_matched_cps",
    "ChangePointMatch",
    "rank_scores",
    "mean_ranks",
    "friedman_test",
    "nemenyi_critical_difference",
    "critical_difference_analysis",
    "CriticalDifferenceResult",
    "pairwise_wins",
    "wins_and_ties_per_method",
    "EvaluationRecord",
    "ExperimentResult",
    "run_experiment",
    "run_method_on_dataset",
    "stream_dataset",
    "class_factory",
    "default_method_factories",
    "ThroughputReport",
    "measure_throughput",
    "measure_batch_throughput",
    "measure_update_scaling",
    "format_table",
    "format_markdown_table",
    "format_ranking",
    "format_summary",
    "AblationEntry",
    "run_ablation",
    "ablation_sample",
    "ablation_rows",
    "PAPER_ABLATION_GRID",
]
