"""Composition of annotated streams from segment specifications.

A stream is described by a list of :class:`SegmentSpec` (generator name,
length, parameters, state label).  :func:`compose_stream` renders the
segments, optionally blends short transition ramps between them (real sensors
rarely jump instantaneously), and returns a
:class:`~repro.datasets.dataset.TimeSeriesDataset` whose annotated change
points are the segment boundaries.

:func:`random_segment_specs` draws segment specifications from a library of
"states" — parameterised generator families — making sure consecutive
segments use different states, which is what gives the benchmark collections
their ground-truth change points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.datasets.generators import get_generator
from repro.utils.exceptions import ConfigurationError


@dataclass
class SegmentSpec:
    """Specification of a single homogeneous segment."""

    generator: str
    length: int
    params: dict = field(default_factory=dict)
    label: str = ""

    def render(self, rng: np.random.Generator) -> np.ndarray:
        """Materialise the segment's values."""
        if self.length < 1:
            raise ConfigurationError("segment length must be positive")
        return get_generator(self.generator)(self.length, rng, **self.params)


def compose_stream(
    segments: list[SegmentSpec],
    name: str = "synthetic",
    collection: str = "synthetic",
    sample_rate: float = 100.0,
    seed: int | None = None,
    transition: int = 0,
    standardise: bool = True,
    subsequence_width: int | None = None,
) -> TimeSeriesDataset:
    """Render a list of segment specifications into an annotated dataset.

    Parameters
    ----------
    segments:
        At least one segment specification.
    transition:
        Length of the linear cross-fade applied across each boundary (0 means
        hard switches, as in most benchmark series).
    standardise:
        Z-normalise the final series (the paper's benchmarks ship
        preprocessed, roughly standardised series).
    subsequence_width:
        Optional annotated temporal-pattern width stored in the metadata
        (FLOSS takes its width from such annotations in the paper).
    """
    if not segments:
        raise ConfigurationError("at least one segment specification is required")
    rng = np.random.default_rng(seed)
    rendered = [spec.render(rng) for spec in segments]

    values = np.concatenate(rendered)
    if transition > 0:
        offset = 0
        for piece in rendered[:-1]:
            offset += piece.shape[0]
            lo = max(0, offset - transition // 2)
            hi = min(values.shape[0], offset + transition // 2)
            if hi - lo >= 3:
                ramp = np.linspace(values[lo], values[hi - 1], hi - lo)
                blend = np.linspace(0.0, 1.0, hi - lo) * 0.5
                values[lo:hi] = (1 - blend) * values[lo:hi] + blend * ramp

    change_points = np.cumsum([spec.length for spec in segments])[:-1]
    if standardise:
        values = (values - values.mean()) / max(values.std(), 1e-12)

    metadata = {
        "segment_labels": [spec.label or spec.generator for spec in segments],
        "segment_generators": [spec.generator for spec in segments],
        "seed": seed,
    }
    if subsequence_width is not None:
        metadata["subsequence_width"] = int(subsequence_width)
    return TimeSeriesDataset(
        name=name,
        values=values,
        change_points=change_points,
        sample_rate=sample_rate,
        collection=collection,
        metadata=metadata,
    )


#: Parameterised "states" a process can be in.  Each entry maps to a generator
#: plus a parameter sampler; drawing different states for consecutive segments
#: guarantees a genuine signal change at each annotated change point.
STATE_LIBRARY: dict[str, dict] = {
    "slow_sine": {
        "generator": "sine",
        "period": (40, 90),
        "amplitude": (0.8, 1.5),
        "noise": (0.02, 0.1),
    },
    "fast_sine": {
        "generator": "sine",
        "period": (12, 30),
        "amplitude": (0.8, 1.5),
        "noise": (0.02, 0.1),
    },
    "square": {
        "generator": "square",
        "period": (30, 90),
        "amplitude": (0.8, 1.5),
        "noise": (0.02, 0.1),
    },
    "sawtooth": {
        "generator": "sawtooth",
        "period": (30, 90),
        "amplitude": (0.8, 1.5),
        "noise": (0.02, 0.1),
    },
    "calm_noise": {"generator": "noise", "mean": (-0.2, 0.2), "std": (0.05, 0.2)},
    "wild_noise": {"generator": "noise", "mean": (-0.2, 0.2), "std": (0.8, 1.5)},
    "ar_smooth": {"generator": "ar", "coefficients": ((0.8, -0.2),), "noise": (0.3, 0.8)},
    "ar_rough": {"generator": "ar", "coefficients": ((-0.5, 0.2),), "noise": (0.3, 0.8)},
    "walk": {"generator": "random_walk", "step_std": (0.05, 0.2)},
    "strong_activity": {
        "generator": "activity",
        "base_period": (20, 40),
        "amplitude": (1.0, 2.0),
        "noise": (0.05, 0.2),
        "burstiness": (0.0, 0.3),
    },
    "light_activity": {
        "generator": "activity",
        "base_period": (60, 120),
        "amplitude": (0.3, 0.8),
        "noise": (0.05, 0.2),
        "burstiness": (0.0, 0.1),
    },
    "ecg_normal": {
        "generator": "ecg",
        "beat_period": (60, 100),
        "amplitude": (0.8, 1.4),
        "noise": (0.02, 0.08),
    },
    "ecg_irregular": {
        "generator": "ecg",
        "beat_period": (60, 100),
        "amplitude": (0.8, 1.4),
        "noise": (0.02, 0.08),
        "irregular": (True,),
    },
    "ecg_fibrillation": {
        "generator": "ecg",
        "beat_period": (60, 100),
        "amplitude": (0.8, 1.4),
        "noise": (0.02, 0.08),
        "fibrillation": (True,),
    },
    "respiration_calm": {
        "generator": "respiration",
        "breath_period": (200, 320),
        "amplitude": (0.8, 1.2),
        "noise": (0.02, 0.08),
    },
    "respiration_excited": {
        "generator": "respiration",
        "breath_period": (80, 140),
        "amplitude": (1.0, 1.8),
        "noise": (0.05, 0.15),
    },
    "eeg_deep": {"generator": "eeg", "band": ((0.005, 0.03),), "amplitude": (1.0, 1.6)},
    "eeg_light": {"generator": "eeg", "band": ((0.03, 0.1),), "amplitude": (0.8, 1.2)},
    "eeg_wake": {"generator": "eeg", "band": ((0.1, 0.3),), "amplitude": (0.5, 1.0)},
}


def _sample_state_params(state: dict, rng: np.random.Generator) -> dict:
    """Draw concrete generator parameters from a state description."""
    params = {}
    for key, value in state.items():
        if key == "generator":
            continue
        if isinstance(value, tuple) and len(value) == 2 and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in value
        ):
            low, high = value
            sampled = rng.uniform(float(low), float(high))
            params[key] = (
                int(round(sampled)) if isinstance(low, int) and isinstance(high, int) else sampled
            )
        elif isinstance(value, tuple):
            params[key] = value[int(rng.integers(0, len(value)))]
        else:
            params[key] = value
    return params


def random_segment_specs(
    n_segments: int,
    segment_length_range: tuple[int, int],
    rng: np.random.Generator,
    states: list[str] | None = None,
    allow_repeats: bool = False,
) -> list[SegmentSpec]:
    """Draw a sequence of segment specifications with differing states.

    Parameters
    ----------
    n_segments:
        Number of segments (number of change points + 1).
    segment_length_range:
        Inclusive (min, max) range segment lengths are drawn from.
    states:
        Candidate state names (defaults to the full library).
    allow_repeats:
        If True a state may reappear later in the stream (not adjacently),
        which exercises the "reoccurring sub-segments" sub-case of §4.3.
    """
    if n_segments < 1:
        raise ConfigurationError("n_segments must be at least 1")
    candidates = list(states or STATE_LIBRARY.keys())
    if len(candidates) < 2 and n_segments > 1:
        raise ConfigurationError("need at least two states to build change points")

    specs: list[SegmentSpec] = []
    previous_state: str | None = None
    used: list[str] = []
    for _ in range(n_segments):
        options = [name for name in candidates if name != previous_state]
        if not allow_repeats:
            fresh = [name for name in options if name not in used]
            if fresh:
                options = fresh
        state_name = options[int(rng.integers(0, len(options)))]
        used.append(state_name)
        previous_state = state_name
        state = STATE_LIBRARY[state_name]
        length = int(rng.integers(segment_length_range[0], segment_length_range[1] + 1))
        specs.append(
            SegmentSpec(
                generator=state["generator"],
                length=length,
                params=_sample_state_params(state, rng),
                label=state_name,
            )
        )
    return specs
