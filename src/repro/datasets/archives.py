"""Synthetic stand-ins for the six real-world data archives of Table 1.

The real archives (mHealth, PAMAP, WESAD, Sleep-EDF, MIT-BIH Arrhythmia and
MIT-BIH Ventricular Fibrillation) contain up to 3.9 million points per series
and are not redistributable here.  Each factory below simulates the archive's
characteristic sensor behaviour with the generators of
:mod:`repro.datasets.generators`, preserving

* the archive's segment counts (e.g. 12 activities per mHealth subject, 5
  affect states per WESAD subject, many rhythm changes per MIT-BIH record),
* the flavour of its change points (activity transitions, affect transitions,
  sleep-stage transitions, rhythm transitions), and
* the relative difficulty (archives are noisier and have more ambiguous
  transitions than the benchmark collections).

Series lengths are scaled down (default ~20k-40k points instead of 0.5M-3.9M)
so that the full 9-method evaluation stays laptop-scale; the scalability
benchmark (Figure 7) sweeps the length explicitly instead.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.datasets.synthetic import SegmentSpec, compose_stream


def _activity_specs(
    rng: np.random.Generator, n_activities: int, segment_length: tuple[int, int]
) -> list[SegmentSpec]:
    """Draw a sequence of distinct activity bouts (IMU-style archives)."""
    activities = {
        "lying": {"generator": "noise", "params": {"mean": 0.0, "std": 0.05}},
        "sitting": {"generator": "noise", "params": {"mean": 0.1, "std": 0.08}},
        "standing": {"generator": "random_walk", "params": {"step_std": 0.02}},
        "walking": {
            "generator": "activity",
            "params": {"base_period": 55, "amplitude": 1.0, "noise": 0.1},
        },
        "nordic_walking": {
            "generator": "activity",
            "params": {"base_period": 48, "amplitude": 1.3, "noise": 0.12},
        },
        "running": {
            "generator": "activity",
            "params": {"base_period": 28, "amplitude": 2.2, "noise": 0.15},
        },
        "cycling": {
            "generator": "activity",
            "params": {"base_period": 70, "amplitude": 0.8, "noise": 0.1},
        },
        "ascending_stairs": {
            "generator": "activity",
            "params": {"base_period": 62, "amplitude": 1.4, "noise": 0.2, "burstiness": 0.2},
        },
        "descending_stairs": {
            "generator": "activity",
            "params": {"base_period": 50, "amplitude": 1.5, "noise": 0.2, "burstiness": 0.2},
        },
        "vacuuming": {"generator": "ar", "params": {"coefficients": (0.7, -0.2), "noise": 0.6}},
        "ironing": {"generator": "ar", "params": {"coefficients": (0.4, 0.1), "noise": 0.3}},
        "rope_jumping": {
            "generator": "activity",
            "params": {"base_period": 22, "amplitude": 2.6, "noise": 0.2, "burstiness": 0.4},
        },
        "jogging": {
            "generator": "activity",
            "params": {"base_period": 32, "amplitude": 1.9, "noise": 0.15},
        },
        "jumping": {
            "generator": "activity",
            "params": {"base_period": 25, "amplitude": 2.4, "noise": 0.25, "burstiness": 0.5},
        },
    }
    names = list(activities)
    order = rng.permutation(len(names))
    specs: list[SegmentSpec] = []
    for i in range(n_activities):
        name = names[order[i % len(names)]]
        spec = activities[name]
        length = int(rng.integers(segment_length[0], segment_length[1] + 1))
        specs.append(SegmentSpec(spec["generator"], length, dict(spec["params"]), label=name))
    return specs


def make_mhealth_like(
    n_series: int = 12, length_scale: float = 1.0, seed: int = 4100
) -> list[TimeSeriesDataset]:
    """mHealth-like: ankle-IMU recordings with 12 activity segments each."""
    collection = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        low, high = int(2_000 * length_scale), int(3_200 * length_scale)
        specs = _activity_specs(
            rng, n_activities=12, segment_length=(max(low, 200), max(high, 260))
        )
        collection.append(
            compose_stream(
                specs,
                name=f"mhealth_like_{index:03d}",
                collection="mHealth-like",
                sample_rate=50.0,
                seed=seed + index,
                subsequence_width=int(rng.integers(30, 70)),
            )
        )
    return collection


def make_pamap_like(
    n_series: int = 12, length_scale: float = 1.0, seed: int = 4200
) -> list[TimeSeriesDataset]:
    """PAMAP-like: longer physical-activity-monitoring recordings (2-9 segments)."""
    collection = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        n_activities = int(rng.integers(2, 10))
        low, high = int(3_000 * length_scale), int(6_000 * length_scale)
        specs = _activity_specs(rng, n_activities, (max(low, 300), max(high, 400)))
        collection.append(
            compose_stream(
                specs,
                name=f"pamap_like_{index:03d}",
                collection="PAMAP-like",
                sample_rate=100.0,
                seed=seed + index,
                subsequence_width=int(rng.integers(30, 80)),
            )
        )
    return collection


def make_wesad_like(
    n_series: int = 8, length_scale: float = 1.0, seed: int = 4300
) -> list[TimeSeriesDataset]:
    """WESAD-like: physiological chest recordings across 5 affect states."""
    states = [
        (
            "baseline",
            SegmentSpec(
                "respiration",
                0,
                {"breath_period": 260, "amplitude": 1.0, "noise": 0.05},
                "baseline",
            ),
        ),
        (
            "amusement",
            SegmentSpec(
                "respiration",
                0,
                {"breath_period": 180, "amplitude": 1.2, "noise": 0.08, "variability": 0.2},
                "amusement",
            ),
        ),
        (
            "stress",
            SegmentSpec(
                "respiration",
                0,
                {"breath_period": 100, "amplitude": 1.6, "noise": 0.12, "variability": 0.25},
                "stress",
            ),
        ),
        (
            "meditation",
            SegmentSpec(
                "respiration",
                0,
                {"breath_period": 320, "amplitude": 0.8, "noise": 0.04},
                "meditation",
            ),
        ),
        (
            "recovery",
            SegmentSpec(
                "respiration",
                0,
                {"breath_period": 220, "amplitude": 1.0, "noise": 0.06},
                "recovery",
            ),
        ),
    ]
    collection = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        order = rng.permutation(len(states))
        specs = []
        for position in range(5):
            _, template = states[order[position]]
            length = int(rng.integers(int(4_000 * length_scale), int(7_000 * length_scale) + 1))
            specs.append(
                SegmentSpec(
                    template.generator, max(length, 500), dict(template.params), template.label
                )
            )
        collection.append(
            compose_stream(
                specs,
                name=f"wesad_like_{index:03d}",
                collection="WESAD-like",
                sample_rate=70.0,
                seed=seed + index,
                subsequence_width=int(rng.integers(120, 300)),
            )
        )
    return collection


def make_sleep_like(
    n_series: int = 8, length_scale: float = 1.0, seed: int = 4400
) -> list[TimeSeriesDataset]:
    """Sleep-EDF-like: EEG recordings cycling through sleep stages (many segments)."""
    stage_bands = {
        "wake": (0.12, 0.35),
        "rem": (0.06, 0.15),
        "n1": (0.04, 0.1),
        "n2": (0.02, 0.07),
        "n3": (0.005, 0.03),
    }
    stage_names = list(stage_bands)
    collection = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        n_stages = int(rng.integers(15, 30))
        specs = []
        previous = None
        for _ in range(n_stages):
            choices = [s for s in stage_names if s != previous]
            stage = choices[int(rng.integers(0, len(choices)))]
            previous = stage
            length = int(rng.integers(int(1_000 * length_scale), int(2_500 * length_scale) + 1))
            specs.append(
                SegmentSpec(
                    "eeg",
                    max(length, 300),
                    {"band": stage_bands[stage], "amplitude": 1.0, "noise": 0.1},
                    label=stage,
                )
            )
        collection.append(
            compose_stream(
                specs,
                name=f"sleep_like_{index:03d}",
                collection="SleepDB-like",
                sample_rate=100.0,
                seed=seed + index,
                subsequence_width=int(rng.integers(50, 150)),
            )
        )
    return collection


def make_mitbih_arr_like(
    n_series: int = 10, length_scale: float = 1.0, seed: int = 4500
) -> list[TimeSeriesDataset]:
    """MIT-BIH-Arrhythmia-like: ECG alternating between rhythm types (1-20+ segments)."""
    rhythms = [
        ("normal", {"irregular": False, "fibrillation": False}),
        ("arrhythmic", {"irregular": True, "fibrillation": False}),
        ("fibrillation", {"irregular": False, "fibrillation": True}),
    ]
    collection = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        n_episodes = int(rng.integers(1, 14))
        specs = []
        previous = None
        for _ in range(max(n_episodes, 1)):
            options = [r for r in rhythms if r[0] != previous]
            label, flags = options[int(rng.integers(0, len(options)))]
            previous = label
            length = int(rng.integers(int(2_000 * length_scale), int(4_500 * length_scale) + 1))
            params = {
                "beat_period": int(rng.integers(60, 100)),
                "amplitude": 1.0,
                "noise": 0.05,
                **flags,
            }
            specs.append(SegmentSpec("ecg", max(length, 400), params, label=label))
        collection.append(
            compose_stream(
                specs,
                name=f"mitbih_arr_like_{index:03d}",
                collection="ArrDB-like",
                sample_rate=250.0,
                seed=seed + index,
                subsequence_width=int(rng.integers(60, 110)),
            )
        )
    return collection


def make_mitbih_ve_like(
    n_series: int = 8, length_scale: float = 1.0, seed: int = 4600
) -> list[TimeSeriesDataset]:
    """MIT-BIH-VE-like: ECG with sustained ventricular fibrillation episodes."""
    collection = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        n_episodes = int(rng.integers(2, 9))
        specs = []
        fibrillating = False
        for _ in range(n_episodes):
            length = int(rng.integers(int(2_500 * length_scale), int(5_000 * length_scale) + 1))
            params = {
                "beat_period": int(rng.integers(60, 100)),
                "amplitude": 1.0,
                "noise": 0.05,
                "fibrillation": fibrillating,
            }
            specs.append(
                SegmentSpec(
                    "ecg",
                    max(length, 400),
                    params,
                    label="fibrillation" if fibrillating else "normal",
                )
            )
            fibrillating = not fibrillating
        collection.append(
            compose_stream(
                specs,
                name=f"mitbih_ve_like_{index:03d}",
                collection="VEDB-like",
                sample_rate=250.0,
                seed=seed + index,
                subsequence_width=int(rng.integers(60, 110)),
            )
        )
    return collection
