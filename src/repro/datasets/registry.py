"""Central registry of all dataset collections used by the evaluation (Table 1).

The registry maps collection names to their generator factories together with
the specification of the corresponding real collection (number of series,
length range, segment range) so the Table 1 reproduction can print both the
paper's numbers and the numbers of the simulated stand-ins side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.archives import (
    make_mhealth_like,
    make_mitbih_arr_like,
    make_mitbih_ve_like,
    make_pamap_like,
    make_sleep_like,
    make_wesad_like,
)
from repro.datasets.benchmarks import make_tssb_like, make_utsa_like
from repro.datasets.dataset import TimeSeriesDataset
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class CollectionSpec:
    """Description of one dataset collection and its real-world counterpart."""

    name: str
    kind: str  # "benchmark" or "archive"
    factory: Callable[..., list[TimeSeriesDataset]]
    paper_n_series: int
    paper_length: tuple[int, int, int]      # min / median / max of the real archive
    paper_segments: tuple[int, int, int]    # min / median / max segments
    default_n_series: int
    description: str


#: All eight collections of Table 1.
COLLECTIONS: dict[str, CollectionSpec] = {
    "TSSB": CollectionSpec(
        name="TSSB",
        kind="benchmark",
        factory=make_tssb_like,
        paper_n_series=75,
        paper_length=(240, 3_500, 20_700),
        paper_segments=(1, 3, 9),
        default_n_series=75,
        description="Time Series Segmentation Benchmark (semi-synthetic UCR series)",
    ),
    "UTSA": CollectionSpec(
        name="UTSA",
        kind="benchmark",
        factory=make_utsa_like,
        paper_n_series=32,
        paper_length=(2_000, 12_000, 40_000),
        paper_segments=(2, 2, 3),
        default_n_series=32,
        description="UCR Time Series Semantic Segmentation Archive",
    ),
    "mHealth": CollectionSpec(
        name="mHealth",
        kind="archive",
        factory=make_mhealth_like,
        paper_n_series=90,
        paper_length=(32_200, 34_300, 35_500),
        paper_segments=(12, 12, 12),
        default_n_series=12,
        description="Mobile-health ankle IMU activity recordings",
    ),
    "ArrDB": CollectionSpec(
        name="ArrDB",
        kind="archive",
        factory=make_mitbih_arr_like,
        paper_n_series=96,
        paper_length=(650_000, 650_000, 650_000),
        paper_segments=(1, 10, 207),
        default_n_series=10,
        description="MIT-BIH Arrhythmia ECG database",
    ),
    "VEDB": CollectionSpec(
        name="VEDB",
        kind="archive",
        factory=make_mitbih_ve_like,
        paper_n_series=44,
        paper_length=(525_000, 525_000, 525_000),
        paper_segments=(2, 13, 134),
        default_n_series=8,
        description="MIT-BIH Ventricular Fibrillation ECG database",
    ),
    "PAMAP": CollectionSpec(
        name="PAMAP",
        kind="archive",
        factory=make_pamap_like,
        paper_n_series=135,
        paper_length=(37_500, 132_100, 175_000),
        paper_segments=(2, 9, 9),
        default_n_series=12,
        description="Physical activity monitoring IMU recordings",
    ),
    "SleepDB": CollectionSpec(
        name="SleepDB",
        kind="archive",
        factory=make_sleep_like,
        paper_n_series=88,
        paper_length=(2_700_000, 3_100_000, 3_900_000),
        paper_segments=(83, 138, 231),
        default_n_series=8,
        description="Sleep-EDF polysomnographic sleep-stage recordings",
    ),
    "WESAD": CollectionSpec(
        name="WESAD",
        kind="archive",
        factory=make_wesad_like,
        paper_n_series=32,
        paper_length=(2_000_000, 2_100_000, 2_100_000),
        paper_segments=(5, 5, 5),
        default_n_series=8,
        description="Wearable stress and affect detection chest recordings",
    ),
}

#: The two benchmark collections of §4.3.
BENCHMARK_COLLECTIONS = ("TSSB", "UTSA")

#: The six data-archive collections of §4.3.
ARCHIVE_COLLECTIONS = ("mHealth", "ArrDB", "VEDB", "PAMAP", "SleepDB", "WESAD")


def load_collection(
    name: str,
    n_series: int | None = None,
    length_scale: float = 1.0,
    seed: int | None = None,
) -> list[TimeSeriesDataset]:
    """Generate one collection of annotated series.

    Parameters
    ----------
    name:
        Collection name (see :data:`COLLECTIONS`).
    n_series:
        Number of series to generate; defaults to the collection's
        laptop-scale default (the paper-scale count is in the spec).
    length_scale:
        Multiplier on the segment lengths (1.0 = the stand-in's default
        scaled-down lengths).
    seed:
        Optional seed override (defaults to the collection's fixed seed).
    """
    if name not in COLLECTIONS:
        raise ConfigurationError(
            f"unknown collection {name!r}; expected one of {sorted(COLLECTIONS)}"
        )
    spec = COLLECTIONS[name]
    kwargs: dict = {
        "n_series": n_series if n_series is not None else spec.default_n_series,
        "length_scale": length_scale,
    }
    if seed is not None:
        kwargs["seed"] = seed
    return spec.factory(**kwargs)


def load_benchmark_suite(
    n_series_per_collection: int | None = None,
    length_scale: float = 1.0,
) -> dict[str, list[TimeSeriesDataset]]:
    """All benchmark collections keyed by name."""
    return {
        name: load_collection(name, n_series_per_collection, length_scale)
        for name in BENCHMARK_COLLECTIONS
    }


def load_archive_suite(
    n_series_per_collection: int | None = None,
    length_scale: float = 1.0,
) -> dict[str, list[TimeSeriesDataset]]:
    """All archive collections keyed by name."""
    return {
        name: load_collection(name, n_series_per_collection, length_scale)
        for name in ARCHIVE_COLLECTIONS
    }


def collection_summary(datasets: list[TimeSeriesDataset]) -> dict:
    """Aggregate length / segment statistics of a generated collection."""
    import numpy as np

    lengths = np.array([len(d) for d in datasets])
    segments = np.array([d.n_segments for d in datasets])
    return {
        "n_series": len(datasets),
        "length_min": int(lengths.min()),
        "length_median": float(np.median(lengths)),
        "length_max": int(lengths.max()),
        "segments_min": int(segments.min()),
        "segments_median": float(np.median(segments)),
        "segments_max": int(segments.max()),
    }
