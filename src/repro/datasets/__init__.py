"""Annotated dataset substrates: synthetic stand-ins for the paper's benchmarks."""

from repro.datasets.archives import (
    make_mhealth_like,
    make_mitbih_arr_like,
    make_mitbih_ve_like,
    make_pamap_like,
    make_sleep_like,
    make_wesad_like,
)
from repro.datasets.benchmarks import make_tssb_like, make_utsa_like
from repro.datasets.dataset import TimeSeriesDataset
from repro.datasets.generators import GENERATORS, get_generator
from repro.datasets.loaders import (
    load_collection_from_directory,
    load_dataset_csv,
    load_dataset_npz,
    save_collection,
    save_dataset_csv,
    save_dataset_npz,
)
from repro.datasets.registry import (
    ARCHIVE_COLLECTIONS,
    BENCHMARK_COLLECTIONS,
    COLLECTIONS,
    CollectionSpec,
    collection_summary,
    load_archive_suite,
    load_benchmark_suite,
    load_collection,
)
from repro.datasets.synthetic import (
    STATE_LIBRARY,
    SegmentSpec,
    compose_stream,
    random_segment_specs,
)

__all__ = [
    "TimeSeriesDataset",
    "SegmentSpec",
    "compose_stream",
    "random_segment_specs",
    "STATE_LIBRARY",
    "GENERATORS",
    "get_generator",
    "make_tssb_like",
    "make_utsa_like",
    "make_mhealth_like",
    "make_pamap_like",
    "make_wesad_like",
    "make_sleep_like",
    "make_mitbih_arr_like",
    "make_mitbih_ve_like",
    "COLLECTIONS",
    "CollectionSpec",
    "BENCHMARK_COLLECTIONS",
    "ARCHIVE_COLLECTIONS",
    "load_collection",
    "load_benchmark_suite",
    "load_archive_suite",
    "collection_summary",
    "save_dataset_npz",
    "load_dataset_npz",
    "save_dataset_csv",
    "load_dataset_csv",
    "save_collection",
    "load_collection_from_directory",
]
