"""Dataset container for annotated time series streams.

All benchmark and archive generators of this package return
:class:`TimeSeriesDataset` objects: a univariate value array, the annotated
ground-truth change points (exclusive of the implicit first change point at
offset 0, following the paper's Definition 4), a sampling rate, and free-form
metadata describing how the series was generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.utils.validation import check_array_1d, check_change_points


@dataclass
class TimeSeriesDataset:
    """One annotated univariate time series treated as a stream.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"TSSB-like/ts_017"``.
    values:
        The raw observations.
    change_points:
        Strictly increasing annotated change point offsets in
        ``(0, len(values))``.
    sample_rate:
        Sampling rate in Hz (used to express detection latencies in seconds).
    collection:
        Name of the benchmark / archive the series belongs to.
    metadata:
        Generator parameters, segment state labels, sensor name, etc.
    """

    name: str
    values: np.ndarray
    change_points: np.ndarray
    sample_rate: float = 100.0
    collection: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = check_array_1d(self.values, f"{self.name}.values", min_length=2)
        self.change_points = check_change_points(
            self.change_points, self.values.shape[0], f"{self.name}.change_points"
        )

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_timepoints(self) -> int:
        """Number of observations."""
        return int(self.values.shape[0])

    @property
    def n_segments(self) -> int:
        """Number of annotated segments."""
        return int(self.change_points.shape[0]) + 1

    @property
    def segment_boundaries(self) -> np.ndarray:
        """Change points including the implicit start (0) and end (n)."""
        return np.concatenate(([0], self.change_points, [self.n_timepoints]))

    @property
    def segments(self) -> list[tuple[int, int]]:
        """Annotated segments as (start, end) index pairs."""
        bounds = self.segment_boundaries
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(bounds.shape[0] - 1)]

    @property
    def segment_labels(self) -> list[str]:
        """State labels per segment if the generator recorded them."""
        labels = self.metadata.get("segment_labels")
        if labels is None:
            return [f"state_{i}" for i in range(self.n_segments)]
        return list(labels)

    @property
    def median_segment_length(self) -> float:
        """Median annotated segment length."""
        bounds = self.segment_boundaries
        return float(np.median(np.diff(bounds)))

    @property
    def subsequence_width_hint(self) -> int | None:
        """Annotated temporal-pattern width if the generator recorded one."""
        width = self.metadata.get("subsequence_width")
        return int(width) if width is not None else None

    # ------------------------------------------------------------------ #

    def iter_stream(self) -> Iterator[float]:
        """Yield the observations one at a time (streaming simulation)."""
        for value in self.values:
            yield float(value)

    def slice(self, start: int, end: int, name: str | None = None) -> "TimeSeriesDataset":
        """Return a sub-series with the change point annotations re-based."""
        start, end = int(start), int(end)
        inside = self.change_points[(self.change_points > start) & (self.change_points < end)]
        return TimeSeriesDataset(
            name=name or f"{self.name}[{start}:{end}]",
            values=self.values[start:end].copy(),
            change_points=inside - start,
            sample_rate=self.sample_rate,
            collection=self.collection,
            metadata=dict(self.metadata),
        )

    def summary(self) -> dict:
        """Small dictionary used by the Table 1 reproduction."""
        return {
            "name": self.name,
            "collection": self.collection,
            "length": self.n_timepoints,
            "n_segments": self.n_segments,
            "sample_rate": self.sample_rate,
        }
