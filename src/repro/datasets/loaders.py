"""Persistence helpers for annotated datasets (NPZ and CSV round trips).

Generated collections can be materialised to disk once and reloaded by the
benchmark harness, which keeps experiment runs deterministic and avoids
regenerating long streams repeatedly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.utils.exceptions import ValidationError


def save_dataset_npz(dataset: TimeSeriesDataset, path: str | Path) -> Path:
    """Save one dataset (values, change points and metadata) as an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        values=dataset.values,
        change_points=dataset.change_points,
        sample_rate=np.array([dataset.sample_rate]),
        name=np.array([dataset.name]),
        collection=np.array([dataset.collection]),
        metadata=np.array([json.dumps(dataset.metadata, default=str)]),
    )
    return path


def load_dataset_npz(path: str | Path) -> TimeSeriesDataset:
    """Load a dataset previously written by :func:`save_dataset_npz`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"dataset file {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"][0])) if "metadata" in archive else {}
        return TimeSeriesDataset(
            name=str(archive["name"][0]),
            values=archive["values"],
            change_points=archive["change_points"],
            sample_rate=float(archive["sample_rate"][0]),
            collection=str(archive["collection"][0]),
            metadata=metadata,
        )


def save_dataset_csv(dataset: TimeSeriesDataset, path: str | Path) -> Path:
    """Save a dataset as CSV: one value per row, change points in the header comment."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        handle.write(f"# name={dataset.name}\n")
        handle.write(f"# collection={dataset.collection}\n")
        handle.write(f"# sample_rate={dataset.sample_rate}\n")
        handle.write(f"# change_points={','.join(map(str, dataset.change_points.tolist()))}\n")
        writer = csv.writer(handle)
        writer.writerow(["timepoint", "value"])
        for index, value in enumerate(dataset.values):
            writer.writerow([index, repr(float(value))])
    return path


def load_dataset_csv(path: str | Path) -> TimeSeriesDataset:
    """Load a dataset previously written by :func:`save_dataset_csv`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"dataset file {path} does not exist")
    header: dict[str, str] = {}
    values: list[float] = []
    with open(path, newline="") as handle:
        for line in handle:
            if line.startswith("#"):
                key, _, value = line[1:].strip().partition("=")
                header[key.strip()] = value.strip()
                continue
            reader = csv.reader([line])
            row = next(reader)
            if row and row[0] != "timepoint":
                values.append(float(row[1]))
    change_points = (
        np.array([int(v) for v in header.get("change_points", "").split(",") if v], dtype=np.int64)
        if header.get("change_points")
        else np.empty(0, dtype=np.int64)
    )
    return TimeSeriesDataset(
        name=header.get("name", path.stem),
        values=np.asarray(values, dtype=np.float64),
        change_points=change_points,
        sample_rate=float(header.get("sample_rate", 100.0)),
        collection=header.get("collection", ""),
    )


def save_collection(datasets: list[TimeSeriesDataset], directory: str | Path) -> list[Path]:
    """Save every dataset of a collection into ``directory`` as NPZ files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        save_dataset_npz(dataset, directory / f"{dataset.name.replace('/', '_')}.npz")
        for dataset in datasets
    ]


def load_collection_from_directory(directory: str | Path) -> list[TimeSeriesDataset]:
    """Load every ``.npz`` dataset found in ``directory`` (sorted by file name)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ValidationError(f"{directory} is not a directory")
    return [load_dataset_npz(p) for p in sorted(directory.glob("*.npz"))]
