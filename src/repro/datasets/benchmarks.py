"""Synthetic stand-ins for the paper's two public TSS benchmarks (Table 1).

* **TSSB-like** — the Time Series Segmentation Benchmark contains 75
  semi-synthetic series (240 to ~21k points, 1-9 segments) built from UCR
  archive classes.  The stand-in draws 75 series from the state library with
  the same segment-count distribution; series lengths are scaled down by
  ``length_scale`` so the full multi-method evaluation fits a laptop budget.
* **UTSA-like** — the UCR Time Series Semantic Segmentation Archive contains
  32 mostly biological/mechanical series (2k-40k points, 2-3 segments); the
  stand-in mirrors those counts.

Both functions are deterministic given a seed, so experiments are exactly
repeatable.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import TimeSeriesDataset
from repro.datasets.synthetic import compose_stream, random_segment_specs

#: Segment-count distribution of the real TSSB (1 to 9 segments, median 3).
_TSSB_SEGMENT_CHOICES = (1, 2, 2, 3, 3, 3, 4, 4, 5, 6, 7, 9)

#: Segment-count distribution of the real UTSA (2 to 3 segments, median 2).
_UTSA_SEGMENT_CHOICES = (2, 2, 2, 3)


def make_tssb_like(
    n_series: int = 75,
    length_scale: float = 1.0,
    seed: int = 1311,
) -> list[TimeSeriesDataset]:
    """Generate the TSSB-like benchmark collection.

    Parameters
    ----------
    n_series:
        Number of series (the real benchmark has 75).
    length_scale:
        Multiplier on the segment lengths (1.0 gives segments of roughly
        300-1 500 points, i.e. series of ~0.3k-10k points).
    seed:
        Seed of the collection; series ``i`` uses ``seed + i``.
    """
    collection: list[TimeSeriesDataset] = []
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        n_segments = int(rng.choice(_TSSB_SEGMENT_CHOICES))
        low = max(int(300 * length_scale), 60)
        high = max(int(1_500 * length_scale), low + 10)
        allow_repeats = rng.random() < 0.15  # the reoccurring-segments sub-case
        specs = random_segment_specs(
            n_segments, (low, high), rng, allow_repeats=allow_repeats
        )
        dataset = compose_stream(
            specs,
            name=f"tssb_like_{index:03d}",
            collection="TSSB-like",
            sample_rate=100.0,
            seed=seed + index,
            subsequence_width=int(rng.integers(20, 80)),
        )
        collection.append(dataset)
    return collection


def make_utsa_like(
    n_series: int = 32,
    length_scale: float = 1.0,
    seed: int = 2905,
) -> list[TimeSeriesDataset]:
    """Generate the UTSA-like benchmark collection (32 longer, 2-3 segment series)."""
    collection: list[TimeSeriesDataset] = []
    biological_states = [
        "ecg_normal",
        "ecg_irregular",
        "respiration_calm",
        "respiration_excited",
        "strong_activity",
        "light_activity",
        "slow_sine",
        "fast_sine",
        "square",
    ]
    for index in range(n_series):
        rng = np.random.default_rng(seed + index)
        n_segments = int(rng.choice(_UTSA_SEGMENT_CHOICES))
        low = max(int(1_000 * length_scale), 150)
        high = max(int(4_000 * length_scale), low + 10)
        specs = random_segment_specs(n_segments, (low, high), rng, states=biological_states)
        dataset = compose_stream(
            specs,
            name=f"utsa_like_{index:03d}",
            collection="UTSA-like",
            sample_rate=100.0,
            seed=seed + index,
            subsequence_width=int(rng.integers(30, 120)),
        )
        collection.append(dataset)
    return collection
