"""Segment-level signal generators used to synthesise annotated streams.

The paper evaluates on real sensor recordings (IMU, ECG, EEG, respiration,
EDA, ...).  Those archives are not redistributable inside this offline
reproduction, so each generator below produces a signal family with the same
qualitative behaviour: repetitive temporal patterns whose shape, period,
amplitude and noise level encode the latent state of the observed process.
A change of generator (or of generator parameters) between two consecutive
segments therefore produces exactly the kind of change point ClaSS and its
competitors are designed to find.

Every generator is a pure function of ``(length, rng, **params)`` returning a
1-d float array, which keeps the composition in
:mod:`repro.datasets.synthetic` trivially extensible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.exceptions import ConfigurationError


def sine_wave(
    length: int,
    rng: np.random.Generator,
    period: float = 50.0,
    amplitude: float = 1.0,
    noise: float = 0.05,
    phase: float | None = None,
) -> np.ndarray:
    """Sinusoid with a fixed period — the simplest repetitive temporal pattern."""
    phase = rng.uniform(0, 2 * np.pi) if phase is None else phase
    t = np.arange(length)
    signal = amplitude * np.sin(2.0 * np.pi * t / period + phase)
    return signal + rng.normal(0.0, noise, length)


def square_wave(
    length: int,
    rng: np.random.Generator,
    period: float = 60.0,
    amplitude: float = 1.0,
    noise: float = 0.05,
    duty: float = 0.5,
) -> np.ndarray:
    """Square wave, a sharp-edged periodic pattern (machine on/off cycles)."""
    t = np.arange(length) + rng.integers(0, int(period))
    phase = (t % period) / period
    signal = amplitude * np.where(phase < duty, 1.0, -1.0)
    return signal + rng.normal(0.0, noise, length)


def sawtooth_wave(
    length: int,
    rng: np.random.Generator,
    period: float = 70.0,
    amplitude: float = 1.0,
    noise: float = 0.05,
) -> np.ndarray:
    """Sawtooth ramp pattern (charging/discharging processes)."""
    t = np.arange(length) + rng.integers(0, int(period))
    signal = amplitude * (2.0 * ((t % period) / period) - 1.0)
    return signal + rng.normal(0.0, noise, length)


def ar_process(
    length: int,
    rng: np.random.Generator,
    coefficients: tuple[float, ...] = (0.6, -0.3),
    noise: float = 1.0,
    mean: float = 0.0,
) -> np.ndarray:
    """Stationary autoregressive process (broadband physiological noise)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    order = coefficients.shape[0]
    burn_in = 10 * order
    innovations = rng.normal(0.0, noise, length + burn_in)
    signal = np.zeros(length + burn_in)
    for t in range(order, length + burn_in):
        signal[t] = float(coefficients @ signal[t - order : t][::-1]) + innovations[t]
    return mean + signal[burn_in:]


def gaussian_noise(
    length: int,
    rng: np.random.Generator,
    mean: float = 0.0,
    std: float = 1.0,
) -> np.ndarray:
    """Plain white noise with a configurable level (sensor at rest)."""
    return rng.normal(mean, std, length)


def random_walk(
    length: int,
    rng: np.random.Generator,
    step_std: float = 0.1,
    drift: float = 0.0,
) -> np.ndarray:
    """Integrated noise (slow wandering baselines such as temperature)."""
    steps = rng.normal(drift, step_std, length)
    walk = np.cumsum(steps)
    return walk - walk.mean()


def ecg_like(
    length: int,
    rng: np.random.Generator,
    beat_period: int = 80,
    amplitude: float = 1.0,
    noise: float = 0.03,
    irregular: bool = False,
    fibrillation: bool = False,
) -> np.ndarray:
    """Synthetic single-lead ECG built from Gaussian P-QRS-T bumps.

    ``irregular`` jitters the beat-to-beat interval (arrhythmia-like),
    ``fibrillation`` replaces the organised beats with fast disorganised
    oscillations (ventricular-fibrillation-like), matching the transitions of
    the MIT-BIH archives used in Figures 1 and 9.
    """
    if fibrillation:
        base = sine_wave(
            length, rng, period=max(beat_period / 6.0, 8.0), amplitude=0.6 * amplitude, noise=noise
        )
        wobble = sine_wave(
            length, rng, period=max(beat_period / 2.5, 15.0), amplitude=0.3 * amplitude, noise=noise
        )
        return base + wobble

    signal = np.zeros(length)
    template_t = np.linspace(0.0, 1.0, beat_period)

    def bump(centre: float, width: float, height: float) -> np.ndarray:
        return height * np.exp(-0.5 * ((template_t - centre) / width) ** 2)

    template = (
        bump(0.18, 0.035, 0.15)    # P wave
        - bump(0.36, 0.012, 0.18)  # Q
        + bump(0.40, 0.016, 1.0)   # R
        - bump(0.44, 0.012, 0.22)  # S
        + bump(0.65, 0.06, 0.3)    # T wave
    ) * amplitude

    position = 0
    while position < length:
        period = beat_period
        if irregular:
            period = max(int(beat_period * rng.uniform(0.6, 1.5)), 10)
            if rng.random() < 0.15:
                # premature complex: early, taller beat
                period = max(int(beat_period * 0.5), 10)
        segment = template[: min(beat_period, length - position)]
        scale = rng.uniform(1.2, 1.6) if (irregular and rng.random() < 0.2) else 1.0
        signal[position : position + segment.shape[0]] += scale * segment
        position += period
    return signal + rng.normal(0.0, noise, length)


def activity_like(
    length: int,
    rng: np.random.Generator,
    base_period: float = 45.0,
    amplitude: float = 1.0,
    harmonics: int = 3,
    noise: float = 0.1,
    burstiness: float = 0.0,
) -> np.ndarray:
    """Accelerometer-style signal: a harmonic mixture with optional bursts.

    Walking, running and cycling produce quasi-periodic accelerations with
    activity-specific fundamental frequencies and harmonic content; resting
    produces low-amplitude noise.  ``burstiness`` adds irregular high-energy
    bursts (e.g. rope jumping, stair climbing).
    """
    t = np.arange(length)
    phase = rng.uniform(0, 2 * np.pi, harmonics)
    weights = np.array([1.0 / (h + 1) for h in range(harmonics)])
    signal = np.zeros(length)
    for h in range(harmonics):
        signal += weights[h] * np.sin(2.0 * np.pi * (h + 1) * t / base_period + phase[h])
    signal *= amplitude / max(np.abs(signal).max(), 1e-9)
    if burstiness > 0:
        n_bursts = max(1, int(burstiness * length / 200))
        for _ in range(n_bursts):
            centre = rng.integers(0, length)
            width = int(rng.uniform(10, 40))
            lo, hi = max(0, centre - width), min(length, centre + width)
            signal[lo:hi] += rng.normal(0.0, amplitude * burstiness, hi - lo)
    return signal + rng.normal(0.0, noise, length)


def respiration_like(
    length: int,
    rng: np.random.Generator,
    breath_period: float = 250.0,
    amplitude: float = 1.0,
    noise: float = 0.05,
    variability: float = 0.1,
) -> np.ndarray:
    """Slow quasi-periodic respiration signal with breath-to-breath variability."""
    t = np.arange(length, dtype=np.float64)
    # frequency modulation produces breath-length variability
    modulation = 1.0 + variability * np.sin(
        2.0 * np.pi * t / (breath_period * 7.3) + rng.uniform(0, 6.28)
    )
    phase = np.cumsum(2.0 * np.pi * modulation / breath_period)
    signal = amplitude * np.sin(phase)
    return signal + rng.normal(0.0, noise, length)


def eeg_like(
    length: int,
    rng: np.random.Generator,
    band: tuple[float, float] = (0.02, 0.08),
    amplitude: float = 1.0,
    noise: float = 0.1,
) -> np.ndarray:
    """Band-limited noise mimicking EEG activity in a given frequency band.

    Sleep stages differ in their dominant EEG bands (delta for deep sleep,
    alpha/beta for wake), which this generator reproduces by filtering white
    noise to a normalised frequency band via the FFT.
    """
    low, high = band
    if not 0.0 < low < high <= 0.5:
        raise ConfigurationError("band must satisfy 0 < low < high <= 0.5")
    white = rng.normal(0.0, 1.0, length)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(length)
    mask = (freqs >= low) & (freqs <= high)
    spectrum[~mask] = 0.0
    filtered = np.fft.irfft(spectrum, length)
    scale = amplitude / max(filtered.std(), 1e-9)
    return filtered * scale + rng.normal(0.0, noise, length)


#: Registry of all segment generators, used by the random composition helpers.
GENERATORS: dict[str, Callable[..., np.ndarray]] = {
    "sine": sine_wave,
    "square": square_wave,
    "sawtooth": sawtooth_wave,
    "ar": ar_process,
    "noise": gaussian_noise,
    "random_walk": random_walk,
    "ecg": ecg_like,
    "activity": activity_like,
    "respiration": respiration_like,
    "eeg": eeg_like,
}


def get_generator(name: str) -> Callable[..., np.ndarray]:
    """Look up a segment generator by name."""
    if name not in GENERATORS:
        raise ConfigurationError(
            f"unknown generator {name!r}; expected one of {sorted(GENERATORS)}"
        )
    return GENERATORS[name]
