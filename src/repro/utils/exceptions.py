"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so downstream
users can catch a single base class.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when an input array or scalar fails validation."""


class ConfigurationError(ReproError, ValueError):
    """Raised when mutually incompatible or out-of-range parameters are given."""


class NotEnoughDataError(ReproError, RuntimeError):
    """Raised when an operation is requested before enough data has been observed."""


class CorruptCheckpointError(ReproError, RuntimeError):
    """Raised when a durable checkpoint or spool record fails its integrity check."""
