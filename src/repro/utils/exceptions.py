"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so downstream
users can catch a single base class.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when an input array or scalar fails validation."""


class ConfigurationError(ReproError, ValueError):
    """Raised when mutually incompatible or out-of-range parameters are given."""


class NotEnoughDataError(ReproError, RuntimeError):
    """Raised when an operation is requested before enough data has been observed."""


class CorruptCheckpointError(ReproError, RuntimeError):
    """Raised when a durable checkpoint or spool record fails its integrity check."""


class StorageError(ReproError, RuntimeError):
    """Raised by the :mod:`repro.storage` tier: unknown streams, bad manifests,
    attempts to re-segment a stream that has no recorded run."""


class CorruptRecordError(StorageError):
    """Raised when a stored chunk segment or event-log record fails its
    CRC/length integrity check (torn write or on-disk corruption)."""


class HistoryTruncatedError(StorageError, LookupError):
    """Raised when an event-history cursor predates the retained window.

    Carries ``earliest``, the oldest cursor that can still be served.
    """

    def __init__(self, message: str, earliest: int = 0) -> None:
        super().__init__(message)
        self.earliest = int(earliest)
