"""Running and sliding statistics used by the streaming k-NN (paper Eqns. 1-2).

The paper derives subsequence means and standard deviations from differenced
cumulative running sums so that each can be obtained in O(1) from its
predecessor.  This module provides both the vectorised batch helpers (used
once per window update, O(d) total) and an O(1)-per-point online accumulator
used by several competitors.
"""

from __future__ import annotations

import numpy as np


def sliding_sums(values: np.ndarray, window_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the sliding sums and sliding sums of squares for each offset.

    Parameters
    ----------
    values:
        1-d array of length ``n``.
    window_size:
        Subsequence width ``w``.

    Returns
    -------
    (sums, squared_sums):
        Arrays of length ``n - w + 1`` where entry ``i`` covers
        ``values[i:i + w]``.
    """
    values = np.asarray(values, dtype=np.float64)
    window_size = int(window_size)
    if values.shape[0] < window_size:
        raise ValueError("series shorter than window size")
    csum = np.concatenate(([0.0], np.cumsum(values)))
    csum2 = np.concatenate(([0.0], np.cumsum(values * values)))
    sums = csum[window_size:] - csum[:-window_size]
    squared = csum2[window_size:] - csum2[:-window_size]
    return sums, squared


def sliding_mean_std(
    values: np.ndarray, window_size: int, std_floor: float = 1e-8
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding means and standard deviations per subsequence offset.

    Standard deviations are floored at ``std_floor`` so that constant
    subsequences do not produce divisions by zero in the correlation
    computation (their correlation is handled separately).
    """
    sums, squared = sliding_sums(values, window_size)
    mean = sums / window_size
    variance = squared / window_size - mean * mean
    variance = np.maximum(variance, 0.0)
    std = np.sqrt(variance)
    std = np.maximum(std, std_floor)
    return mean, std


def sliding_complexity(values: np.ndarray, window_size: int) -> np.ndarray:
    """Complexity estimate per subsequence, used by the CID similarity.

    The complexity estimate of Batista et al. is the Euclidean norm of the
    first difference of the subsequence.  Computed for every offset via a
    cumulative sum of squared differences.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] < window_size:
        raise ValueError("series shorter than window size")
    diffs = np.diff(values)
    sq = diffs * diffs
    csum = np.concatenate(([0.0], np.cumsum(sq)))
    # subsequence i spans values[i:i+w]; its diffs span indices [i, i+w-2]
    per_window = csum[window_size - 1:] - csum[: values.shape[0] - window_size + 1]
    return np.sqrt(np.maximum(per_window, 0.0))


class RunningStats:
    """Online mean / variance accumulator (Welford's algorithm).

    Used by the drift-detection competitors (DDM, HDDM, Page-Hinkley, the
    adapters) where per-point O(1) updates and numerical stability matter.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def reset(self) -> None:
        """Forget all observed values."""
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Incorporate one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    @property
    def mean(self) -> float:
        """Current sample mean (0.0 before the first observation)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Current (population) variance."""
        if self._count < 1:
            return 0.0
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Current (population) standard deviation."""
        return float(np.sqrt(max(self.variance, 0.0)))


class ExponentialMovingStats:
    """Exponentially weighted mean/variance, used by NEWMA and HDDM-W."""

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = float(alpha)
        self._mean = 0.0
        self._var = 0.0
        self._initialised = False

    def reset(self) -> None:
        """Forget all observed values."""
        self._mean = 0.0
        self._var = 0.0
        self._initialised = False

    def update(self, value: float) -> None:
        """Incorporate one observation with exponential forgetting."""
        if not self._initialised:
            self._mean = float(value)
            self._var = 0.0
            self._initialised = True
            return
        delta = value - self._mean
        self._mean += self.alpha * delta
        self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta * delta)

    @property
    def mean(self) -> float:
        """Current exponentially weighted mean."""
        return self._mean

    @property
    def variance(self) -> float:
        """Current exponentially weighted variance."""
        return self._var

    @property
    def std(self) -> float:
        """Current exponentially weighted standard deviation."""
        return float(np.sqrt(max(self._var, 0.0)))
