"""Shared utilities: validation, running statistics and library exceptions."""

from repro.utils.exceptions import (
    ConfigurationError,
    NotEnoughDataError,
    ReproError,
    ValidationError,
)
from repro.utils.running_stats import RunningStats, sliding_mean_std, sliding_sums
from repro.utils.validation import (
    check_array_1d,
    check_positive_int,
    check_probability,
    check_window_size,
)

__all__ = [
    "ReproError",
    "ValidationError",
    "ConfigurationError",
    "NotEnoughDataError",
    "RunningStats",
    "sliding_mean_std",
    "sliding_sums",
    "check_array_1d",
    "check_positive_int",
    "check_probability",
    "check_window_size",
]
