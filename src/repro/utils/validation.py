"""Input validation helpers used across the library.

The helpers normalise inputs to numpy arrays, raise
:class:`~repro.utils.exceptions.ValidationError` with actionable messages and
keep the validation logic in a single place so every public entry point
behaves consistently.
"""

from __future__ import annotations

import pickle
from typing import Iterable

import numpy as np

from repro.utils.exceptions import ConfigurationError, ValidationError


def check_array_1d(
    values: Iterable[float] | np.ndarray,
    name: str = "values",
    min_length: int = 1,
    allow_constant: bool = True,
    dtype: type = np.float64,
) -> np.ndarray:
    """Validate and convert ``values`` to a 1-dimensional float array.

    Parameters
    ----------
    values:
        Any iterable of numbers (list, tuple, numpy array, generator).
    name:
        Name used in error messages.
    min_length:
        Minimum number of elements required.
    allow_constant:
        If False, reject arrays where every value is identical.
    dtype:
        Target dtype of the returned array.

    Returns
    -------
    numpy.ndarray
        A contiguous 1-d array of ``dtype``.

    Raises
    ------
    ValidationError
        If the input is not 1-dimensional, too short, contains non-finite
        values, or is constant while ``allow_constant`` is False.
    """
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=dtype)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.shape[0] < min_length:
        raise ValidationError(
            f"{name} must contain at least {min_length} values, got {array.shape[0]}"
        )
    if not np.isfinite(array).all():
        raise ValidationError(f"{name} must not contain NaN or infinite values")
    if not allow_constant and array.shape[0] > 1 and np.allclose(array, array[0]):
        raise ValidationError(f"{name} must not be constant")
    return np.ascontiguousarray(array)


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer of at least ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value: float, name: str, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float in [0, 1]") from exc
    low_ok = value >= 0.0 if inclusive else value > 0.0
    high_ok = value <= 1.0 if inclusive else value < 1.0
    if not (low_ok and high_ok and np.isfinite(value)):
        raise ValidationError(f"{name} must lie in the unit interval, got {value}")
    return value


def check_window_size(
    window_size: int, n_timepoints: int | None = None, name: str = "window_size"
) -> int:
    """Validate a sliding window / subsequence width parameter.

    Parameters
    ----------
    window_size:
        Requested width.
    n_timepoints:
        Optional length of the series the window is applied to.  When given,
        the window must fit inside the series.
    """
    window_size = check_positive_int(window_size, name, minimum=2)
    if n_timepoints is not None and window_size > n_timepoints:
        raise ValidationError(
            f"{name}={window_size} does not fit into a series of length {n_timepoints}"
        )
    return window_size


def check_change_points(
    change_points: Iterable[int] | np.ndarray,
    n_timepoints: int,
    name: str = "change_points",
) -> np.ndarray:
    """Validate an array of change-point offsets against a series length.

    Change points must be strictly increasing integers in ``(0, n_timepoints)``.
    The conventional first change point at offset 0 and the series end are not
    part of the array (they are implicit, following the paper's Definition 4).
    """
    array = np.asarray(list(change_points), dtype=np.int64)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional")
    if array.size == 0:
        return array
    if (array <= 0).any() or (array >= n_timepoints).any():
        raise ValidationError(
            f"{name} must lie strictly inside (0, {n_timepoints}), got {array.tolist()}"
        )
    if (np.diff(array) <= 0).any():
        raise ValidationError(f"{name} must be strictly increasing, got {array.tolist()}")
    return array


def check_picklable(value, name: str, remedy: str = "run with n_workers=1") -> None:
    """Reject a value that cannot cross a process boundary, with a remedy hint.

    Shared by every parallel execution layer (the evaluation grid and the
    sharded stream engine): anything dispatched to worker processes —
    factories, sources, task specs — must survive ``pickle``.
    """
    try:
        pickle.dumps(value)
    except Exception as error:
        raise ConfigurationError(
            f"{name} is not picklable and cannot be dispatched to worker "
            f"processes ({error}); use a module-level class or function "
            f"instead of a closure/lambda, or {remedy}"
        ) from error
