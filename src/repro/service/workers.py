"""Asyncio shard workers: serialized detector execution + elastic rebalance.

Every stream is owned by exactly one :class:`ShardWorker` at a time (the
CRC-32 assignment from :mod:`repro.service.streams`, until a rebalance moves
it).  A worker is a single asyncio task draining a FIFO job queue, so all
mutation of a stream's detector is serialized — batches of one stream are
processed in arrival order, and a ``freeze`` job doubles as a barrier: by
the time it runs, every batch enqueued before it has been fully processed.

Job kinds:

* ``process`` — run one observation batch through the detector (chunked via
  the stream's ``chunk_size``), collect the *new* typed events from the
  detector's history, stamp batch latency into the stream metrics and fan
  the events out to subscribers.
* ``freeze``  — serialise the detector (``save_state()``) and park the
  payload on the stream; the stream stops accepting observations.
* ``adopt``   — rebuild the detector from a frozen payload via the
  checkpoint layer's :func:`~repro.api.checkpoint.restore` (the payload is
  pickle round-tripped first, i.e. genuinely *shipped*), attach it to the
  stream and resume — bit-identical to an uninterrupted run.

A failing job never kills the worker: the exception is routed to the
awaiting request handler's future and the loop continues with the next job.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api import ScoreEvent, restore
from repro.api.protocol import iter_chunks
from repro.service.streams import StreamState


@dataclass
class _Job:
    """One unit of serialized work bound for a shard worker."""

    kind: str
    stream: StreamState
    values: np.ndarray | None = None
    payload: dict | None = None
    #: Enqueue timestamp — event latency is measured from here, so it
    #: includes time spent queued behind other streams on the same shard.
    created_at: float = field(default_factory=time.perf_counter)
    future: asyncio.Future = field(
        default_factory=lambda: asyncio.get_running_loop().create_future()
    )


class ShardWorker:
    """One shard's executor: a FIFO queue drained by a single asyncio task."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.queue: asyncio.Queue[_Job] = asyncio.Queue()
        self.n_jobs = 0
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        """Spawn the drain task (idempotent)."""
        if self._task is None:
            self._task = asyncio.create_task(self._run(), name=f"shard-worker-{self.shard}")

    async def stop(self) -> None:
        """Cancel the drain task and wait for it to finish."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def submit(self, job: _Job) -> Any:
        """Enqueue a job and await its result (exceptions re-raised here)."""
        await self.queue.put(job)
        return await job.future

    async def _run(self) -> None:
        while True:
            job = await self.queue.get()
            self.n_jobs += 1
            try:
                result = self._execute(job)
            except Exception as error:  # job fails; worker survives
                if not job.future.cancelled():
                    job.future.set_exception(error)
            else:
                if not job.future.cancelled():
                    job.future.set_result(result)
            finally:
                self.queue.task_done()
            # yield to the event loop between CPU-bound jobs so accepted
            # connections and other shards' handlers stay responsive
            await asyncio.sleep(0)

    # ------------------------------------------------------------------ #

    def _execute(self, job: _Job) -> Any:
        if job.kind == "process":
            return self._process(job.stream, job.values, job.created_at)
        if job.kind == "freeze":
            return self._freeze(job.stream)
        if job.kind == "adopt":
            return self._adopt(job.stream, job.payload)
        raise RuntimeError(f"unknown shard job kind {job.kind!r}")

    def _process(
        self, stream: StreamState, values: np.ndarray, enqueued_at: float
    ) -> list[dict]:
        """Ingest one batch; return the freshly emitted event payloads."""
        segmenter = stream.segmenter
        chunk_size = stream.chunk_size or values.shape[0]
        for chunk in iter_chunks(values, chunk_size):
            segmenter.process(chunk)
        history = segmenter.events()
        fresh = list(history[stream.n_emitted :])
        stream.n_emitted = len(history)
        if stream.include_scores:
            score = getattr(segmenter, "current_score", None)
            if score is not None:
                fresh.append(ScoreEvent(at=int(segmenter.n_seen), score=float(score)))
        elapsed = time.perf_counter() - enqueued_at
        stream.metrics.record(values.shape[0], fresh, elapsed)
        payloads = [event.to_dict() for event in fresh]
        stream.publish(payloads)
        return payloads

    def _freeze(self, stream: StreamState) -> dict:
        """Serialise the detector state; park it on the stream for adoption."""
        payload = stream.segmenter.save_state()
        stream.checkpoint = payload
        stream.segmenter = None  # ownership moves with the payload
        return {
            "name": stream.name,
            "frozen": True,
            "checkpoint_format": payload.get("format"),
        }

    def _adopt(self, stream: StreamState, payload: dict) -> dict:
        """Rebuild the detector from a shipped checkpoint payload; go live."""
        shipped = pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        segmenter = restore(shipped)
        stream.segmenter = segmenter
        stream.checkpoint = None
        stream.shard = self.shard
        stream.frozen = False
        return {
            "name": stream.name,
            "frozen": False,
            "shard": self.shard,
            "n_seen": int(segmenter.n_seen),
        }


class WorkerPool:
    """The service's fixed set of shard workers, indexed by shard id."""

    def __init__(self, n_shards: int) -> None:
        self.workers = [ShardWorker(shard) for shard in range(n_shards)]

    def start(self) -> None:
        """Start every worker's drain task."""
        for worker in self.workers:
            worker.start()

    async def stop(self) -> None:
        """Stop every worker."""
        for worker in self.workers:
            await worker.stop()

    def worker_for(self, stream: StreamState) -> ShardWorker:
        """The worker currently owning a stream (by its ``shard`` field)."""
        return self.workers[stream.shard]

    async def process(self, stream: StreamState, values: np.ndarray) -> list[dict]:
        """Run one batch on the stream's current worker; return event payloads."""
        return await self.worker_for(stream).submit(
            _Job(kind="process", stream=stream, values=values)
        )

    async def freeze(self, stream: StreamState) -> dict:
        """Barrier-freeze a stream on its current worker."""
        return await self.worker_for(stream).submit(_Job(kind="freeze", stream=stream))

    async def adopt(self, stream: StreamState, shard: int) -> dict:
        """Hand a frozen stream's checkpoint to ``shard`` and resume there."""
        return await self.workers[shard].submit(
            _Job(kind="adopt", stream=stream, payload=stream.checkpoint)
        )

    def snapshot(self) -> list[dict]:
        """Per-worker queue depth and served-job counters for ``/metrics``."""
        return [
            {"shard": worker.shard, "queue_depth": worker.queue.qsize(), "n_jobs": worker.n_jobs}
            for worker in self.workers
        ]
