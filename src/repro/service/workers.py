"""Asyncio shard workers: serialized detector execution + fault tolerance.

Every stream is owned by exactly one :class:`ShardWorker` at a time (the
CRC-32 assignment from :mod:`repro.service.streams`, until a rebalance moves
it).  A worker is a single asyncio task draining a FIFO job queue, so all
mutation of a stream's detector is serialized — batches of one stream are
processed in arrival order, and a ``freeze`` job doubles as a barrier: by
the time it runs, every batch enqueued before it has been fully processed.

Job kinds:

* ``process`` — run one observation batch through the detector (chunked via
  the stream's ``chunk_size``), collect the *new* typed events from the
  detector's history, stamp batch latency into the stream metrics and fan
  the events out to subscribers.  With durability enabled the batch is
  appended to the stream's write-ahead tail (fsynced) *before* any detector
  mutation, and a periodic checkpoint may fire afterwards.  Client-supplied
  sequence numbers make the job idempotent: a duplicate of the last acked
  batch returns the cached ack instead of double-processing.
* ``freeze``  — serialise the detector (``save_state()``) and park the
  payload on the stream; the stream stops accepting observations.
* ``adopt``   — rebuild the detector from a frozen payload via the
  checkpoint layer's :func:`~repro.api.checkpoint.restore` (the payload is
  pickle round-tripped first, i.e. genuinely *shipped*), attach it to the
  stream and resume — bit-identical to an uninterrupted run.

Failure containment: an *expected* job failure (a typed
:class:`~repro.service.errors.ServiceError`, bad state, a detector raising)
fails only that job's future — the traceback is logged, the error counter
incremented, and the worker keeps draining.  An injected
:class:`~repro.service.faults.WorkerCrash` or a per-job deadline timeout
kills the worker task itself; the in-flight job's future gets a retryable
503 ``worker-crashed`` and the :mod:`~repro.service.supervisor` restarts
the shard, restoring its streams from their durable spools.

Load shedding: each queue is bounded (``max_queue_depth``); a full queue
rejects the submit with a 503 ``overloaded`` carrying ``Retry-After``, so
clients back off instead of growing an unbounded backlog.
"""

from __future__ import annotations

import asyncio
import logging
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.api import restore
from repro.api.protocol import iter_chunks
from repro.service.errors import ServiceError
from repro.service.faults import WorkerCrash
from repro.service.streams import StreamState

logger = logging.getLogger(__name__)


@dataclass
class _Job:
    """One unit of serialized work bound for a shard worker."""

    kind: str
    stream: StreamState
    values: np.ndarray | None = None
    payload: dict | None = None
    #: Client-supplied sequence number for idempotent ingestion (optional).
    seq: int | None = None
    #: Enqueue timestamp — event latency is measured from here, so it
    #: includes time spent queued behind other streams on the same shard.
    created_at: float = field(default_factory=time.perf_counter)
    future: asyncio.Future = field(
        default_factory=lambda: asyncio.get_running_loop().create_future()
    )


class ShardWorker:
    """One shard's executor: a FIFO queue drained by a single asyncio task."""

    def __init__(
        self,
        shard: int,
        *,
        max_queue_depth: int | None = None,
        job_deadline: float | None = None,
        retry_after: float = 0.05,
        durability=None,
        faults=None,
        on_error: Callable[[str], None] | None = None,
    ) -> None:
        self.shard = shard
        self.queue: asyncio.Queue[_Job] = asyncio.Queue(maxsize=max_queue_depth or 0)
        self.max_queue_depth = max_queue_depth
        self.job_deadline = job_deadline
        self.retry_after = retry_after
        self.durability = durability
        self.faults = faults
        self.on_error = on_error or (lambda code: None)
        self.n_jobs = 0
        self.task: asyncio.Task | None = None

    def start(self) -> None:
        """Spawn the drain task (idempotent)."""
        if self.task is None:
            self.task = asyncio.create_task(self._run(), name=f"shard-worker-{self.shard}")

    async def stop(self) -> None:
        """Cancel the drain task and wait for it to finish."""
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except asyncio.CancelledError:
                pass
            except Exception:
                pass  # task already died; the supervisor logged the cause
            self.task = None

    def submit_nowait(self, job: _Job) -> asyncio.Future:
        """Enqueue a job, shedding load with a typed 503 when the queue is full."""
        try:
            self.queue.put_nowait(job)
        except asyncio.QueueFull:
            raise ServiceError(
                503,
                "overloaded",
                f"shard {self.shard} queue is full ({self.queue.qsize()} jobs); retry later",
                detail={"shard": self.shard, "max_queue_depth": self.max_queue_depth},
                retry_after=self.retry_after,
            ) from None
        return job.future

    async def submit(self, job: _Job) -> Any:
        """Enqueue a job (waiting for queue room) and await its result."""
        await self.queue.put(job)
        return await job.future

    async def _run(self) -> None:
        while True:
            job = await self.queue.get()
            self.n_jobs += 1
            try:
                if self.job_deadline is not None:
                    result = await asyncio.wait_for(self._execute(job), self.job_deadline)
                else:
                    result = await self._execute(job)
            except asyncio.CancelledError:
                self.queue.task_done()
                raise
            except (WorkerCrash, asyncio.TimeoutError, TimeoutError) as error:
                # the worker itself dies: fail the in-flight job with a
                # retryable 503 and let the supervisor restart + recover
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError(
                            503,
                            "worker-crashed",
                            f"shard {self.shard} worker died mid-job; retry after recovery",
                            detail={"shard": self.shard, "cause": str(error) or type(error).__name__},
                            retry_after=self.retry_after,
                        )
                    )
                self.queue.task_done()
                if isinstance(error, WorkerCrash):
                    raise
                raise WorkerCrash(
                    f"shard {self.shard} job exceeded the {self.job_deadline}s deadline"
                ) from error
            except ServiceError as error:  # expected client error: no traceback
                if not job.future.done():
                    job.future.set_exception(error)
                self.queue.task_done()
            except Exception as error:  # job fails; worker survives
                logger.exception(
                    "shard %d job %r on stream %r failed",
                    self.shard, job.kind, job.stream.name,
                )
                self.on_error("worker-job-error")
                if not job.future.done():
                    job.future.set_exception(error)
                self.queue.task_done()
            else:
                if not job.future.done():
                    job.future.set_result(result)
                self.queue.task_done()
            # yield to the event loop between CPU-bound jobs so accepted
            # connections and other shards' handlers stay responsive
            await asyncio.sleep(0)

    # ------------------------------------------------------------------ #

    async def _execute(self, job: _Job) -> Any:
        if self.faults is not None:
            await self.faults.before_job(self.shard, job.kind, job.stream.name)
        if job.kind == "process":
            return self._process(job.stream, job.values, job.seq, job.created_at)
        if job.kind == "freeze":
            return self._freeze(job.stream)
        if job.kind == "adopt":
            return self._adopt(job.stream, job.payload)
        raise RuntimeError(f"unknown shard job kind {job.kind!r}")

    def _process(
        self,
        stream: StreamState,
        values: np.ndarray,
        seq: int | None,
        enqueued_at: float,
    ) -> dict:
        """Ingest one batch; return its ack body (name, n_seen, fresh events)."""
        # authoritative idempotency check, serialized with all mutation
        if seq is not None and stream.last_seq is not None:
            if seq == stream.last_seq and stream.last_ack is not None:
                return {**stream.last_ack, "replayed": True}
            if seq <= stream.last_seq:
                if stream.duplicate_policy == "drop":
                    # policy says stale batches are expected (e.g. at-least-once
                    # upstreams): count + ack without touching detector state
                    stream.metrics.n_dropped_batches += 1
                    return {
                        "name": stream.name,
                        "n_seen": int(stream.segmenter.n_seen),
                        "events": [],
                        "seq": seq,
                        "dropped": True,
                    }
                raise ServiceError(
                    409,
                    "stale-sequence",
                    f"batch seq {seq} is behind the last acked seq {stream.last_seq}",
                    detail={"last_seq": stream.last_seq},
                )
        if self.durability is not None:
            # write-ahead: the accepted batch is durable before any mutation
            self.durability.log_batch(stream, values, seq)
        segmenter = stream.segmenter
        chunk_size = stream.chunk_size or values.shape[0]
        for index, chunk in enumerate(iter_chunks(values, chunk_size)):
            if self.faults is not None and index > 0:
                self.faults.mid_batch(self.shard, stream.name)
            segmenter.process(chunk)
        elapsed = time.perf_counter() - enqueued_at
        ack = stream.commit_batch(segmenter, int(values.shape[0]), elapsed, seq)
        if self.durability is not None:
            self.durability.maybe_checkpoint(stream)
        return ack

    def _freeze(self, stream: StreamState) -> dict:
        """Serialise the detector state; park it on the stream for adoption."""
        payload = stream.segmenter.save_state()
        stream.checkpoint = payload
        stream.segmenter = None  # ownership moves with the payload
        return {
            "name": stream.name,
            "frozen": True,
            "checkpoint_format": payload.get("format"),
        }

    def _adopt(self, stream: StreamState, payload: dict) -> dict:
        """Rebuild the detector from a shipped checkpoint payload; go live."""
        shipped = pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        segmenter = restore(shipped)
        stream.segmenter = segmenter
        stream.checkpoint = None
        stream.shard = self.shard
        stream.frozen = False
        if self.durability is not None:
            self.durability.checkpoint(stream)  # re-anchor the spool post-move
        return {
            "name": stream.name,
            "frozen": False,
            "shard": self.shard,
            "n_seen": int(segmenter.n_seen),
        }


class WorkerPool:
    """The service's fixed set of shard workers, indexed by shard id."""

    def __init__(
        self,
        n_shards: int,
        *,
        max_queue_depth: int | None = None,
        job_deadline: float | None = None,
        retry_after: float = 0.05,
        durability=None,
        faults=None,
        on_error: Callable[[str], None] | None = None,
    ) -> None:
        self._settings = dict(
            max_queue_depth=max_queue_depth,
            job_deadline=job_deadline,
            retry_after=retry_after,
            durability=durability,
            faults=faults,
            on_error=on_error,
        )
        self.workers = [ShardWorker(shard, **self._settings) for shard in range(n_shards)]

    def start(self) -> None:
        """Start every worker's drain task."""
        for worker in self.workers:
            worker.start()

    async def stop(self) -> None:
        """Stop every worker."""
        for worker in self.workers:
            await worker.stop()

    def replace(self, shard: int) -> ShardWorker:
        """Swap an *unstarted* replacement worker into a shard slot.

        Used by the supervisor after a crash: jobs submitted from now on
        queue on the replacement; the caller transfers pending jobs and
        starts the task once stream recovery is done.
        """
        replacement = ShardWorker(shard, **self._settings)
        replacement.n_jobs = self.workers[shard].n_jobs
        self.workers[shard] = replacement
        return replacement

    def worker_for(self, stream: StreamState) -> ShardWorker:
        """The worker currently owning a stream (by its ``shard`` field)."""
        return self.workers[stream.shard]

    async def process(
        self, stream: StreamState, values: np.ndarray, seq: int | None = None
    ) -> dict:
        """Run one batch on the stream's current worker; return its ack body.

        Sheds load with a 503 ``overloaded`` when the shard queue is full
        (the job is never enqueued).
        """
        future = self.worker_for(stream).submit_nowait(
            _Job(kind="process", stream=stream, values=values, seq=seq)
        )
        return await future

    async def freeze(self, stream: StreamState) -> dict:
        """Barrier-freeze a stream on its current worker."""
        return await self.worker_for(stream).submit(_Job(kind="freeze", stream=stream))

    async def adopt(self, stream: StreamState, shard: int) -> dict:
        """Hand a frozen stream's checkpoint to ``shard`` and resume there."""
        return await self.workers[shard].submit(
            _Job(kind="adopt", stream=stream, payload=stream.checkpoint)
        )

    async def drain(self) -> None:
        """Wait until every shard queue is fully processed (shutdown barrier)."""
        for worker in self.workers:
            await worker.queue.join()

    def snapshot(self) -> list[dict]:
        """Per-worker queue depth and served-job counters for ``/metrics``."""
        return [
            {"shard": worker.shard, "queue_depth": worker.queue.qsize(), "n_jobs": worker.n_jobs}
            for worker in self.workers
        ]
