"""Fault injection hooks for chaos-testing the segmentation service.

The service calls a small set of well-defined hook points; a
:class:`FaultInjector` armed with :class:`Fault` specs decides, per call,
whether to misbehave.  With no injector (the default) every hook is a no-op,
so production code paths carry no chaos logic of their own.

Supported fault kinds:

``kill-worker``
    Raise :class:`WorkerCrash` before a job starts executing — the shard
    worker task dies and the supervisor must restart it.
``kill-mid-batch``
    Raise :class:`WorkerCrash` between ingestion chunks of a ``process``
    job, leaving the in-memory detector half-mutated — recovery must rebuild
    it from the durable checkpoint + tail instead.
``delay``
    ``await asyncio.sleep(seconds)`` before a job executes, to push it past
    the supervisor's per-job deadline (a simulated hang).
``corrupt-checkpoint``
    Flip bytes in a checkpoint file right after it is written, so recovery
    must fall back to the previous checkpoint plus a longer tail replay.
``drop-ws``
    Abruptly sever a WebSocket connection (no close frame), so clients must
    resume via the ``?since=`` replay cursor.

Faults match on optional ``shard`` / ``stream`` selectors, fire on the
``after``-th matching invocation, and repeat ``times`` times.  Specs can be
armed programmatically or parsed from the ``REPRO_FAULTS`` environment
variable (used by the chaos CI job and ``bench_service_recovery.py``)::

    REPRO_FAULTS="kill-mid-batch:stream=s1:after=3,delay:shard=0:seconds=2"
"""

from __future__ import annotations

import asyncio
import logging
import os
from dataclasses import dataclass, field

from repro.utils.exceptions import ConfigurationError

logger = logging.getLogger(__name__)

#: Environment variable holding a comma-separated fault spec list.
FAULTS_ENV = "REPRO_FAULTS"

#: The fault kinds the service's hook points understand.
FAULT_KINDS = ("kill-worker", "kill-mid-batch", "delay", "corrupt-checkpoint", "drop-ws")


class FaultInjected(RuntimeError):
    """Base class for failures raised by the fault-injection layer."""


class WorkerCrash(FaultInjected):
    """An injected crash that must kill the shard worker task."""


@dataclass
class Fault:
    """One armed fault: what to do, where, and when.

    ``after`` is 1-based: ``after=3`` fires on the third matching hook
    invocation.  ``times`` bounds how often the fault fires (0 = exhausted).
    """

    kind: str
    shard: int | None = None
    stream: str | None = None
    after: int = 1
    times: int = 1
    seconds: float = 0.0
    #: Matching invocations observed so far (internal counter).
    seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 1 or self.times < 0 or self.seconds < 0:
            raise ConfigurationError("fault needs after >= 1, times >= 0, seconds >= 0")

    def matches(self, shard: int | None, stream: str | None) -> bool:
        """Whether this fault's selectors accept a hook invocation."""
        if self.shard is not None and shard != self.shard:
            return False
        if self.stream is not None and stream != self.stream:
            return False
        return True

    def should_fire(self, shard: int | None, stream: str | None) -> bool:
        """Count a matching invocation; report whether the fault triggers now."""
        if self.times <= 0 or not self.matches(shard, stream):
            return False
        self.seen += 1
        if self.seen >= self.after:
            self.times -= 1
            self.seen = 0 if self.times else self.seen
            return True
        return False


class FaultInjector:
    """The armed fault set plus the hook points the service calls.

    Example
    -------
    >>> injector = FaultInjector()
    >>> injector.arm("kill-mid-batch", stream="s1", after=2)
    Fault(kind='kill-mid-batch', shard=None, stream='s1', after=2, times=1, seconds=0.0)
    >>> injector.mid_batch(0, "other")    # no match: nothing happens
    """

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.faults: list[Fault] = list(faults or [])
        #: Log of faults that actually fired: ``(kind, shard, stream)``.
        self.fired: list[tuple[str, int | None, str | None]] = []

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "FaultInjector | None":
        """Build an injector from ``REPRO_FAULTS`` (None when unset/empty)."""
        spec = (environ if environ is not None else os.environ).get(FAULTS_ENV, "").strip()
        if not spec:
            return None
        faults = [parse_fault(part) for part in spec.split(",") if part.strip()]
        return cls(faults)

    def arm(self, kind: str, **options) -> Fault:
        """Arm one fault programmatically; returns the spec for inspection."""
        fault = Fault(kind, **options)
        self.faults.append(fault)
        return fault

    def _fire(self, kind: str, shard: int | None, stream: str | None) -> Fault | None:
        for fault in self.faults:
            if fault.kind == kind and fault.should_fire(shard, stream):
                self.fired.append((kind, shard, stream))
                logger.warning(
                    "fault injected: %s (shard=%s stream=%s)", kind, shard, stream
                )
                return fault
        return None

    # ------------------------------------------------------------------ #
    # hook points (called by workers / durability / server)
    # ------------------------------------------------------------------ #

    async def before_job(self, shard: int, job_kind: str, stream: str | None) -> None:
        """Worker hook, awaited before a job executes: delays and kills."""
        fault = self._fire("delay", shard, stream)
        if fault is not None:
            await asyncio.sleep(fault.seconds)
        if self._fire("kill-worker", shard, stream):
            raise WorkerCrash(f"injected kill-worker on shard {shard} ({job_kind})")

    def mid_batch(self, shard: int, stream: str | None) -> None:
        """Worker hook, called between ingestion chunks of a process job."""
        if self._fire("kill-mid-batch", shard, stream):
            raise WorkerCrash(f"injected kill-mid-batch on shard {shard}, stream {stream}")

    def corrupt_checkpoint(self, path, stream: str | None) -> bool:
        """Durability hook: flip bytes in a freshly written checkpoint file."""
        if not self._fire("corrupt-checkpoint", None, stream):
            return False
        raw = bytearray(path.read_bytes())
        # damage the pickled body (past the frame header) so the CRC check
        # on load reports corruption rather than the magic check
        start = max(10, len(raw) // 2 - 8)
        for offset in range(start, min(start + 16, len(raw))):
            raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        return True

    def drop_websocket(self, stream: str | None) -> bool:
        """Server hook: whether to sever the WebSocket connection now."""
        return self._fire("drop-ws", None, stream) is not None


def parse_fault(spec: str) -> Fault:
    """Parse one ``kind[:key=value]*`` fault spec (the ``REPRO_FAULTS`` grammar).

    Raises
    ------
    ConfigurationError
        On an unknown kind, unknown option key, or a non-numeric value for
        ``shard`` / ``after`` / ``times`` / ``seconds``.
    """
    kind, _, rest = spec.strip().partition(":")
    options: dict = {}
    for part in filter(None, rest.split(":")):
        key, separator, value = part.partition("=")
        if not separator:
            raise ConfigurationError(f"malformed fault option {part!r} in {spec!r}")
        key = key.strip()
        value = value.strip()
        try:
            if key in ("shard", "after", "times"):
                options[key] = int(value)
            elif key == "seconds":
                options[key] = float(value)
            elif key == "stream":
                options[key] = value
            else:
                raise ConfigurationError(f"unknown fault option {key!r} in {spec!r}")
        except ValueError as error:
            raise ConfigurationError(f"invalid fault option {part!r} in {spec!r}") from error
    return Fault(kind, **options)
