"""HTTP route table of the segmentation service.

Declarative method + path-pattern dispatch onto async handlers.  Handlers
receive the parsed :class:`~repro.service.protocol.HTTPRequest` and the
path parameters, and return ``(status, json_payload)``; all client failures
are raised as typed :class:`~repro.service.errors.ServiceError` and
rendered by the server.

Endpoints (the full protocol reference lives in ``docs/service.rst``):

========  =================================  =====================================
method    path                               purpose
========  =================================  =====================================
GET       ``/healthz``                       liveness + stream/shard counts
GET       ``/metrics``                       per-stream event counts, p50/p99
GET       ``/streams``                       list streams
POST      ``/streams/{name}``                create a stream from a JSON spec
GET       ``/streams/{name}``                stream info (shard, n_seen, ...)
DELETE    ``/streams/{name}``                drop a stream
POST      ``/streams/{name}/observations``   push a batch; returns fresh events
GET       ``/streams/{name}/events``         event log from ``?since=`` cursor
POST      ``/streams/{name}/freeze``         barrier + checkpoint (stops intake)
POST      ``/streams/{name}/resume``         adopt on ``{"shard": k}`` and resume
POST      ``/streams/{name}/rebalance``      freeze + ship + resume in one call
GET       ``/streams/{name}/ws``             WebSocket upgrade (push + subscribe)
========  =================================  =====================================
"""

from __future__ import annotations

import re
import time
from collections import Counter
from typing import Any, Awaitable, Callable

from repro.service.errors import ServiceError
from repro.service.protocol import HTTPRequest
from repro.service.streams import StreamRegistry, StreamState, quantile
from repro.service.workers import WorkerPool

Handler = Callable[..., Awaitable[tuple[int, Any]]]


class Router:
    """Method + path-pattern dispatch table."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register a handler for ``method`` on a ``/path/{param}`` pattern."""
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def match(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        """Resolve a request; raise typed 404/405 when nothing matches."""
        allowed: list[str] = []
        for route_method, regex, handler in self._routes:
            found = regex.match(path)
            if not found:
                continue
            if route_method == method:
                return handler, found.groupdict()
            allowed.append(route_method)
        if allowed:
            raise ServiceError(
                405,
                "method-not-allowed",
                f"{method} is not supported on {path}",
                detail={"allowed": sorted(set(allowed))},
            )
        raise ServiceError(404, "unknown-route", f"no route for {method} {path}")


class ServiceRoutes:
    """The service's handlers, bound to one registry + worker pool."""

    def __init__(
        self,
        registry: StreamRegistry,
        pool: WorkerPool,
        supervisor=None,
        durability=None,
        error_counts: Counter | None = None,
    ) -> None:
        self.registry = registry
        self.pool = pool
        self.supervisor = supervisor
        self.durability = durability
        #: Per-error-code counters surfaced by ``/metrics`` (shared with the
        #: connection layer so protocol/worker failures land here too).
        self.error_counts: Counter = error_counts if error_counts is not None else Counter()
        #: Set during graceful shutdown: intake answers 503 ``shutting-down``.
        self.draining = False
        self.started_at = time.time()
        self.router = Router()
        self.router.add("GET", "/healthz", self.healthz)
        self.router.add("GET", "/metrics", self.metrics)
        self.router.add("GET", "/streams", self.list_streams)
        self.router.add("POST", "/streams/{name}", self.create_stream)
        self.router.add("GET", "/streams/{name}", self.stream_info)
        self.router.add("DELETE", "/streams/{name}", self.delete_stream)
        self.router.add("POST", "/streams/{name}/observations", self.push_observations)
        self.router.add("GET", "/streams/{name}/events", self.stream_events)
        self.router.add("POST", "/streams/{name}/freeze", self.freeze_stream)
        self.router.add("POST", "/streams/{name}/resume", self.resume_stream)
        self.router.add("POST", "/streams/{name}/rebalance", self.rebalance_stream)

    # ------------------------------------------------------------------ #
    # service-level endpoints
    # ------------------------------------------------------------------ #

    async def healthz(self, request: HTTPRequest) -> tuple[int, Any]:
        """Liveness probe: always 200 while the server accepts connections."""
        return 200, {
            "status": "ok",
            "n_streams": len(self.registry),
            "n_shards": self.registry.n_shards,
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }

    async def metrics(self, request: HTTPRequest) -> tuple[int, Any]:
        """Service metrics: per-stream counts and latency quantiles, shards,
        per-error-code counters, worker restarts and checkpoint ages."""
        streams = {}
        all_latencies: list[float] = []
        total_events = 0
        total_observations = 0
        checkpoint_age_by_shard: dict[int, float] = {}
        for stream in self.registry.list_streams():
            snapshot = stream.metrics.snapshot()
            snapshot["shard"] = stream.shard
            snapshot["frozen"] = stream.frozen
            counters = getattr(stream.segmenter, "quality_counters", None)
            if callable(counters):  # policy-wrapped detector: dirty-data accounting
                snapshot["quality"] = counters()
            if self.durability is not None:
                age = self.durability.checkpoint_age(stream.name)
                snapshot["last_checkpoint_age_seconds"] = (
                    round(age, 3) if age is not None else None
                )
                if age is not None:
                    previous = checkpoint_age_by_shard.get(stream.shard)
                    # worst-case staleness per shard: the oldest last-checkpoint
                    checkpoint_age_by_shard[stream.shard] = max(previous or 0.0, age)
            streams[stream.name] = snapshot
            all_latencies.extend(stream.metrics.latencies)
            total_events += snapshot["n_events"]
            total_observations += snapshot["n_observations"]
        workers = self.pool.snapshot()
        for entry in workers:
            age = checkpoint_age_by_shard.get(entry["shard"])
            entry["last_checkpoint_age_seconds"] = round(age, 3) if age is not None else None
            if self.supervisor is not None:
                entry["restarts"] = self.supervisor.restarts[entry["shard"]]
        uptime = max(time.time() - self.started_at, 1e-9)
        payload = {
            "uptime_seconds": round(uptime, 3),
            "n_streams": len(self.registry),
            "total_observations": total_observations,
            "total_events": total_events,
            "observations_per_second": round(total_observations / uptime, 3),
            "event_latency_p50_ms": _ms(quantile(all_latencies, 0.50)),
            "event_latency_p99_ms": _ms(quantile(all_latencies, 0.99)),
            "errors": dict(self.error_counts),
            "workers": workers,
            "streams": streams,
        }
        if self.supervisor is not None:
            payload.update(self.supervisor.snapshot())
        return 200, payload

    # ------------------------------------------------------------------ #
    # stream lifecycle
    # ------------------------------------------------------------------ #

    async def list_streams(self, request: HTTPRequest) -> tuple[int, Any]:
        """All streams with their routing and progress descriptors."""
        return 200, {"streams": [stream.info() for stream in self.registry.list_streams()]}

    async def create_stream(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Create a named stream from ``{"detector": ..., "config": {...}}``."""
        if self.draining:
            raise ServiceError(
                503, "shutting-down", "service is draining; no new streams", retry_after=1.0
            )
        spec = request.json("stream spec") if request.body else {}
        stream = self.registry.create_stream(name, spec)
        if self.durability is not None:
            self.durability.register(stream)
        return 201, stream.info()

    async def stream_info(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Routing, progress and change points of one stream."""
        return 200, self.registry.get(name).info()

    async def delete_stream(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Drop a stream; its in-flight batches finish, then it is gone."""
        stream = self.registry.delete(name)
        for queue in list(stream.subscribers):
            queue.put_nowait(None)  # wake subscribers so their sockets close
        if self.durability is not None:
            self.durability.discard(name)
        return 200, {"deleted": name}

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    async def push_observations(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Validate and ingest one observation batch; return fresh events."""
        stream = self.registry.get(name)
        return 200, await self.ingest(stream, request.json("observations payload"))

    async def ingest(self, stream: StreamState, document: Any) -> dict[str, Any]:
        """The shared HTTP/WebSocket ingestion path: validate, dedup, process.

        Returns the ack body (``name``, ``n_seen``, fresh ``events``, the
        echoed ``seq`` when supplied).  A duplicate of the last acked
        sequence number short-circuits here with the cached ack (and the
        check is repeated authoritatively inside the serialized worker, so
        two concurrent duplicates cannot both process).  Raises typed
        errors for frozen streams, drained service, malformed payloads and
        full shard queues.
        """
        if self.draining:
            raise ServiceError(
                503, "shutting-down", "service is draining; retry elsewhere", retry_after=1.0
            )
        if stream.frozen:
            raise ServiceError(
                409, "stream-frozen", f"stream {stream.name!r} is frozen; resume it first"
            )
        document_seq = self.registry.parse_sequence(document)
        values = self.registry.parse_observations(
            document, allow_non_finite=stream.accepts_non_finite
        )
        if (
            document_seq is not None
            and stream.last_seq is not None
            and document_seq == stream.last_seq
            and stream.last_ack is not None
        ):
            return {**stream.last_ack, "replayed": True}
        return await self.pool.process(stream, values, seq=document_seq)

    async def stream_events(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """The stream's event log from the ``?since=`` cursor on."""
        raw = request.query.get("since", "0")
        try:
            cursor = int(raw)
        except ValueError:
            raise ServiceError(400, "bad-request", f"'since' must be an integer, got {raw!r}")
        events, next_cursor = self.registry.events_since(name, cursor)
        return 200, {"name": name, "events": events, "next": next_cursor}

    # ------------------------------------------------------------------ #
    # elastic rebalancing
    # ------------------------------------------------------------------ #

    async def freeze_stream(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Stop intake, drain in-flight batches, checkpoint the detector."""
        stream = self.registry.get(name)
        if stream.frozen:
            raise ServiceError(409, "stream-frozen", f"stream {name!r} is already frozen")
        stream.frozen = True  # stops new intake; queued batches still drain
        outcome = await self.pool.freeze(stream)
        outcome["shard"] = stream.shard
        return 200, outcome

    async def resume_stream(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Adopt a frozen stream on a (possibly different) shard worker."""
        stream = self.registry.get(name)
        if not stream.frozen or stream.checkpoint is None:
            raise ServiceError(409, "not-frozen", f"stream {name!r} is not frozen")
        shard = self._target_shard(request, default=stream.shard)
        outcome = await self.pool.adopt(stream, shard)
        return 200, outcome

    async def rebalance_stream(self, request: HTTPRequest, name: str) -> tuple[int, Any]:
        """Freeze, ship and resume in one call: ``{"shard": k}``."""
        stream = self.registry.get(name)
        if stream.frozen:
            raise ServiceError(409, "stream-frozen", f"stream {name!r} is frozen; resume it")
        shard = self._target_shard(request, default=None)
        if shard is None:
            raise ServiceError(400, "bad-request", "rebalance needs {'shard': <int>}")
        if shard == stream.shard:
            raise ServiceError(
                409, "same-shard", f"stream {name!r} already lives on shard {shard}"
            )
        stream.frozen = True
        await self.pool.freeze(stream)
        outcome = await self.pool.adopt(stream, shard)
        outcome["rebalanced"] = True
        return 200, outcome

    def _target_shard(self, request: HTTPRequest, default: int | None) -> int | None:
        """Parse and range-check the optional ``{"shard": k}`` body field."""
        if not request.body:
            return default
        payload = request.json("shard spec")
        if not isinstance(payload, dict):
            raise ServiceError(400, "bad-request", "shard spec must be a JSON object")
        shard = payload.get("shard", default)
        if shard is None:
            return default
        if not isinstance(shard, int) or isinstance(shard, bool):
            raise ServiceError(400, "bad-request", "'shard' must be an integer")
        if not 0 <= shard < self.registry.n_shards:
            raise ServiceError(
                400,
                "bad-request",
                f"'shard' must lie in [0, {self.registry.n_shards}), got {shard}",
            )
        return shard


def _ms(seconds: float | None) -> float | None:
    """Seconds → milliseconds rounded for display (None passes through)."""
    return None if seconds is None else round(seconds * 1e3, 3)
