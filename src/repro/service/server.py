"""The asyncio segmentation server: connection handling + WebSocket fan-out.

:class:`SegmentationService` ties the pieces together: an
``asyncio.start_server`` accept loop, the :mod:`repro.service.protocol`
wire layer, the :mod:`repro.service.routes` dispatch table, the
:mod:`repro.service.streams` registry and the :mod:`repro.service.workers`
shard pool.  One instance serves many keep-alive HTTP connections plus any
number of per-stream WebSocket sessions, all on a single event loop; the
CPU-bound detector work is serialized per shard by the workers.

Failure containment: a typed :class:`~repro.service.errors.ServiceError`
renders as its 4xx body; a framing error closes only that connection; any
unexpected handler exception renders a 500 ``internal-error`` body — the
accept loop, the other connections and the shard workers keep running
(pinned by ``tests/test_service_http.py``).

Example
-------
>>> import asyncio
>>> from repro.service import SegmentationService
>>> async def demo():
...     service = SegmentationService(n_shards=2)
...     await service.start(port=0)          # ephemeral port
...     print(service.port > 0)
...     await service.stop()
>>> asyncio.run(demo())
True
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
from collections import Counter
from pathlib import Path

from repro.service.durability import DurabilityConfig, DurabilityManager
from repro.service.errors import ServiceError
from repro.service.faults import FaultInjector
from repro.service.protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    HTTPRequest,
    ProtocolError,
    encode_frame,
    is_websocket_upgrade,
    read_frame,
    read_request,
    render_response,
    render_websocket_handshake,
)
from repro.service.routes import ServiceRoutes
from repro.service.streams import DEFAULT_MAX_BATCH, StreamRegistry
from repro.storage.history import DEFAULT_HISTORY_WINDOW
from repro.service.supervisor import Supervisor, SupervisorConfig
from repro.service.workers import WorkerPool

logger = logging.getLogger(__name__)

#: Matches ``/streams/{name}/ws`` for the WebSocket upgrade path.
_WS_SUFFIX = "/ws"


class SegmentationService:
    """A complete segmentation-as-a-service instance on one event loop.

    Parameters
    ----------
    n_shards:
        Number of shard workers; streams are CRC-32 partitioned over them.
    max_batch:
        Maximum observations per batch (typed 413 beyond).
    durability:
        A :class:`~repro.service.durability.DurabilityConfig` (or a
        ready-made manager) enabling per-stream spools: write-ahead batch
        tails, periodic atomic checkpoints, and crash recovery that is
        bit-identical to an uninterrupted run.  None (the default) keeps
        the pre-fault-tolerance in-memory behaviour.
    faults:
        A :class:`~repro.service.faults.FaultInjector` for chaos testing;
        defaults to one parsed from the ``REPRO_FAULTS`` environment
        variable (None when unset).
    supervision:
        A :class:`~repro.service.supervisor.SupervisorConfig` tuning queue
        bounds, per-job deadlines, and restart limits.
    history_window:
        Newest events kept in memory per stream (None = unbounded).  With
        a spill directory, older events move to an on-disk event log and
        ``?since=`` replay stays exact; without one, stale cursors get a
        typed 410 ``history-truncated``.
    history_dir:
        Directory for per-stream event-history spill logs.  Defaults to
        ``<durability root>/history`` when durability is enabled, else to
        no spilling.

    Raises
    ------
    ConfigurationError
        When ``n_shards``, ``max_batch`` or any config object is invalid.

    Example
    -------
    See the module docstring; ``tests/test_service_integration.py`` drives a
    full multi-stream session including a mid-stream rebalance, and
    ``tests/test_service_faults.py`` drives crash/corruption recovery.
    """

    def __init__(
        self,
        n_shards: int = 4,
        max_batch: int = DEFAULT_MAX_BATCH,
        *,
        durability: DurabilityConfig | DurabilityManager | None = None,
        faults: FaultInjector | None = None,
        supervision: SupervisorConfig | None = None,
        history_window: int | None = DEFAULT_HISTORY_WINDOW,
        history_dir: str | None = None,
    ) -> None:
        self.error_counts: Counter = Counter()
        self.faults = faults if faults is not None else FaultInjector.from_env()
        if isinstance(durability, DurabilityConfig):
            durability = DurabilityManager(durability, faults=self.faults)
        self.durability = durability
        if history_dir is None and durability is not None:
            history_dir = str(Path(durability.root) / "history")
        self.registry = StreamRegistry(
            n_shards,
            max_batch=max_batch,
            history_window=history_window,
            history_dir=history_dir,
        )
        self.supervision = supervision or SupervisorConfig()
        self.pool = WorkerPool(
            n_shards,
            max_queue_depth=self.supervision.max_queue_depth,
            job_deadline=self.supervision.job_deadline,
            retry_after=self.supervision.retry_after,
            durability=self.durability,
            faults=self.faults,
            on_error=lambda code: self.error_counts.update([code]),
        )
        self.supervisor = Supervisor(
            self.pool, self.registry, durability=self.durability, config=self.supervision
        )
        self.routes = ServiceRoutes(
            self.registry,
            self.pool,
            supervisor=self.supervisor,
            durability=self.durability,
            error_counts=self.error_counts,
        )
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None:
            return 0
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener and start the supervised shard workers."""
        self.supervisor.start()
        self._server = await asyncio.start_server(self._handle_connection, host, port)

    async def stop(self) -> None:
        """Close the listener and stop the shard workers (abrupt)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.supervisor.stop()

    async def shutdown(self) -> None:
        """Graceful stop: refuse new intake, drain every shard queue,
        checkpoint every stream's durable state, then stop the workers."""
        self.routes.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.pool.drain()
        if self.durability is not None:
            for stream in self.registry.list_streams():
                if stream.segmenter is not None:
                    self.durability.checkpoint(stream)
        await self.supervisor.stop()

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Blocking entry point used by ``python -m repro.cli serve``.

        On platforms with signal support, SIGINT/SIGTERM trigger the
        graceful :meth:`shutdown` path (drain + checkpoint) instead of
        tearing the event loop down mid-batch.
        """
        await self.start(host, port)
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        registered: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                registered.append(signum)
            except (NotImplementedError, RuntimeError):  # non-unix event loops
                pass
        try:
            if registered:
                await stop_requested.wait()
                logger.info("signal received: draining, checkpointing, exiting")
                await self.shutdown()
            else:
                assert self._server is not None
                async with self._server:
                    await self._server.serve_forever()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServiceError as error:  # e.g. oversized declared body
                    self.error_counts.update([error.code])
                    writer.write(render_response(error.status, error.body(), keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if is_websocket_upgrade(request):
                    await self._serve_websocket(request, reader, writer)
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except ProtocolError as error:
            self.error_counts.update(["protocol-error"])
            with contextlib.suppress(ConnectionError):
                writer.write(
                    render_response(
                        400,
                        {"error": {"code": "protocol-error", "message": str(error)}},
                        keep_alive=False,
                    )
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _dispatch(self, request: HTTPRequest) -> bytes:
        """Route one HTTP request; always returns a rendered response."""
        try:
            handler, params = self.routes.router.match(request.method, request.path)
            status, payload = await handler(request, **params)
            return render_response(status, payload, keep_alive=request.keep_alive)
        except ServiceError as error:
            self.error_counts.update([error.code])
            extra = None
            if error.retry_after is not None:
                extra = {"Retry-After": f"{error.retry_after:g}"}
            return render_response(
                error.status, error.body(), keep_alive=request.keep_alive, extra_headers=extra
            )
        except Exception:  # unexpected bug: answer 500, keep the service up
            logger.exception("unhandled error serving %s %s", request.method, request.path)
            self.error_counts.update(["internal-error"])
            return render_response(
                500,
                {"error": {"code": "internal-error", "message": "unhandled server error"}},
                keep_alive=False,
            )

    # ------------------------------------------------------------------ #
    # WebSocket sessions
    # ------------------------------------------------------------------ #

    async def _serve_websocket(
        self,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One per-stream WebSocket session: subscribe + optional intake.

        The upgrade path is ``/streams/{name}/ws``; after the handshake the
        server pushes every event of the stream as one JSON text frame
        (starting from the ``?since=`` cursor), and the client may push
        ``{"values": [...]}`` observation frames back.  Client errors are
        answered with ``{"kind": "error", ...}`` frames — the session and
        the service survive them.
        """
        if not request.path.endswith(_WS_SUFFIX):
            writer.write(
                render_response(
                    404,
                    {"error": {"code": "unknown-route", "message": "websocket path is /streams/{name}/ws"}},
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        name = request.path[len("/streams/") : -len(_WS_SUFFIX)]
        try:
            stream = self.registry.get(name)
            cursor = int(request.query.get("since", "0"))
            # validate the cursor (404/400/410 history-truncated) while an
            # HTTP error response can still be rendered, pre-handshake
            self.registry.events_since(name, cursor)
        except ServiceError as error:
            writer.write(render_response(error.status, error.body(), keep_alive=False))
            await writer.drain()
            return
        except ValueError:
            writer.write(
                render_response(
                    400,
                    {"error": {"code": "bad-request", "message": "'since' must be an integer"}},
                    keep_alive=False,
                )
            )
            await writer.drain()
            return

        writer.write(render_websocket_handshake(request))
        await writer.drain()

        queue: asyncio.Queue = asyncio.Queue()
        # replay + subscribe with no await in between, so no event published
        # during the handshake write can slip past the cursor
        try:
            replay, _ = self.registry.events_since(name, cursor)
        except ServiceError:  # history evicted during the handshake (rare)
            replay = []
        for payload in replay:
            queue.put_nowait(payload)
        stream.subscribers.add(queue)
        sender = asyncio.create_task(self._ws_sender(queue, writer))
        try:
            await self._ws_receiver(stream, reader, writer)
        finally:
            stream.subscribers.discard(queue)
            sender.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await sender

    async def _ws_sender(self, queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        """Drain a subscriber queue into text frames (None closes the socket)."""
        try:
            while True:
                payload = await queue.get()
                if payload is None:  # stream deleted
                    writer.write(encode_frame(OP_CLOSE, b""))
                    await writer.drain()
                    return
                frame = encode_frame(OP_TEXT, json.dumps(payload).encode("utf-8"))
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:  # pragma: no cover - defensive
            logger.exception("websocket sender failed")

    async def _ws_receiver(
        self, stream, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve inbound frames until the client closes or the link drops."""
        while True:
            try:
                opcode, payload = await read_frame(reader)
            except (ProtocolError, ConnectionError):
                return
            if self.faults is not None and self.faults.drop_websocket(stream.name):
                # simulate a network drop: sever abruptly, no close frame
                writer.transport.abort()
                return
            if opcode == OP_CLOSE:
                with contextlib.suppress(ConnectionError):
                    writer.write(encode_frame(OP_CLOSE, payload))
                    await writer.drain()
                return
            if opcode == OP_PING:
                writer.write(encode_frame(OP_PONG, payload))
                await writer.drain()
                continue
            if opcode != OP_TEXT:
                continue  # ignore binary/pong frames
            response = await self._ws_ingest(stream, payload)
            if response is not None:
                writer.write(encode_frame(OP_TEXT, json.dumps(response).encode("utf-8")))
                await writer.drain()

    async def _ws_ingest(self, stream, payload: bytes) -> dict | None:
        """Apply one inbound ``{"values": [...]}`` frame; report typed errors."""
        try:
            try:
                document = json.loads(payload)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ServiceError(400, "bad-json", "frame is not valid JSON", detail=str(error))
            ack = await self.routes.ingest(stream, document)
            frame = {"kind": "ack", "n_seen": ack["n_seen"]}
            if "seq" in ack:
                frame["seq"] = ack["seq"]
            if ack.get("replayed"):
                frame["replayed"] = True
            return frame
        except ServiceError as error:
            self.error_counts.update([error.code])
            return {"kind": "error", **error.body()["error"]}
        except Exception:  # unexpected bug: report, keep the session alive
            logger.exception("websocket ingest failed on stream %r", stream.name)
            self.error_counts.update(["internal-error"])
            return {"kind": "error", "code": "internal-error", "message": "unhandled error"}
