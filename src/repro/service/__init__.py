"""repro.service — segmentation as a service (ROADMAP item 2).

An asyncio HTTP/1.1 + WebSocket front door over the unified detector API
and the sharded engine's CRC-32 stream partitioning.  Clients create named
streams from a JSON detector config, push observation batches (or stream
them over a WebSocket), and receive the typed :mod:`repro.api.events`
objects back as JSON — each stream hash-routed to a shard worker, and
movable between workers mid-stream via the bit-identical
checkpoint/restore path (elastic rebalancing).

The server is deliberately framework-free: request parsing, routing and
the RFC 6455 WebSocket layer live in :mod:`repro.service.protocol`, so
the only runtime dependencies are the stdlib and numpy.

Quickstart::

    python -m repro.cli serve --port 8765 --shards 4

    curl -X POST localhost:8765/streams/sensor-1 \
         -d '{"detector": "class", "config": {"window_size": 2000}}'
    curl -X POST localhost:8765/streams/sensor-1/observations \
         -d '{"values": [0.12, 0.31, 0.27]}'
    curl 'localhost:8765/streams/sensor-1/events?since=0'

See ``docs/service.rst`` for the full protocol reference.
"""

from repro.service.client import ServiceClient, WebSocketSession
from repro.service.errors import ServiceError
from repro.service.server import SegmentationService
from repro.service.streams import StreamRegistry, StreamState

__all__ = [
    "SegmentationService",
    "ServiceClient",
    "ServiceError",
    "StreamRegistry",
    "StreamState",
    "WebSocketSession",
]
