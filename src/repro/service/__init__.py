"""repro.service — segmentation as a service (ROADMAP item 2).

An asyncio HTTP/1.1 + WebSocket front door over the unified detector API
and the sharded engine's CRC-32 stream partitioning.  Clients create named
streams from a JSON detector config, push observation batches (or stream
them over a WebSocket), and receive the typed :mod:`repro.api.events`
objects back as JSON — each stream hash-routed to a shard worker, and
movable between workers mid-stream via the bit-identical
checkpoint/restore path (elastic rebalancing).

The service is fault tolerant: a :class:`Supervisor` restarts crashed or
hung shard workers, a :class:`DurabilityManager` keeps per-stream spools
(atomic checkpoints + a write-ahead tail of acked batches) so recovery is
bit-identical to an uninterrupted run, and a :class:`FaultInjector` hook
layer drives the chaos test suite.  The client retries transient failures
with exponential backoff and resumes dropped WebSockets via ``?since=``
replay.  See ``docs/fault-tolerance.rst``.

The server is deliberately framework-free: request parsing, routing and
the RFC 6455 WebSocket layer live in :mod:`repro.service.protocol`, so
the only runtime dependencies are the stdlib and numpy.

Quickstart::

    python -m repro.cli serve --port 8765 --shards 4 --spool-dir ./spool

    curl -X POST localhost:8765/streams/sensor-1 \
         -d '{"detector": "class", "config": {"window_size": 2000}}'
    curl -X POST localhost:8765/streams/sensor-1/observations \
         -d '{"values": [0.12, 0.31, 0.27], "seq": 0}'
    curl 'localhost:8765/streams/sensor-1/events?since=0'

See ``docs/service.rst`` for the full protocol reference.
"""

from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceUnavailableError,
    WebSocketSession,
)
from repro.service.durability import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryReport,
    StreamSpool,
)
from repro.service.errors import ServiceError
from repro.service.faults import Fault, FaultInjected, FaultInjector, WorkerCrash
from repro.service.server import SegmentationService
from repro.service.streams import StreamRegistry, StreamState
from repro.service.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "DurabilityConfig",
    "DurabilityManager",
    "Fault",
    "FaultInjected",
    "FaultInjector",
    "RecoveryReport",
    "RetryPolicy",
    "SegmentationService",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "StreamRegistry",
    "StreamSpool",
    "StreamState",
    "Supervisor",
    "SupervisorConfig",
    "WebSocketSession",
    "WorkerCrash",
]
