"""Minimal HTTP/1.1 and RFC 6455 WebSocket wire layer (stdlib only).

The service deliberately avoids a web framework: this module is the whole
wire protocol.  It covers exactly what the segmentation front door needs —

* request parsing (:func:`read_request`): request line, headers, a
  ``Content-Length`` body with a hard size cap, keep-alive semantics,
* response rendering (:func:`render_response`): status line + headers +
  body bytes, JSON by default,
* the WebSocket handshake (:func:`websocket_accept_key`,
  :func:`is_websocket_upgrade`) and frame codec (:func:`encode_frame`,
  :func:`read_frame`): text/close/ping/pong frames, client-side masking,
  64-bit extended lengths.

Framing errors raise :class:`ProtocolError`; the server answers with a 400
and closes the connection instead of crashing the handler.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.service.errors import REASONS, ServiceError

#: Hard cap on request bodies (bytes); larger requests get a typed 413.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Hard cap on a single WebSocket frame payload (bytes).
MAX_FRAME_BYTES = 8 * 1024 * 1024
#: RFC 6455 §1.3 handshake GUID.
WEBSOCKET_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes used by the service.
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class ProtocolError(Exception):
    """Malformed HTTP framing or WebSocket frame; the connection is closed."""


@dataclass
class HTTPRequest:
    """One parsed HTTP/1.1 request.

    Attributes
    ----------
    method:
        Upper-case request method (``"GET"``, ``"POST"``, ...).
    path:
        URL-decoded path component (no query string).
    query:
        Query parameters as a flat dict (last value wins).
    headers:
        Header mapping with lower-cased names.
    body:
        Raw body bytes (empty for body-less requests).
    """

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1 default)."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self, context: str = "request body") -> Any:
        """Parse the body as JSON; raise a typed 400 :class:`ServiceError` if invalid."""
        if not self.body:
            raise ServiceError(400, "bad-json", f"{context} is empty; expected a JSON document")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ServiceError(
                400, "bad-json", f"{context} is not valid JSON", detail=str(error)
            ) from error


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Read and parse one request; return None on a clean end-of-stream.

    Raises
    ------
    ProtocolError
        On malformed framing (bad request line, oversized head, truncated
        body, non-integer ``Content-Length``).
    ServiceError
        With status 413 when the declared body exceeds :data:`MAX_BODY_BYTES`.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests
        raise ProtocolError("connection closed mid-request") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError("request head exceeds the header size limit") from error

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError as error:
        raise ProtocolError("malformed HTTP request line") from error
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    request = HTTPRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query={key: value for key, value in parse_qsl(split.query)},
        headers=headers,
    )

    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError as error:
        raise ProtocolError(f"invalid Content-Length {length_header!r}") from error
    if length < 0:
        raise ProtocolError(f"invalid Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            413,
            "oversized-body",
            f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} byte limit",
        )
    if length:
        try:
            request.body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ProtocolError("connection closed mid-body") from error
    return request


def render_response(
    status: int,
    payload: Any = None,
    *,
    keep_alive: bool = True,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Render a full HTTP/1.1 response as bytes.

    ``payload`` may be ready-made ``bytes`` or any JSON-serialisable value
    (serialised compactly); None renders an empty body.
    """
    if payload is None:
        body = b""
    elif isinstance(payload, bytes):
        body = payload
    else:
        body = (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# --------------------------------------------------------------------------- #
# WebSocket (RFC 6455)
# --------------------------------------------------------------------------- #


def is_websocket_upgrade(request: HTTPRequest) -> bool:
    """Whether a request asks for a WebSocket upgrade (RFC 6455 §4.2.1)."""
    connection = request.headers.get("connection", "").lower()
    upgrade = request.headers.get("upgrade", "").lower()
    return "upgrade" in connection and upgrade == "websocket"


def websocket_accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WEBSOCKET_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def render_websocket_handshake(request: HTTPRequest) -> bytes:
    """The 101 Switching Protocols response completing the upgrade.

    Raises
    ------
    ProtocolError
        When the mandatory ``Sec-WebSocket-Key`` header is missing.
    """
    client_key = request.headers.get("sec-websocket-key")
    if not client_key:
        raise ProtocolError("websocket upgrade without a Sec-WebSocket-Key header")
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def encode_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """Encode one complete (FIN) WebSocket frame.

    Servers send unmasked frames; clients must set ``mask=True`` (RFC 6455
    §5.3 — the mask bytes are random per frame).
    """
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if mask:
        mask_key = os.urandom(4)
        header += mask_key
        payload = _apply_mask(payload, mask_key)
    return bytes(header) + payload


def _apply_mask(payload: bytes, mask_key: bytes) -> bytes:
    """XOR-mask (or unmask — the operation is its own inverse) a payload."""
    repeated = (mask_key * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one complete WebSocket frame; return ``(opcode, payload)``.

    Raises
    ------
    ProtocolError
        On fragmented frames (unsupported by this minimal layer), reserved
        bits, oversized payloads, or a connection closed mid-frame.
    """
    try:
        first, second = await reader.readexactly(2)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    if not first & 0x80:
        raise ProtocolError("fragmented websocket frames are not supported")
    if first & 0x70:
        raise ProtocolError("websocket reserved bits must be zero (no extensions)")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    try:
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        elif length == 127:
            length = int.from_bytes(await reader.readexactly(8), "big")
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"websocket frame of {length} bytes exceeds the limit")
        mask_key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    if masked:
        payload = _apply_mask(payload, mask_key)
    return opcode, payload
