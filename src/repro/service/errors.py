"""Typed service errors: every client failure becomes a structured 4xx body.

The service's error contract (pinned by ``tests/test_service_http.py``): a
malformed request — bad JSON, a config the registry rejects, non-finite
observation payloads, an unknown stream name, an oversized batch — never
crashes a shard worker or the connection handler.  It is reported as a
:class:`ServiceError` carrying an HTTP status plus a machine-readable body::

    {"error": {"code": "non-finite-observations", "message": "...", ...}}

``code`` is a stable kebab-case identifier clients can dispatch on;
``message`` is human-readable; optional ``detail`` carries structured
context (e.g. the offending field).

Example
-------
>>> error = ServiceError(404, "unknown-stream", "no stream named 'x'")
>>> error.body()["error"]["code"]
'unknown-stream'
"""

from __future__ import annotations

from typing import Any

#: HTTP reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    426: "Upgrade Required",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceError(Exception):
    """A client-visible service failure with an HTTP status and typed body.

    Parameters
    ----------
    status:
        HTTP status code of the response (4xx for client errors).
    code:
        Stable kebab-case error identifier (``"bad-json"``,
        ``"unknown-stream"``, ``"non-finite-observations"``, ...).
    message:
        Human-readable one-line description.
    detail:
        Optional JSON-safe structured context attached to the body.
    retry_after:
        Optional seconds after which a retry is reasonable; rendered as a
        ``Retry-After`` header (used by the 503 shedding/crash responses and
        honoured by :class:`~repro.service.client.ServiceClient`).

    Raises
    ------
    Nothing itself — it *is* the exception the routes raise; the server
    converts it into the HTTP response.

    Example
    -------
    >>> raise ServiceError(413, "oversized-batch", "batch exceeds limit")
    Traceback (most recent call last):
    ...
    repro.service.errors.ServiceError: [413 oversized-batch] batch exceeds limit
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Any = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)
        self.detail = detail
        self.retry_after = retry_after

    def body(self) -> dict[str, Any]:
        """The JSON-safe response body: ``{"error": {...}}``.

        Returns
        -------
        dict
            Mapping with a single ``"error"`` entry holding ``code``,
            ``message`` and — when provided — ``detail``.
        """
        payload: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail is not None:
            payload["detail"] = self.detail
        if self.retry_after is not None:
            # also in the body so WebSocket error frames (no headers) carry it
            payload["retry_after"] = self.retry_after
        return {"error": payload}


def bad_json(context: str, error: Exception) -> ServiceError:
    """A 400 for a body that is not valid JSON.

    Parameters
    ----------
    context:
        What was being parsed (shows up in the message).
    error:
        The underlying ``json.JSONDecodeError`` (stringified into detail).

    Returns
    -------
    ServiceError
        Status 400 with code ``"bad-json"``.

    Example
    -------
    >>> bad_json("stream config", ValueError("boom")).status
    400
    """
    return ServiceError(400, "bad-json", f"{context} is not valid JSON", detail=str(error))


def unknown_stream(name: str) -> ServiceError:
    """A 404 for a stream name the registry does not know.

    Parameters
    ----------
    name:
        The requested stream name.

    Returns
    -------
    ServiceError
        Status 404 with code ``"unknown-stream"``.

    Example
    -------
    >>> unknown_stream("nope").body()["error"]["code"]
    'unknown-stream'
    """
    return ServiceError(404, "unknown-stream", f"no stream named {name!r}")
