"""Shard worker supervision: crash/hang detection, restart, stream recovery.

The :class:`Supervisor` owns the :class:`~repro.service.workers.WorkerPool`
task lifecycle.  Every worker task gets a done-callback; when a task dies
with an exception (an injected :class:`~repro.service.faults.WorkerCrash`,
a per-job deadline timeout, or a genuine bug escaping the job machinery)
the supervisor:

1. immediately swaps an *unstarted* replacement worker into the pool slot —
   new jobs for that shard queue up instead of landing on a dead task — and
   transfers the dead worker's pending jobs (FIFO order preserved, their
   awaiting futures intact);
2. restores every unfrozen stream owned by the shard from its durable
   spool (newest valid checkpoint + write-ahead tail replay, falling back
   past corrupt checkpoint files) — bit-identical to an uninterrupted run;
3. starts the replacement worker, which drains the transferred queue.

The job that crashed has already had its future failed with a retryable 503
``worker-crashed`` error by the dying worker, so the issuing client retries
with backoff; thanks to the write-ahead tail and sequence-number dedup the
retry lands as a replayed ack, never a double ingestion.

Streams without a durability spool survive a restart with their in-memory
detector as-is (best effort — a crash mid-batch may leave it half-mutated);
run the service with durability enabled for the full guarantee.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass

from repro.service.faults import WorkerCrash
from repro.utils.exceptions import ConfigurationError

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision and load-shedding tuning.

    Parameters
    ----------
    max_queue_depth:
        Bound on each shard's job queue; a full queue sheds load with a
        503 ``overloaded`` + ``Retry-After`` (None = unbounded).
    job_deadline:
        Per-job wall-clock deadline in seconds; a job exceeding it counts
        as a worker hang and triggers a restart (None disables).
    retry_after:
        ``Retry-After`` seconds advertised on shed/crashed responses.
    max_restarts:
        Hard cap on restarts per shard (None = unlimited); beyond it the
        supervisor stops reviving the shard and logs an error.
    """

    max_queue_depth: int | None = 256
    job_deadline: float | None = None
    retry_after: float = 0.05
    max_restarts: int | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range settings."""
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be a positive integer or None")
        if self.job_deadline is not None and self.job_deadline <= 0:
            raise ConfigurationError("job_deadline must be positive or None")
        if self.retry_after <= 0:
            raise ConfigurationError("retry_after must be positive")
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0 or None")


class Supervisor:
    """Watches worker tasks and runs the restart + recovery protocol."""

    def __init__(self, pool, registry, durability=None, config=None) -> None:
        self.pool = pool
        self.registry = registry
        self.durability = durability
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.restarts = [0] * len(pool.workers)
        self.recoveries: list = []
        self.last_recovery_seconds: float | None = None
        self._stopping = False

    @property
    def total_restarts(self) -> int:
        """Worker restarts across all shards since service start."""
        return sum(self.restarts)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start every worker and attach crash watchers."""
        self._stopping = False
        self.pool.start()
        for worker in self.pool.workers:
            self._watch(worker)

    async def stop(self) -> None:
        """Stop watching and cancel every worker."""
        self._stopping = True
        await self.pool.stop()

    def _watch(self, worker) -> None:
        task = worker.task
        if task is not None:
            task.add_done_callback(lambda t, w=worker: self._on_worker_done(w, t))

    # ------------------------------------------------------------------ #
    # the restart protocol
    # ------------------------------------------------------------------ #

    def _on_worker_done(self, worker, task: asyncio.Task) -> None:
        if self._stopping or task.cancelled():
            return
        error = task.exception()
        if error is None:
            return  # clean exit (not expected, but nothing to revive)
        shard = worker.shard
        logger.error(
            "shard worker %d died: %s", shard, error,
            exc_info=error if not isinstance(error, WorkerCrash) else None,
        )
        if (
            self.config.max_restarts is not None
            and self.restarts[shard] >= self.config.max_restarts
        ):
            logger.error(
                "shard %d exceeded max_restarts=%d; not reviving",
                shard, self.config.max_restarts,
            )
            return
        self.restarts[shard] += 1
        # swap in an unstarted replacement synchronously so jobs submitted
        # from now on queue there instead of on the dead task
        replacement = self.pool.replace(shard)
        while not worker.queue.empty():  # transfer pending jobs, FIFO intact
            replacement.queue.put_nowait(worker.queue.get_nowait())
        asyncio.get_running_loop().create_task(
            self._revive(shard, replacement), name=f"revive-shard-{shard}"
        )

    async def _revive(self, shard: int, replacement) -> None:
        """Restore the shard's streams from their spools, then go live."""
        started = time.perf_counter()
        restored = 0
        for stream in self.registry.list_streams():
            if stream.shard != shard or stream.frozen or stream.segmenter is None:
                continue
            if self.durability is None:
                logger.warning(
                    "stream %r has no durability spool; resuming with its "
                    "in-memory detector (crash may have left it inconsistent)",
                    stream.name,
                )
                continue
            try:
                report = self.durability.recover(stream)
            except Exception:
                logger.exception(
                    "recovery of stream %r failed; resuming with its in-memory detector",
                    stream.name,
                )
                continue
            self.recoveries.append(report)
            restored += 1
            await asyncio.sleep(0)  # stay responsive between CPU-bound replays
        replacement.start()
        self._watch(replacement)
        self.last_recovery_seconds = time.perf_counter() - started
        logger.warning(
            "shard %d back online: %d stream(s) restored in %.3fs (restart #%d)",
            shard, restored, self.last_recovery_seconds, self.restarts[shard],
        )

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Supervision metrics for ``/metrics``."""
        return {
            "worker_restarts": self.total_restarts,
            "restarts_per_shard": list(self.restarts),
            "n_recoveries": len(self.recoveries),
            "last_recovery_seconds": (
                round(self.last_recovery_seconds, 6)
                if self.last_recovery_seconds is not None
                else None
            ),
        }
