"""A minimal asyncio client for the segmentation service (tests + load gen).

:class:`ServiceClient` speaks the same stdlib wire layer as the server: one
keep-alive HTTP/1.1 connection per client (so a load test with hundreds of
clients measures request handling, not TCP churn), JSON request/response
bodies, and a :class:`WebSocketSession` upgrade helper with client-side
frame masking.

Example
-------
::

    client = ServiceClient("127.0.0.1", port)
    await client.connect()
    status, body = await client.request("POST", "/streams/s1", {"detector": "class"})
    status, body = await client.request(
        "POST", "/streams/s1/observations", {"values": [0.1, 0.2]}
    )
    await client.close()
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
from typing import Any

from repro.service.protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    ProtocolError,
    encode_frame,
    read_frame,
)


class ServiceClient:
    """One keep-alive HTTP/1.1 connection to a running service.

    Parameters
    ----------
    host, port:
        The service's listening address.

    Raises
    ------
    ProtocolError
        On malformed response framing from the peer.

    Example
    -------
    See the module docstring and ``tests/test_service_http.py``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServiceClient":
        """Open the TCP connection; returns self so calls chain."""
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, Any]:
        """Send one JSON request; return ``(status, parsed_body)``.

        ``payload`` is JSON-serialised when given; the response body is
        JSON-parsed when non-empty (None otherwise).
        """
        if self._writer is None or self._reader is None:
            await self.connect()
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> tuple[int, Any]:
        """Parse one HTTP response off the wire."""
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        try:
            status = int(status_line.split(" ", 2)[1])
        except (IndexError, ValueError) as error:
            raise ProtocolError(f"malformed status line {status_line!r}") from error
        headers: dict[str, str] = {}
        for line in header_lines:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else None)

    # ------------------------------------------------------------------ #

    async def open_websocket(self, path: str) -> "WebSocketSession":
        """Upgrade a *fresh* connection to a WebSocket session on ``path``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        head = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Connection: Upgrade\r\n"
            f"Upgrade: websocket\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        response = await reader.readuntil(b"\r\n\r\n")
        status_line = response.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f" {status_line} ":
            # the server answered with a normal (error) response; surface it
            headers = _parse_headers(response)
            length = int(headers.get("content-length", "0"))
            raw = await reader.readexactly(length) if length else b""
            writer.close()
            raise ProtocolError(
                f"websocket upgrade refused: {status_line} {raw.decode('utf-8', 'replace')}"
            )
        return WebSocketSession(reader, writer)


def _parse_headers(head: bytes) -> dict[str, str]:
    """Lower-cased header mapping of a raw response head."""
    headers: dict[str, str] = {}
    for line in head.decode("latin-1").split("\r\n")[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return headers


class WebSocketSession:
    """A client-side WebSocket: JSON frames in both directions.

    Client frames are masked as RFC 6455 requires; control frames (ping,
    close) are handled transparently by :meth:`recv_json`.

    Example
    -------
    ::

        session = await client.open_websocket("/streams/s1/ws")
        await session.send_json({"values": [0.1, 0.2, 0.3]})
        message = await session.recv_json()      # ack / event / error frame
        await session.close()
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    async def send_json(self, payload: Any) -> None:
        """Send one masked text frame carrying ``payload`` as JSON."""
        frame = encode_frame(OP_TEXT, json.dumps(payload).encode("utf-8"), mask=True)
        self._writer.write(frame)
        await self._writer.drain()

    async def recv_json(self) -> Any | None:
        """Receive the next JSON text frame (None once the peer closes)."""
        while True:
            try:
                opcode, payload = await read_frame(self._reader)
            except (ProtocolError, ConnectionError):
                return None
            if opcode == OP_CLOSE:
                return None
            if opcode == OP_PING:
                self._writer.write(encode_frame(OP_PONG, payload, mask=True))
                await self._writer.drain()
                continue
            if opcode == OP_TEXT:
                return json.loads(payload)
            # ignore binary/pong frames

    async def close(self) -> None:
        """Send a close frame and drop the connection."""
        try:
            self._writer.write(encode_frame(OP_CLOSE, b"", mask=True))
            await self._writer.drain()
        except ConnectionError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass
