"""A robust asyncio client for the segmentation service (tests + load gen).

:class:`ServiceClient` speaks the same stdlib wire layer as the server: one
keep-alive HTTP/1.1 connection per client (so a load test with hundreds of
clients measures request handling, not TCP churn), JSON request/response
bodies, and a :class:`WebSocketSession` upgrade helper with client-side
frame masking.

Robustness (the client half of the fault-tolerance contract):

* every request runs under a :class:`RetryPolicy` — connection drops,
  connect/read timeouts and retryable 503s (``overloaded`` shedding,
  ``worker-crashed`` during supervisor recovery) are retried with
  exponential backoff plus jitter, honouring a server ``Retry-After``;
* a 5xx that survives its retries surfaces as a typed
  :class:`ServiceUnavailableError` carrying the parsed body and the parsed
  ``Retry-After`` header — callers never have to string-match status lines;
* retried batch POSTs are safe when the caller supplies a ``seq`` number:
  the service's idempotent ingestion replays the ack instead of
  double-processing (see :mod:`repro.service.streams`);
* a dropped WebSocket resumes without event loss or duplication:
  :class:`WebSocketSession` counts delivered events and
  :meth:`ServiceClient.resume_stream` reopens with ``?since=<cursor>``.

Example
-------
::

    client = ServiceClient("127.0.0.1", port)
    await client.connect()
    status, body = await client.request("POST", "/streams/s1", {"detector": "class"})
    status, body = await client.request(
        "POST", "/streams/s1/observations", {"values": [0.1, 0.2], "seq": 0}
    )
    await client.close()
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import random
from dataclasses import dataclass
from typing import Any

from repro.service.protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    ProtocolError,
    encode_frame,
    read_frame,
)
from repro.utils.exceptions import ConfigurationError

#: HTTP statuses worth retrying: the service answers 503 for transient
#: conditions (shed load, worker mid-recovery, draining) and never for
#: permanent ones.
RETRYABLE_STATUSES = frozenset({503})


class ServiceUnavailableError(RuntimeError):
    """A 5xx the client could not (or was configured not to) retry away.

    Parameters
    ----------
    status:
        The HTTP status code (e.g. 503).
    body:
        The parsed JSON error body (or None when the response had none).
    retry_after:
        Seconds parsed from the ``Retry-After`` header / body field, when
        the server provided one.

    Example
    -------
    >>> error = ServiceUnavailableError(503, {"error": {"code": "overloaded"}}, 0.05)
    >>> (error.status, error.code, error.retry_after)
    (503, 'overloaded', 0.05)
    """

    def __init__(self, status: int, body: Any = None, retry_after: float | None = None) -> None:
        code = None
        if isinstance(body, dict):
            code = body.get("error", {}).get("code")
        super().__init__(f"service unavailable: HTTP {status} ({code or 'no error body'})")
        self.status = int(status)
        self.body = body
        self.code = code
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """How :meth:`ServiceClient.request` handles transient failures.

    Parameters
    ----------
    retries:
        Retry attempts *after* the first try (0 disables retrying).
    backoff:
        Base delay in seconds; attempt ``k`` waits ``backoff * 2**k``.
    max_backoff:
        Upper bound on any single computed delay (before Retry-After).
    jitter:
        Fractional random jitter added on top (0.2 → up to +20%), so a
        crowd of backed-off clients does not retry in lockstep.
    connect_timeout:
        Seconds to wait for the TCP connect (None disables).
    read_timeout:
        Seconds to wait for a full response (None disables).

    Raises
    ------
    ConfigurationError
        From :meth:`validate` on negative/invalid fields.

    Example
    -------
    >>> RetryPolicy(retries=2, backoff=0.1).delay(1, retry_after=None) >= 0.2
    True
    """

    retries: int = 3
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.2
    connect_timeout: float | None = 5.0
    read_timeout: float | None = 30.0

    def validate(self) -> "RetryPolicy":
        """Check every field; return self so construction chains.

        Returns
        -------
        RetryPolicy
            This instance, unchanged.

        Raises
        ------
        ConfigurationError
            When any field is negative or out of range.
        """
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError("backoff and max_backoff must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        for name in ("connect_timeout", "read_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive or None, got {value}")
        return self

    def delay(self, attempt: int, retry_after: float | None) -> float:
        """The sleep before retry ``attempt`` (0-based), with jitter.

        Parameters
        ----------
        attempt:
            Zero-based retry index.
        retry_after:
            Server-suggested minimum wait, when one was provided; the
            computed exponential delay never undercuts it.

        Returns
        -------
        float
            Seconds to sleep.
        """
        base = min(self.max_backoff, self.backoff * (2**attempt))
        if retry_after is not None:
            base = max(base, retry_after)
        return base * (1.0 + random.uniform(0.0, self.jitter))


class ServiceClient:
    """One keep-alive HTTP/1.1 connection to a running service.

    Parameters
    ----------
    host, port:
        The service's listening address.
    retry:
        The :class:`RetryPolicy` for every request; defaults to 3 retries
        with exponential backoff and 5s/30s connect/read timeouts.

    Raises
    ------
    ProtocolError
        On malformed response framing from the peer.
    ServiceUnavailableError
        When a request still answers 5xx after its retries.

    Example
    -------
    See the module docstring and ``tests/test_service_http.py``.
    """

    def __init__(self, host: str, port: int, *, retry: RetryPolicy | None = None) -> None:
        self.host = host
        self.port = int(port)
        self.retry = (retry or RetryPolicy()).validate()
        self.n_retries = 0  # retried sends, for tests/diagnostics
        self.last_headers: dict[str, str] = {}  # headers of the latest response
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServiceClient":
        """Open the TCP connection (with connect timeout); returns self."""
        opening = asyncio.open_connection(self.host, self.port)
        if self.retry.connect_timeout is not None:
            opening = asyncio.wait_for(opening, self.retry.connect_timeout)
        self._reader, self._writer = await opening
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
        self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, Any]:
        """Send one JSON request; return ``(status, parsed_body)``.

        4xx responses are returned like any other (they are the caller's
        protocol, not a transport failure).  Connection drops, timeouts and
        retryable 503s are retried per the :class:`RetryPolicy`; a 5xx that
        survives raises :class:`ServiceUnavailableError`.
        """
        last_unavailable: ServiceUnavailableError | None = None
        for attempt in range(self.retry.retries + 1):
            if attempt:
                self.n_retries += 1
                retry_after = last_unavailable.retry_after if last_unavailable else None
                await asyncio.sleep(self.retry.delay(attempt - 1, retry_after))
            try:
                status, body = await self._round_trip(method, path, payload)
            except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError, TimeoutError):
                await self.close()  # stale half-open socket; reconnect next try
                last_unavailable = None
                if attempt == self.retry.retries:
                    raise
                continue
            if status < 500:
                return status, body
            retry_after = _parse_retry_after(self.last_headers, body)
            last_unavailable = ServiceUnavailableError(status, body, retry_after)
            if status not in RETRYABLE_STATUSES:
                break
        raise last_unavailable

    async def _round_trip(self, method: str, path: str, payload: Any) -> tuple[int, Any]:
        """One send + receive on the (re)connected socket."""
        if self._writer is None or self._reader is None:
            await self.connect()
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        receiving = self._read_response()
        if self.retry.read_timeout is not None:
            receiving = asyncio.wait_for(receiving, self.retry.read_timeout)
        return await receiving

    async def _read_response(self) -> tuple[int, Any]:
        """Parse one HTTP response off the wire; headers land in
        :attr:`last_headers` (lower-cased names)."""
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split(" ", 2)[1])
        except (IndexError, ValueError) as error:
            raise ProtocolError(f"malformed status line {status_line!r}") from error
        headers = _parse_headers(head)
        self.last_headers = headers
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            # the server will hang up after this response; don't reuse it
            await self.close()
        return status, (json.loads(raw) if raw else None)

    # ------------------------------------------------------------------ #
    # WebSocket
    # ------------------------------------------------------------------ #

    async def open_websocket(self, path: str) -> "WebSocketSession":
        """Upgrade a *fresh* connection to a WebSocket session on ``path``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        head = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Connection: Upgrade\r\n"
            f"Upgrade: websocket\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        response = await reader.readuntil(b"\r\n\r\n")
        status_line = response.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f" {status_line} ":
            # the server answered with a normal (error) response; surface it
            headers = _parse_headers(response)
            length = int(headers.get("content-length", "0"))
            raw = await reader.readexactly(length) if length else b""
            writer.close()
            raise ProtocolError(
                f"websocket upgrade refused: {status_line} {raw.decode('utf-8', 'replace')}"
            )
        return WebSocketSession(reader, writer)

    async def open_stream(self, name: str, since: int = 0) -> "WebSocketSession":
        """Subscribe to a stream's events from cursor ``since``.

        Returns
        -------
        WebSocketSession
            A session whose :attr:`~WebSocketSession.cursor` tracks how many
            events have been delivered — feed it to :meth:`resume_stream`
            after a drop to continue without loss or duplication.
        """
        session = await self.open_websocket(f"/streams/{name}/ws?since={int(since)}")
        session.stream = name
        session.cursor = int(since)
        return session

    async def resume_stream(self, session: "WebSocketSession") -> "WebSocketSession":
        """Reopen a dropped stream session from its delivered-event cursor.

        The server's ``?since=`` replay re-sends exactly the events the old
        session never delivered, so the concatenated event sequence across
        the drop is identical to an uninterrupted subscription.
        """
        if session.stream is None:
            raise ConfigurationError("session was not opened via open_stream(); cannot resume")
        await session.close()
        return await self.open_stream(session.stream, since=session.cursor)


def _parse_headers(head: bytes) -> dict[str, str]:
    """Lower-cased header mapping of a raw response head."""
    headers: dict[str, str] = {}
    for line in head.decode("latin-1").split("\r\n")[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return headers


def _parse_retry_after(headers: dict[str, str], body: Any) -> float | None:
    """The server-suggested retry delay, from header or error body."""
    raw = headers.get("retry-after")
    if raw is not None:
        try:
            return float(raw)
        except ValueError:
            pass
    if isinstance(body, dict):
        value = body.get("error", {}).get("retry_after")
        if isinstance(value, (int, float)):
            return float(value)
    return None


class WebSocketSession:
    """A client-side WebSocket: JSON frames in both directions.

    Client frames are masked as RFC 6455 requires; control frames (ping,
    close) are handled transparently by :meth:`recv_json`.  Sessions opened
    through :meth:`ServiceClient.open_stream` also track :attr:`cursor` —
    the count of *event* frames delivered (acks/errors excluded, matching
    the server's event log indexing) — enabling safe ``?since=`` resume.

    Example
    -------
    ::

        session = await client.open_websocket("/streams/s1/ws")
        await session.send_json({"values": [0.1, 0.2, 0.3]})
        message = await session.recv_json()      # ack / event / error frame
        await session.close()
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self.stream: str | None = None
        self.cursor = 0

    async def send_json(self, payload: Any) -> None:
        """Send one masked text frame carrying ``payload`` as JSON."""
        frame = encode_frame(OP_TEXT, json.dumps(payload).encode("utf-8"), mask=True)
        self._writer.write(frame)
        await self._writer.drain()

    async def recv_json(self) -> Any | None:
        """Receive the next JSON text frame (None once the peer closes)."""
        while True:
            try:
                opcode, payload = await read_frame(self._reader)
            except (ProtocolError, ConnectionError):
                return None
            if opcode == OP_CLOSE:
                return None
            if opcode == OP_PING:
                self._writer.write(encode_frame(OP_PONG, payload, mask=True))
                await self._writer.drain()
                continue
            if opcode == OP_TEXT:
                message = json.loads(payload)
                if isinstance(message, dict) and message.get("kind") not in ("ack", "error"):
                    self.cursor += 1  # an event frame advances the replay cursor
                return message
            # ignore binary/pong frames

    async def close(self) -> None:
        """Send a close frame and drop the connection."""
        try:
            self._writer.write(encode_frame(OP_CLOSE, b"", mask=True))
            await self._writer.drain()
        except ConnectionError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass
