"""Named stream registry: detector lifecycle, shard routing, metrics.

Each client-created stream owns one registry-built detector, a cursor-
addressed event history (a bounded memory window backed by an optional disk
spill — :class:`repro.storage.history.StreamHistory`), a set of live
WebSocket subscribers, and latency/count metrics.  Cursors older than the
memory window are served from the spill log; when spilling is disabled they
get a typed 410 ``history-truncated`` carrying the oldest cursor that still
works.
Streams are hash-routed to shard workers with the *same* process-stable
CRC-32 partitioning the batch engine uses
(:func:`repro.streamengine.sharded.shard_for_key`), so a stream name maps to
the same shard here and in an offline :class:`~repro.streamengine.sharded.ShardedPipeline`
replay — and the assignment can be overridden per stream by the elastic
rebalancing path (freeze → checkpoint → adopt on another worker → resume).

Payload validation happens here, before anything reaches a worker: stream
names, detector configs (rejected by the registry's own typed validation),
observation arrays (shape, finiteness, batch size).  A malformed payload
raises a typed :class:`~repro.service.errors.ServiceError` and never
touches detector state.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api import ScoreEvent, create, event_from_dict
from repro.service.errors import ServiceError, unknown_stream
from repro.storage.history import DEFAULT_HISTORY_WINDOW, StreamHistory
from repro.streamengine.sharded import shard_for_key
from repro.utils.exceptions import ConfigurationError, HistoryTruncatedError, ReproError

#: Accepted stream names (URL-safe, bounded).
STREAM_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")
#: Hard cap on observations per batch; larger batches get a typed 413.
DEFAULT_MAX_BATCH = 100_000
#: Per-stream reservoir of recent event latencies (seconds).
LATENCY_WINDOW = 8_192


def quantile(samples: list[float], q: float) -> float | None:
    """The ``q`` quantile of a sample list (None when empty).

    Uses the nearest-rank method on a sorted copy — exact for the small
    per-stream reservoirs the metrics endpoint serves.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class StreamMetrics:
    """Event counts and latency reservoir of one stream."""

    n_observations: int = 0
    n_batches: int = 0
    #: Stale/duplicate batches silently dropped under ``duplicate_policy="drop"``.
    n_dropped_batches: int = 0
    event_counts: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)

    def record(self, n_values: int, events: list, seconds: float) -> None:
        """Account one processed batch: counts plus one latency per event."""
        self.n_observations += int(n_values)
        self.n_batches += 1
        for event in events:
            kind = getattr(type(event), "kind", "event")
            self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
            if len(self.latencies) >= LATENCY_WINDOW:
                self.latencies.pop(0)
            self.latencies.append(seconds)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe metrics view: counts plus p50/p99 event latency."""
        return {
            "n_observations": self.n_observations,
            "n_batches": self.n_batches,
            "n_dropped_batches": self.n_dropped_batches,
            "event_counts": dict(self.event_counts),
            "n_events": sum(self.event_counts.values()),
            "event_latency_p50_ms": _ms(quantile(self.latencies, 0.50)),
            "event_latency_p99_ms": _ms(quantile(self.latencies, 0.99)),
        }


def _ms(seconds: float | None) -> float | None:
    """Seconds → milliseconds rounded for display (None passes through)."""
    return None if seconds is None else round(seconds * 1e3, 3)


@dataclass
class StreamState:
    """One named stream: its detector, routing, event log and subscribers."""

    name: str
    detector: str
    config: dict[str, Any]
    segmenter: Any
    shard: int
    chunk_size: int | None = None
    include_scores: bool = False
    #: The stream's dirty-data policy (mapping form of
    #: :class:`repro.api.DataPolicy`), or None for strict rejection.
    data_policy: dict[str, Any] | None = None
    frozen: bool = False
    #: Events already fanned out (cursor into ``segmenter.events()``).
    n_emitted: int = 0
    #: Cursor-addressed event history: bounded memory window + disk spill.
    history: StreamHistory = field(default_factory=StreamHistory)
    metrics: StreamMetrics = field(default_factory=StreamMetrics)
    subscribers: set[asyncio.Queue] = field(default_factory=set)
    created_at: float = field(default_factory=time.time)
    #: Frozen checkpoint payload awaiting adoption by a worker (rebalance).
    checkpoint: dict[str, Any] | None = None
    #: Last client-supplied sequence number acked, and the ack it got — a
    #: duplicate of ``last_seq`` replays ``last_ack`` instead of processing.
    last_seq: int | None = None
    last_ack: dict[str, Any] | None = None
    #: Observation count up to which results have been published/acked; the
    #: recovery replay republishes only events beyond this frontier.
    n_acked: int = 0

    @property
    def accepts_non_finite(self) -> bool:
        """True when the stream's policy repairs NaN/inf instead of rejecting.

        Such streams skip the registry's finite-observations rejection: the
        detector-side sanitizer handles (and accounts for) the dirty values.
        """
        policy = self.data_policy or {}
        return policy.get("nan_policy", "reject") != "reject"

    @property
    def duplicate_policy(self) -> str:
        """How stale/duplicate sequence numbers are handled (reject|drop)."""
        policy = self.data_policy or {}
        return str(policy.get("duplicate_policy", "reject"))

    def info(self) -> dict[str, Any]:
        """JSON-safe stream descriptor served by ``GET /streams/{name}``."""
        descriptor = {
            "name": self.name,
            "detector": self.detector,
            "config": self.config,
            "shard": self.shard,
            "frozen": self.frozen,
            "n_seen": int(self.segmenter.n_seen) if self.segmenter is not None else 0,
            "n_events": len(self.history),
            "change_points": [int(cp) for cp in self.segmenter.change_points]
            if self.segmenter is not None
            else [],
        }
        if self.data_policy is not None:
            descriptor["data_policy"] = dict(self.data_policy)
        return descriptor

    def publish(self, payloads: list[dict[str, Any]]) -> None:
        """Append events to the history and fan them out to live subscribers."""
        self.history.append(payloads)
        for queue in list(self.subscribers):
            for payload in payloads:
                queue.put_nowait(payload)

    def commit_batch(
        self, segmenter: Any, n_values: int, elapsed: float, seq: int | None
    ) -> dict[str, Any]:
        """Publish one processed batch's fresh events and build its ack.

        The single bookkeeping path shared by the shard worker's normal
        ingestion and the durability layer's crash-recovery replay: slices
        the detector's event history at the ``n_emitted`` cursor, appends
        the optional per-batch :class:`~repro.api.ScoreEvent`, records
        metrics, fans the payloads out, advances the published/acked
        frontier and — when a sequence number was supplied — caches the ack
        for idempotent replay.
        """
        history = segmenter.events()
        fresh = list(history[self.n_emitted :])
        self.n_emitted = len(history)
        if self.include_scores:
            score = getattr(segmenter, "current_score", None)
            if score is not None:
                fresh.append(ScoreEvent(at=int(segmenter.n_seen), score=float(score)))
        self.metrics.record(n_values, fresh, elapsed)
        payloads = [event.to_dict() for event in fresh]
        self.publish(payloads)
        self.n_acked = int(segmenter.n_seen)
        ack: dict[str, Any] = {
            "name": self.name,
            "n_seen": int(segmenter.n_seen),
            "events": payloads,
        }
        if seq is not None:
            ack["seq"] = seq
            self.last_seq = seq
            self.last_ack = ack
        return ack


class StreamRegistry:
    """All live streams of one service instance, keyed by name.

    Parameters
    ----------
    n_shards:
        Number of shard workers streams are partitioned over.
    max_batch:
        Maximum observations accepted per batch (typed 413 beyond).
    history_window:
        Newest events kept in memory per stream (None = unbounded, the
        pre-storage behaviour).
    history_dir:
        Directory for per-stream event-log spills.  With a finite window
        and no spill directory, evicted events are dropped and stale
        ``?since=`` cursors get a typed 410 ``history-truncated``.

    Raises
    ------
    ConfigurationError
        When ``n_shards``, ``max_batch`` or ``history_window`` is not a
        positive integer.
    """

    def __init__(
        self,
        n_shards: int,
        max_batch: int = DEFAULT_MAX_BATCH,
        *,
        history_window: int | None = DEFAULT_HISTORY_WINDOW,
        history_dir: str | None = None,
    ) -> None:
        if not isinstance(n_shards, int) or isinstance(n_shards, bool) or n_shards < 1:
            raise ConfigurationError("n_shards must be a positive integer")
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ConfigurationError("max_batch must be a positive integer")
        if history_window is not None and (
            not isinstance(history_window, int)
            or isinstance(history_window, bool)
            or history_window < 1
        ):
            raise ConfigurationError("history_window must be a positive integer or None")
        self.n_shards = n_shards
        self.max_batch = max_batch
        self.history_window = history_window
        self.history_dir = history_dir
        self._streams: dict[str, StreamState] = {}

    def _history_for(self, name: str) -> StreamHistory:
        """Build a stream's history per the registry's bounding policy."""
        spill_path = None
        if self.history_dir is not None:
            spill_path = f"{self.history_dir}/{name}.events.log"
        return StreamHistory(window=self.history_window, spill_path=spill_path)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def create_stream(self, name: str, spec: dict[str, Any]) -> StreamState:
        """Create a stream from a JSON spec; validate everything up front.

        ``spec`` accepts ``detector`` (registry key, default ``"class"``),
        ``config`` (the detector's typed-config mapping), ``chunk_size``
        (ingestion chunking), ``include_scores`` (emit a
        :class:`~repro.api.events.ScoreEvent` per processed batch) and
        ``data_policy`` (mapping form of :class:`repro.api.DataPolicy` —
        per-stream dirty-data handling; under a repairing ``nan_policy``
        the finite-observations rejection is relaxed and NaN/inf runs are
        sanitized detector-side instead of 422'd).
        """
        if not isinstance(name, str) or not STREAM_NAME.match(name):
            raise ServiceError(
                400,
                "bad-stream-name",
                f"invalid stream name {name!r}; expected {STREAM_NAME.pattern}",
            )
        if name in self._streams:
            raise ServiceError(409, "stream-exists", f"stream {name!r} already exists")
        if not isinstance(spec, dict):
            raise ServiceError(400, "bad-request", "stream spec must be a JSON object")
        unknown = sorted(
            set(spec) - {"detector", "config", "chunk_size", "include_scores", "data_policy"}
        )
        if unknown:
            raise ServiceError(400, "bad-request", f"unknown stream spec fields: {unknown}")
        detector = spec.get("detector", "class")
        config = spec.get("config", {})
        chunk_size = spec.get("chunk_size")
        if chunk_size is not None and (not isinstance(chunk_size, int) or chunk_size < 1):
            raise ServiceError(400, "bad-request", "chunk_size must be a positive integer")
        if not isinstance(config, dict):
            raise ServiceError(400, "bad-config", "config must be a JSON object")
        data_policy = spec.get("data_policy")
        if data_policy is not None:
            if not isinstance(data_policy, dict):
                raise ServiceError(400, "bad-config", "data_policy must be a JSON object")
            if "data_policy" in config:
                raise ServiceError(
                    400,
                    "bad-config",
                    "data_policy given both as a spec field and inside config",
                )
            config = {**config, "data_policy": data_policy}
        try:
            segmenter = create(detector, config)
        except ReproError as error:  # registry/typed-config validation failures
            raise ServiceError(400, "bad-config", str(error)) from error
        stream = StreamState(
            name=name,
            detector=str(detector),
            config=config,
            segmenter=segmenter,
            shard=shard_for_key(name, self.n_shards),
            chunk_size=chunk_size,
            include_scores=bool(spec.get("include_scores", False)),
            data_policy=config.get("data_policy"),
            history=self._history_for(name),
        )
        self._streams[name] = stream
        return stream

    def get(self, name: str) -> StreamState:
        """The stream registered under ``name`` (typed 404 when absent)."""
        try:
            return self._streams[name]
        except KeyError:
            raise unknown_stream(name) from None

    def delete(self, name: str) -> StreamState:
        """Remove and return a stream (typed 404 when absent).

        The stream's history spill files, if any, are deleted with it.
        """
        stream = self.get(name)
        del self._streams[name]
        stream.history.discard()
        return stream

    def list_streams(self) -> list[StreamState]:
        """All streams in creation order."""
        return list(self._streams.values())

    def __len__(self) -> int:
        return len(self._streams)

    # ------------------------------------------------------------------ #
    # payload validation
    # ------------------------------------------------------------------ #

    def parse_observations(self, payload: Any, *, allow_non_finite: bool = False) -> np.ndarray:
        """Validate an observations payload into a float64 array.

        Accepts ``{"values": [...]}`` with a flat list (univariate) or a
        list of equal-length rows (multivariate), plus an optional ``"seq"``
        sequence number (validated by :meth:`parse_sequence`).  Rejects,
        with typed 4xx errors: non-object payloads, missing/empty/ragged
        values, non-numeric entries, NaN/inf entries, and batches beyond
        ``max_batch``.  The finiteness mask is computed in one pass; the
        422 ``non-finite-observations`` detail carries both the first bad
        flat index and its value.  ``allow_non_finite=True`` (used for
        streams whose :class:`repro.api.DataPolicy` repairs dirty values)
        skips that rejection and lets NaN/inf through to the sanitizer.
        """
        if not isinstance(payload, dict) or "values" not in payload:
            raise ServiceError(
                400, "bad-request", "observations payload must be {'values': [...]}"
            )
        unknown = sorted(set(payload) - {"values", "seq"})
        if unknown:
            raise ServiceError(400, "bad-request", f"unknown observation fields: {unknown}")
        values = payload["values"]
        if not isinstance(values, list) or not values:
            raise ServiceError(400, "bad-request", "'values' must be a non-empty JSON array")
        if len(values) > self.max_batch:
            raise ServiceError(
                413,
                "oversized-batch",
                f"batch of {len(values)} observations exceeds the {self.max_batch} limit",
                detail={"max_batch": self.max_batch},
            )
        try:
            array = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ServiceError(
                422, "bad-observations", "'values' must be numbers (or equal-length rows)",
                detail=str(error),
            ) from error
        if array.ndim not in (1, 2):
            raise ServiceError(
                422, "bad-observations", f"'values' must be 1-d or 2-d, got shape {array.shape}"
            )
        if not allow_non_finite:
            finite = np.isfinite(array).reshape(-1)
            if not finite.all():
                bad = int(np.flatnonzero(~finite)[0])
                raise ServiceError(
                    422,
                    "non-finite-observations",
                    "observations must be finite numbers (no NaN/inf)",
                    detail={
                        "first_bad_index": bad,
                        "first_bad_value": repr(float(array.reshape(-1)[bad])),
                    },
                )
        return array

    @staticmethod
    def parse_sequence(payload: Any) -> int | None:
        """The optional ``"seq"`` sequence number of an observations payload.

        ``seq`` makes batch ingestion idempotent: clients number their
        batches monotonically; a retry of the last acked batch replays the
        cached ack instead of double-processing.  Returns None when absent;
        raises a typed 400 on a non-integer or negative value.
        """
        if not isinstance(payload, dict):
            return None
        seq = payload.get("seq")
        if seq is None:
            return None
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise ServiceError(
                400, "bad-sequence", f"'seq' must be a non-negative integer, got {seq!r}"
            )
        return seq

    # ------------------------------------------------------------------ #
    # event log access
    # ------------------------------------------------------------------ #

    def events_since(self, name: str, cursor: int) -> tuple[list[dict[str, Any]], int]:
        """Event payloads of a stream from ``cursor`` on, plus the next cursor.

        Cursors beyond the memory window are served from the stream's disk
        spill; cursors predating everything retained raise a typed 410
        ``history-truncated`` whose detail carries the ``earliest`` cursor
        that can still be replayed.
        """
        stream = self.get(name)
        if cursor < 0:
            raise ServiceError(400, "bad-request", "'since' must be a non-negative integer")
        try:
            return stream.history.read_since(cursor)
        except HistoryTruncatedError as error:
            raise ServiceError(
                410,
                "history-truncated",
                f"cursor {cursor} predates the retained event history of {name!r}; "
                f"replay from {error.earliest} or enable a history spill directory",
                detail={"earliest": error.earliest, "cursor": int(cursor)},
            ) from error

    @staticmethod
    def typed_events(payloads: list[dict[str, Any]]) -> list:
        """Rebuild typed event objects from logged payloads (audit helper)."""
        return [event_from_dict(dict(payload)) for payload in payloads]
