"""Durable stream state: periodic checkpoints + a write-ahead batch tail log.

Durability contract (pinned by ``tests/test_service_durability.py`` and the
chaos suite): **no acked observation is ever lost**.  Two artefacts per
stream live under a spool directory:

* ``checkpoint-<n_seen>.ckpt`` — the detector's full
  :meth:`save_state` payload, written atomically (tmp + fsync + rename)
  with a CRC-32 integrity frame by
  :func:`repro.api.checkpoint.write_payload_file`.  Checkpoints are taken
  every ``checkpoint_every_n`` observations and/or every
  ``checkpoint_every_seconds`` of wall clock; the newest
  ``keep_checkpoints`` are retained so a corrupt newest file falls back to
  its predecessor.
* ``tail.log`` — an append-only, CRC-framed record per accepted batch,
  fsynced *before* the batch mutates the detector (write-ahead).  Recovery
  restores the newest valid checkpoint and replays the tail records beyond
  it through the normal ingestion path — bit-identical to an uninterrupted
  run thanks to the detectors' chunk-invariance and checkpoint guarantees.

On each successful checkpoint the tail is compacted down to the records the
*oldest retained* checkpoint still needs, so fallback recovery always has a
complete replay window.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import re
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.api import restore
from repro.api.checkpoint import read_payload_file, write_payload_file
from repro.api.protocol import iter_chunks
from repro.utils.exceptions import ConfigurationError, CorruptCheckpointError

logger = logging.getLogger(__name__)

#: Spool checkpoint envelope marker.
SPOOL_FORMAT = "repro.spool/1"
#: Checkpoint file name pattern (``n_seen`` zero-padded for lexical order).
CHECKPOINT_NAME = re.compile(r"^checkpoint-(\d{12})\.ckpt$")


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning of the per-stream spool.

    Parameters
    ----------
    spool_dir:
        Root directory for per-stream spools (created if missing).
    checkpoint_every_n:
        Take a checkpoint once at least this many observations arrived
        since the last one.
    checkpoint_every_seconds:
        Also checkpoint once this much wall clock passed since the last
        one (None disables the clock trigger).
    fsync:
        Fsync tail appends and checkpoint writes (disable only for tests
        where durability across host crashes is irrelevant).
    keep_checkpoints:
        Newest checkpoints retained per stream (>= 2 so a corrupt newest
        file can fall back to its predecessor).
    """

    spool_dir: str | Path
    checkpoint_every_n: int = 2_048
    checkpoint_every_seconds: float | None = 30.0
    fsync: bool = True
    keep_checkpoints: int = 2

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range settings."""
        if self.checkpoint_every_n < 1:
            raise ConfigurationError("checkpoint_every_n must be a positive integer")
        if self.checkpoint_every_seconds is not None and self.checkpoint_every_seconds <= 0:
            raise ConfigurationError("checkpoint_every_seconds must be positive or None")
        if self.keep_checkpoints < 2:
            raise ConfigurationError("keep_checkpoints must be >= 2 (corruption fallback)")


class StreamSpool:
    """The on-disk durability state of one stream."""

    def __init__(self, root: Path, name: str, *, fsync: bool = True) -> None:
        self.directory = root / name
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.tail_path = self.directory / "tail.log"
        self.meta_path = self.directory / "meta.json"
        self._tail_handle = None
        #: Bookkeeping for the checkpoint cadence.
        self.last_checkpoint_n = 0
        self.last_checkpoint_time = time.monotonic()
        self.last_checkpoint_wall = time.time()

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #

    def write_meta(self, meta: dict[str, Any]) -> None:
        """Persist the stream's spec (detector, config, chunking) as JSON."""
        tmp = self.meta_path.with_name(self.meta_path.name + ".tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.meta_path)

    # ------------------------------------------------------------------ #
    # write-ahead tail log
    # ------------------------------------------------------------------ #

    def append_tail(self, start: int, values: np.ndarray, seq: int | None) -> None:
        """Append one accepted batch *before* it is processed (write-ahead)."""
        record = {"start": int(start), "values": np.asarray(values), "seq": seq}
        body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        frame = (
            len(body).to_bytes(4, "big") + zlib.crc32(body).to_bytes(4, "big") + body
        )
        if self._tail_handle is None:
            self._tail_handle = self.tail_path.open("ab")
        self._tail_handle.write(frame)
        self._tail_handle.flush()
        if self.fsync:
            os.fsync(self._tail_handle.fileno())

    def read_tail(self) -> list[dict[str, Any]]:
        """All valid tail records in append order.

        A truncated or corrupt record ends the scan (everything before it is
        still returned): with fsync-before-ack, every *acked* batch lies in
        the valid prefix by construction.
        """
        if not self.tail_path.exists():
            return []
        raw = self.tail_path.read_bytes()
        records: list[dict[str, Any]] = []
        offset = 0
        while offset + 8 <= len(raw):
            length = int.from_bytes(raw[offset : offset + 4], "big")
            stored = int.from_bytes(raw[offset + 4 : offset + 8], "big")
            body = raw[offset + 8 : offset + 8 + length]
            if len(body) < length or zlib.crc32(body) != stored:
                logger.warning(
                    "tail log %s: corrupt/truncated record at byte %d; "
                    "keeping the %d valid records before it",
                    self.tail_path, offset, len(records),
                )
                break
            records.append(pickle.loads(body))
            offset += 8 + length
        return records

    def compact_tail(self, min_start: int) -> None:
        """Atomically drop tail records that start before ``min_start``."""
        kept = [record for record in self.read_tail() if record["start"] >= min_start]
        if self._tail_handle is not None:
            self._tail_handle.close()
            self._tail_handle = None
        tmp = self.tail_path.with_name(self.tail_path.name + ".tmp")
        with tmp.open("wb") as handle:
            for record in kept:
                body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
                handle.write(
                    len(body).to_bytes(4, "big")
                    + zlib.crc32(body).to_bytes(4, "big")
                    + body
                )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.tail_path)

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #

    def checkpoint_paths(self) -> list[tuple[int, Path]]:
        """``(n_seen, path)`` of every checkpoint file, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = CHECKPOINT_NAME.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def write_checkpoint(self, n_seen: int, envelope: dict[str, Any]) -> Path:
        """Atomically persist one checkpoint; returns its path."""
        path = self.directory / f"checkpoint-{n_seen:012d}.ckpt"
        write_payload_file(path, envelope, fsync=self.fsync)
        self.last_checkpoint_n = n_seen
        self.last_checkpoint_time = time.monotonic()
        self.last_checkpoint_wall = time.time()
        return path

    def prune_checkpoints(self, keep: int) -> int:
        """Delete all but the newest ``keep`` checkpoints; returns the oldest
        retained ``n_seen`` (0 when no checkpoint exists)."""
        paths = self.checkpoint_paths()
        for _, path in paths[:-keep]:
            path.unlink(missing_ok=True)
        retained = paths[-keep:]
        return retained[0][0] if retained else 0

    def load_latest_checkpoint(self) -> tuple[int, dict[str, Any]]:
        """The newest *valid* checkpoint envelope, falling back on corruption.

        Raises
        ------
        CorruptCheckpointError
            When no checkpoint file survives its integrity check.
        """
        paths = self.checkpoint_paths()
        for n_seen, path in reversed(paths):
            try:
                envelope = read_payload_file(path)
            except CorruptCheckpointError as error:
                logger.error("checkpoint %s is corrupt (%s); trying predecessor", path, error)
                continue
            if envelope.get("format") != SPOOL_FORMAT:
                logger.error("checkpoint %s has foreign format %r", path, envelope.get("format"))
                continue
            return n_seen, envelope
        raise CorruptCheckpointError(
            f"no valid checkpoint in {self.directory} ({len(paths)} file(s) tried)"
        )

    def close(self) -> None:
        """Release the tail file handle (the spool stays on disk)."""
        if self._tail_handle is not None:
            self._tail_handle.close()
            self._tail_handle = None


@dataclass
class RecoveryReport:
    """What one stream's recovery did (returned by :meth:`DurabilityManager.restore`)."""

    stream: str
    checkpoint_n_seen: int
    n_replayed_batches: int
    n_replayed_observations: int
    n_republished_events: int
    fell_back: bool


class DurabilityManager:
    """All stream spools of one service instance.

    The manager is deliberately synchronous: it is only ever called from the
    owning shard worker (serialized per stream) or from the supervisor while
    the shard's replacement worker is not yet started, so there is no
    concurrent access to a given spool.
    """

    def __init__(self, config: DurabilityConfig, faults=None) -> None:
        config.validate()
        self.config = config
        self.root = Path(config.spool_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self._spools: dict[str, StreamSpool] = {}

    def spool_for(self, name: str) -> StreamSpool:
        """The (cached) spool of one stream."""
        spool = self._spools.get(name)
        if spool is None:
            spool = self._spools[name] = StreamSpool(
                self.root, name, fsync=self.config.fsync
            )
        return spool

    # ------------------------------------------------------------------ #
    # the write path (called from the shard worker)
    # ------------------------------------------------------------------ #

    def register(self, stream) -> None:
        """Create the spool for a new stream: meta + a birth checkpoint."""
        spool = self.spool_for(stream.name)
        spool.write_meta(
            {
                "name": stream.name,
                "detector": stream.detector,
                "config": stream.config,
                "chunk_size": stream.chunk_size,
                "include_scores": stream.include_scores,
                "created_at": stream.created_at,
            }
        )
        self.checkpoint(stream)

    def log_batch(self, stream, values: np.ndarray, seq: int | None) -> None:
        """Write-ahead: persist an accepted batch before it is processed."""
        self.spool_for(stream.name).append_tail(
            int(stream.segmenter.n_seen), values, seq
        )

    def maybe_checkpoint(self, stream) -> bool:
        """Checkpoint when the observation-count or wall-clock trigger fires."""
        spool = self.spool_for(stream.name)
        n_seen = int(stream.segmenter.n_seen)
        due = n_seen - spool.last_checkpoint_n >= self.config.checkpoint_every_n
        if not due and self.config.checkpoint_every_seconds is not None:
            due = (
                n_seen > spool.last_checkpoint_n
                and time.monotonic() - spool.last_checkpoint_time
                >= self.config.checkpoint_every_seconds
            )
        if not due:
            return False
        self.checkpoint(stream)
        return True

    def checkpoint(self, stream) -> Path | None:
        """Unconditionally checkpoint a stream (no-op while it is frozen)."""
        if stream.segmenter is None:
            return None
        spool = self.spool_for(stream.name)
        n_seen = int(stream.segmenter.n_seen)
        envelope = {
            "format": SPOOL_FORMAT,
            "n_seen": n_seen,
            "state": stream.segmenter.save_state(),
            "last_seq": stream.last_seq,
        }
        path = spool.write_checkpoint(n_seen, envelope)
        if self.faults is not None:
            self.faults.corrupt_checkpoint(path, stream.name)
        oldest_retained = spool.prune_checkpoints(self.config.keep_checkpoints)
        spool.compact_tail(oldest_retained)
        return path

    def discard(self, name: str) -> None:
        """Drop a deleted stream's spool from disk."""
        spool = self._spools.pop(name, None)
        if spool is not None:
            spool.close()
        directory = self.root / name
        if directory.exists():
            for path in directory.iterdir():
                path.unlink(missing_ok=True)
            directory.rmdir()

    def checkpoint_age(self, name: str) -> float | None:
        """Seconds since the stream's last checkpoint (None if never)."""
        spool = self._spools.get(name)
        if spool is None:
            return None
        return time.monotonic() - spool.last_checkpoint_time

    # ------------------------------------------------------------------ #
    # the recovery path (called from the supervisor)
    # ------------------------------------------------------------------ #

    def recover(self, stream) -> RecoveryReport:
        """Rebuild a crashed stream: newest valid checkpoint + tail replay.

        The half-mutated in-memory detector is discarded.  Replay feeds the
        tail records beyond the checkpoint through the stream's normal
        chunked ingestion; events that were already published before the
        crash are regenerated bit-identically but *not* re-published (the
        ``n_acked`` frontier), so subscribers and the event log see exactly
        the uninterrupted sequence.
        """
        spool = self.spool_for(stream.name)
        checkpoints = spool.checkpoint_paths()
        ckpt_n, envelope = spool.load_latest_checkpoint()
        fell_back = bool(checkpoints) and ckpt_n != checkpoints[-1][0]
        segmenter = restore(envelope["state"])
        published_until = stream.n_acked
        replayed = observations = republished = 0
        for record in spool.read_tail():
            start = record["start"]
            if start < ckpt_n:
                continue  # already inside the checkpoint
            if start != int(segmenter.n_seen):
                logger.error(
                    "tail replay gap on stream %r: record starts at %d, detector at %d",
                    stream.name, start, int(segmenter.n_seen),
                )
                break
            values = record["values"]
            chunk_size = stream.chunk_size or values.shape[0]
            for chunk in iter_chunks(values, chunk_size):
                segmenter.process(chunk)
            replayed += 1
            observations += int(values.shape[0])
            if start >= published_until:
                # this batch's results never reached subscribers: publish now
                ack = stream.commit_batch(segmenter, int(values.shape[0]), 0.0, record["seq"])
                republished += len(ack["events"])
        stream.segmenter = segmenter
        spool.last_checkpoint_time = time.monotonic()  # freshly consistent
        report = RecoveryReport(
            stream=stream.name,
            checkpoint_n_seen=ckpt_n,
            n_replayed_batches=replayed,
            n_replayed_observations=observations,
            n_republished_events=republished,
            fell_back=fell_back,
        )
        logger.warning(
            "recovered stream %r from checkpoint@%d (+%d batch(es), %d obs replayed, "
            "%d event(s) republished%s)",
            stream.name, ckpt_n, replayed, observations, republished,
            ", after corrupt-checkpoint fallback" if fell_back else "",
        )
        return report
