"""Command-line interface for quick, scriptable use of the library.

Five sub-commands cover the common workflows without writing Python:

* ``segment``   — stream a CSV/NPZ/NPY file (or a generated demo stream)
  through ClaSS and print the detected change points, as human-readable text
  or as one JSON event per line; ``--checkpoint`` / ``--resume`` persist and
  restore the full segmenter state between invocations.  ``.npy`` inputs are
  memory-mapped, so files far larger than RAM work.
* ``serve``     — run the asyncio segmentation service: named streams over
  HTTP/WebSocket, hash-sharded workers, live rebalancing (``docs/service.rst``).
* ``store``     — the durable stream store (``docs/storage.rst``):
  ``ingest`` a dataset into memory-mapped chunk segments, ``segment`` it with
  full event logging + periodic detector snapshots, ``log`` replays the
  recorded events, and ``resegment`` replays the input from a mid-stream T
  (or through a different detector/config) and prints the old-vs-new audit.
* ``evaluate``  — run ClaSS and selected competitors over a simulated
  collection and print the Covering summary and ranking.
* ``datasets``  — list the available dataset collections (Table 1).

Detectors are constructed exclusively through the :mod:`repro.api` registry:
the ``segment`` flags populate a :class:`~repro.api.ClaSSConfig`, and a
resumed checkpoint rebuilds whatever detector it was written from.

Examples
--------
::

    python -m repro.cli datasets
    python -m repro.cli serve --port 8765 --shards 4
    python -m repro.cli segment --demo --window-size 2000
    python -m repro.cli segment recording.csv --scoring-interval 5 --output json
    python -m repro.cli segment part1.csv --checkpoint state.ckpt
    python -m repro.cli segment part2.csv --resume state.ckpt
    python -m repro.cli store ingest sensor-7 recording.npy --root ./streams
    python -m repro.cli store segment sensor-7 --root ./streams --detector class
    python -m repro.cli store log sensor-7 --root ./streams --since 0
    python -m repro.cli store resegment sensor-7 --root ./streams --from-t 50000
    python -m repro.cli evaluate --collection TSSB --n-series 4 --methods ClaSS,Window,DDM
    python -m repro.cli evaluate --collection TSSB --n-series 8 --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.api import (
    ChangePointEvent,
    ClaSSConfig,
    create,
    load_checkpoint,
    save_checkpoint,
    stream,
)
from repro.core.class_segmenter import capped_window_size
from repro.core.cross_val import CROSS_VAL_IMPLEMENTATIONS
from repro.core.kernels import KERNEL_BACKENDS
from repro.core.quality import NAN_POLICIES
from repro.datasets import COLLECTIONS, SegmentSpec, compose_stream, load_collection
from repro.datasets.loaders import load_dataset_csv, load_dataset_npz
from repro.evaluation import (
    covering_score,
    critical_difference_analysis,
    default_method_factories,
    format_ranking,
    format_summary,
    run_experiment,
)


def _demo_dataset():
    """Small built-in demo stream with two change points."""
    specs = [
        SegmentSpec("sine", 1_200, {"period": 40, "noise": 0.05}, label="slow"),
        SegmentSpec("square", 1_200, {"period": 80, "noise": 0.05}, label="cycling"),
        SegmentSpec("sine", 1_200, {"period": 15, "noise": 0.05}, label="fast"),
    ]
    return compose_stream(specs, name="demo", seed=0)


def _load_values(path: str):
    """Load a dataset from CSV/NPZ/NPY, returning (values, change_points or None).

    ``.npy`` files are opened with ``np.load(..., mmap_mode="r")``, so inputs
    far larger than RAM segment fine — the detector reads the array
    chunk-wise and only the touched pages ever become resident.
    """
    file_path = Path(path)
    if file_path.suffix == ".npz":
        dataset = load_dataset_npz(file_path)
        return dataset.values, dataset.change_points
    if file_path.suffix == ".csv":
        dataset = load_dataset_csv(file_path)
        return dataset.values, dataset.change_points
    if file_path.suffix == ".npy":
        return np.load(file_path, mmap_mode="r"), None
    values = np.loadtxt(file_path, dtype=np.float64)
    return np.atleast_1d(values), None


def cmd_datasets(_: argparse.Namespace) -> int:
    """List the dataset collections and their paper specifications."""
    print(f"{'collection':10s} {'kind':10s} {'paper #TS':>9s}  description")
    for name, spec in COLLECTIONS.items():
        print(f"{name:10s} {spec.kind:10s} {spec.paper_n_series:9d}  {spec.description}")
    return 0


def cmd_segment(args: argparse.Namespace) -> int:
    """Stream one series through a registry-built detector; print its events."""
    if args.chunk_size < 1:
        print("error: --chunk-size must be a positive integer", file=sys.stderr)
        return 2
    emit_json = args.output == "json"
    # in JSON mode stdout carries events only; progress goes to stderr
    info = sys.stderr if emit_json else sys.stdout
    if args.demo or args.input is None:
        dataset = _demo_dataset()
        values, annotation = dataset.values, dataset.change_points
        print(f"using built-in demo stream ({values.shape[0]} observations)", file=info)
    else:
        values, annotation = _load_values(args.input)
        print(f"loaded {values.shape[0]} observations from {args.input}", file=info)

    if args.resume:
        try:
            segmenter = load_checkpoint(args.resume)
        except Exception as error:  # surface any load failure as a CLI error
            print(f"error: cannot resume from {args.resume}: {error}", file=sys.stderr)
            return 2
        print(
            f"resumed from {args.resume} ({segmenter.n_seen} observations already seen)",
            file=info,
        )
    else:
        data_policy = None
        if args.nan_policy != "reject" or args.max_gap is not None:
            data_policy = {"nan_policy": args.nan_policy}
            if args.max_gap is not None:
                data_policy["max_gap"] = args.max_gap
        try:
            config = ClaSSConfig(
                window_size=capped_window_size(args.window_size, values.shape[0]),
                subsequence_width=args.subsequence_width,
                scoring_interval=args.scoring_interval,
                significance_level=args.significance_level,
                cross_val_implementation=args.cross_val,
                kernel_backend=args.backend,
                data_policy=data_policy,
            )
        except Exception as error:  # e.g. --max-gap with the default reject policy
            print(f"error: {error}", file=sys.stderr)
            return 2
        segmenter = create("class", config)

    # chunked ingestion (behaviour-identical to point-wise, much faster);
    # events are emitted as soon as the chunk containing them is done.  With
    # --checkpoint the stream is left un-finalised so it can be resumed.
    finalize = args.checkpoint is None
    for event in stream(segmenter, values, chunk_size=args.chunk_size, finalize=finalize):
        if emit_json:
            print(json.dumps(event.to_dict()))
        elif isinstance(event, ChangePointEvent):
            print(f"change point at t={event.change_point} (reported at t={event.at})")
        elif event.kind == "gap":
            reset = " (warm-up reset)" if event.reset else ""
            print(f"data gap of {event.gap} observations ending at t={event.at}{reset}")
        elif event.kind == "data_quality":
            repaired = event.imputed or event.skipped
            print(f"repaired {repaired} dirty observation(s) ending at t={event.at}")

    if args.checkpoint:
        save_checkpoint(segmenter, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}", file=info)

    width = getattr(segmenter, "subsequence_width_", None)
    change_points = segmenter.change_points
    score = None
    # on a resumed run the change points are absolute positions over the whole
    # (multi-invocation) stream while the annotation covers only this file, so
    # a covering score would be silently wrong — skip it
    if annotation is not None and annotation.size and not args.resume:
        score = covering_score(annotation, change_points, values.shape[0])
    if emit_json:
        summary = {
            "kind": "summary",
            "n_seen": int(segmenter.n_seen),
            "subsequence_width": width,
            "change_points": change_points.tolist(),
        }
        if score is not None:
            summary["covering"] = round(score, 6)
        print(json.dumps(summary))
    else:
        print(f"learned subsequence width: {width}")
        print(f"change points: {change_points.tolist()}")
        if score is not None:
            print(f"covering vs annotation: {score:.3f}")
    return 0


def _open_store(args: argparse.Namespace):
    """The :class:`~repro.storage.StreamStore` rooted at ``--root``."""
    from repro.storage import StreamStore

    return StreamStore(args.root)


def _parse_config(raw: str | None) -> dict | None:
    """Parse a ``--config`` JSON object (None passes through)."""
    if raw is None:
        return None
    config = json.loads(raw)
    if not isinstance(config, dict):
        raise ValueError("--config must be a JSON object")
    return config


def cmd_store_ingest(args: argparse.Namespace) -> int:
    """Ingest a dataset file into the chunk store (constant memory)."""
    try:
        values, _ = _load_values(args.input)
        stored = _open_store(args).ingest(args.name, values, append=args.append)
    except Exception as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    info = stored.info()
    print(
        f"ingested {info['n_rows']} rows into {args.name!r} "
        f"({info['n_segments']} segment file(s), {info['bytes']} bytes)"
    )
    return 0


def cmd_store_list(args: argparse.Namespace) -> int:
    """List the store's streams with their sizes and recorded runs."""
    store = _open_store(args)
    names = store.list_streams()
    if not names:
        print("(no streams)")
        return 0
    for name in names:
        info = store.stream_info(name)
        run = info.get("run")
        suffix = (
            f"  run: {run['detector']}, {run['n_change_points']} change point(s)"
            if run
            else "  (never segmented)"
        )
        print(f"{name:30s} {info['n_rows']:>12d} rows  {info['n_segments']:>4d} seg{suffix}")
    return 0


def cmd_store_segment(args: argparse.Namespace) -> int:
    """Segment a stored stream, recording events + periodic snapshots."""
    try:
        config = _parse_config(args.config)
        run = _open_store(args).segment(
            args.name,
            args.detector,
            config,
            chunk_size=args.chunk_size,
            checkpoint_every=args.checkpoint_every,
            include_scores=args.include_scores,
            finalize=args.finalize,
        )
    except Exception as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output == "json":
        print(json.dumps(run.to_dict()))
    else:
        print(
            f"segmented {run.n_seen} observations with {run.detector}: "
            f"{run.n_events} event(s), {run.n_checkpoints} snapshot(s)"
        )
        for entry in run.change_points:
            print(f"change point at t={entry['change_point']} (reported at t={entry['at']})")
    return 0


def cmd_store_log(args: argparse.Namespace) -> int:
    """Replay a stored stream's recorded events (cursor or time range)."""
    store = _open_store(args)
    try:
        log = store.event_log(args.name)
    except Exception as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.from_t is not None or args.to_t is not None:
            records = log.read_range(args.from_t or 0, args.to_t)
        else:
            records = list(log.iter_records(args.since))
        for record in records:
            print(json.dumps(record))
    finally:
        log.close()
    return 0


def cmd_store_resegment(args: argparse.Namespace) -> int:
    """Replay from T (same or new config) and print the audit diff."""
    try:
        config = _parse_config(args.config)
        audit = _open_store(args).resegment(
            args.name,
            args.from_t,
            detector=args.detector,
            config=config,
            chunk_size=args.chunk_size,
            tolerance=args.tolerance,
        )
    except Exception as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output == "json":
        print(json.dumps(audit.to_dict()))
    else:
        print(audit.summary())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio segmentation service until interrupted.

    SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued
    batches drain, every durable stream is checkpointed, and the process
    exits 0.
    """
    import asyncio

    from repro.service import DurabilityConfig, SegmentationService, SupervisorConfig
    from repro.utils.exceptions import ConfigurationError

    try:
        durability = None
        if args.spool_dir:
            durability = DurabilityConfig(
                spool_dir=args.spool_dir,
                checkpoint_every_n=args.checkpoint_every,
                checkpoint_every_seconds=args.checkpoint_interval,
            )
        supervision = SupervisorConfig(
            max_queue_depth=args.max_queue, job_deadline=args.job_deadline
        )
        service = SegmentationService(
            n_shards=args.shards,
            max_batch=args.max_batch,
            durability=durability,
            supervision=supervision,
            history_window=args.history_window if args.history_window > 0 else None,
            history_dir=args.history_dir,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spool_note = f", spool at {args.spool_dir}" if args.spool_dir else ""
    print(
        f"serving segmentation on http://{args.host}:{args.port} "
        f"({args.shards} shard worker(s){spool_note}; ctrl-c to stop)",
        file=sys.stderr,
    )
    try:
        asyncio.run(service.serve_forever(host=args.host, port=args.port))
        print("drained and checkpointed; bye", file=sys.stderr)
    except KeyboardInterrupt:  # event loops without signal-handler support
        print("shutting down", file=sys.stderr)
    except OSError as error:  # e.g. port already bound
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Run a miniature version of the paper's comparison on one collection."""
    if args.workers < 1:
        print("error: --workers must be a positive integer", file=sys.stderr)
        return 2
    datasets = load_collection(
        args.collection, n_series=args.n_series, length_scale=args.length_scale
    )
    include = [m.strip() for m in args.methods.split(",")] if args.methods else None
    methods = default_method_factories(
        window_size=args.window_size,
        scoring_interval=args.scoring_interval,
        floss_stride=args.scoring_interval,
        include=include,
    )
    result = run_experiment(
        methods, datasets, verbose=not args.quiet and args.workers == 1, n_workers=args.workers
    )
    if result.grid_stats is not None and not args.quiet:
        stats = result.grid_stats
        print(
            f"parallel grid: {stats.n_tasks} cells on {stats.n_workers} workers, "
            f"{stats.wall_seconds:.2f}s wall, speedup {stats.speedup:.2f}x"
        )
    print()
    print(format_summary(result.summary_by_method()))
    matrix, _, names = result.score_matrix()
    if len(names) >= 3:
        analysis = critical_difference_analysis(matrix, names)
        print()
        print(format_ranking(analysis.ordering(), analysis.critical_difference))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list dataset collections")
    datasets_parser.set_defaults(handler=cmd_datasets)

    segment_parser = subparsers.add_parser("segment", help="segment a stream with ClaSS")
    segment_parser.add_argument(
        "input", nargs="?", help="CSV/NPZ/plain-text file with one value per row"
    )
    segment_parser.add_argument("--demo", action="store_true", help="use the built-in demo stream")
    segment_parser.add_argument("--window-size", type=int, default=10_000)
    segment_parser.add_argument("--subsequence-width", type=int, default=None)
    segment_parser.add_argument("--scoring-interval", type=int, default=10)
    segment_parser.add_argument("--significance-level", type=float, default=1e-50)
    segment_parser.add_argument(
        "--chunk-size",
        type=int,
        default=1_024,
        help="observations per ingestion chunk (results are identical for any value)",
    )
    segment_parser.add_argument(
        "--cross-val",
        default="fast",
        choices=sorted(CROSS_VAL_IMPLEMENTATIONS),
        help="ClaSP scoring implementation (change points are identical for all; "
        "'fast' consumes the incrementally cached thresholds)",
    )
    segment_parser.add_argument(
        "--backend",
        default="auto",
        choices=KERNEL_BACKENDS,
        help="kernel backend for the k-NN hot paths (results are identical for all; "
        "'auto' uses the numba JIT kernels when numba is installed)",
    )
    segment_parser.add_argument(
        "--nan-policy",
        default="reject",
        choices=NAN_POLICIES,
        help="dirty-data handling: 'reject' (default) raises on NaN/inf; 'skip' drops "
        "them; 'hold-last' repeats the last finite value; 'linear-interp' bridges "
        "runs between finite neighbours (results are chunk-size invariant)",
    )
    segment_parser.add_argument(
        "--max-gap",
        type=int,
        default=None,
        metavar="N",
        help="with a repairing --nan-policy: dirty runs longer than N are skipped "
        "and reported as a typed gap event instead of being imputed",
    )
    segment_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write the full segmenter state to PATH after streaming (the stream is "
        "left un-finalised so a later --resume continues bit-identically)",
    )
    segment_parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="restore the segmenter from a --checkpoint file instead of constructing "
        "a new one (detector construction flags are ignored)",
    )
    segment_parser.add_argument(
        "--output",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text, or one JSON event object per line "
        "(warmup / change_point events plus a final summary)",
    )
    segment_parser.set_defaults(handler=cmd_segment)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio segmentation service (HTTP + WebSocket)",
        description="Run the asyncio segmentation service.  Per-stream dirty-data "
        "policies pass straight through: clients set a 'data_policy' field in the "
        "stream spec (docs/data-quality.rst) and the service relaxes its finite-"
        "observations rejection for repairing policies.",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765)
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard workers; streams are CRC-32 hash-routed across them",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=100_000,
        help="maximum observations accepted per batch (larger requests get a 413)",
    )
    serve_parser.add_argument(
        "--spool-dir",
        metavar="PATH",
        default=None,
        help="enable durable checkpoints + write-ahead tails under PATH; crashed "
        "workers then recover their streams bit-identically (docs/fault-tolerance.rst)",
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=2_048,
        help="observations between periodic checkpoints of each durable stream",
    )
    serve_parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        help="seconds between periodic checkpoints (whichever trigger fires first)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="per-shard job queue bound; a full queue sheds load with 503 + Retry-After",
    )
    serve_parser.add_argument(
        "--job-deadline",
        type=float,
        default=None,
        help="seconds a single batch may take before the worker is declared hung "
        "and restarted (default: no deadline)",
    )
    serve_parser.add_argument(
        "--history-window",
        type=int,
        default=4_096,
        help="newest events kept in memory per stream (0 = unbounded); older "
        "events spill to the history directory, or are dropped without one "
        "(stale ?since= cursors then get a 410)",
    )
    serve_parser.add_argument(
        "--history-dir",
        metavar="PATH",
        default=None,
        help="directory for per-stream event-history spill logs (defaults to "
        "<spool-dir>/history when --spool-dir is set)",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    store_parser = subparsers.add_parser(
        "store", help="durable stream store: ingest / segment / log / resegment"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    def _store_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("name", help="stream name inside the store")
        sub.add_argument(
            "--root",
            default="./streams",
            help="store root directory (one sub-directory per stream)",
        )

    ingest_parser = store_sub.add_parser(
        "ingest", help="write a CSV/NPZ/NPY/plain-text dataset into the chunk store"
    )
    _store_common(ingest_parser)
    ingest_parser.add_argument("input", help="dataset file (.npy inputs are memory-mapped)")
    ingest_parser.add_argument(
        "--append", action="store_true", help="extend an existing stream instead of failing"
    )
    ingest_parser.set_defaults(handler=cmd_store_ingest)

    list_parser = store_sub.add_parser("list", help="list the store's streams")
    list_parser.add_argument("--root", default="./streams")
    list_parser.set_defaults(handler=cmd_store_list)

    ssegment_parser = store_sub.add_parser(
        "segment", help="segment a stored stream, recording events + snapshots"
    )
    _store_common(ssegment_parser)
    ssegment_parser.add_argument("--detector", default="class", help="registry key")
    ssegment_parser.add_argument(
        "--config", default=None, help="detector config as a JSON object"
    )
    ssegment_parser.add_argument("--chunk-size", type=int, default=None)
    ssegment_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=4_096,
        help="observations between detector snapshots (the resegment anchors)",
    )
    ssegment_parser.add_argument(
        "--include-scores", action="store_true", help="also log per-chunk score events"
    )
    ssegment_parser.add_argument(
        "--finalize", action="store_true", help="finalize the detector after the last chunk"
    )
    ssegment_parser.add_argument("--output", choices=("text", "json"), default="text")
    ssegment_parser.set_defaults(handler=cmd_store_segment)

    log_parser = store_sub.add_parser(
        "log", help="replay a stream's recorded events as JSON lines"
    )
    _store_common(log_parser)
    log_parser.add_argument(
        "--since", type=int, default=0, help="record cursor to replay from"
    )
    log_parser.add_argument(
        "--from-t", type=int, default=None, help="stream time range start (inclusive)"
    )
    log_parser.add_argument(
        "--to-t", type=int, default=None, help="stream time range end (exclusive)"
    )
    log_parser.set_defaults(handler=cmd_store_log)

    resegment_parser = store_sub.add_parser(
        "resegment", help="replay from T (same or new config) and print the audit"
    )
    _store_common(resegment_parser)
    resegment_parser.add_argument(
        "--from-t", type=int, default=0, help="replay anchor: newest snapshot <= T"
    )
    resegment_parser.add_argument(
        "--detector", default=None, help="replay through a different detector"
    )
    resegment_parser.add_argument(
        "--config", default=None, help="replay with a different config (JSON object)"
    )
    resegment_parser.add_argument("--chunk-size", type=int, default=None)
    resegment_parser.add_argument(
        "--tolerance",
        type=int,
        default=0,
        help="pair old/new change points within this distance as 'moved'",
    )
    resegment_parser.add_argument("--output", choices=("text", "json"), default="text")
    resegment_parser.set_defaults(handler=cmd_store_resegment)

    evaluate_parser = subparsers.add_parser("evaluate", help="run a miniature comparison")
    evaluate_parser.add_argument("--collection", default="TSSB", choices=sorted(COLLECTIONS))
    evaluate_parser.add_argument("--n-series", type=int, default=4)
    evaluate_parser.add_argument("--length-scale", type=float, default=0.3)
    evaluate_parser.add_argument("--window-size", type=int, default=3_000)
    evaluate_parser.add_argument("--scoring-interval", type=int, default=25)
    evaluate_parser.add_argument("--methods", default="ClaSS,Window,DDM,HDDM")
    evaluate_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the method x dataset grid (results are identical)",
    )
    evaluate_parser.add_argument("--quiet", action="store_true")
    evaluate_parser.set_defaults(handler=cmd_evaluate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
